"""Deterministic search-result generation.

The paper's result model (Section 3):

* result **count** per query over the whole database is drawn from a
  [min, max] range (1000–2000 in the experiments) and is distributed across
  fragments data-dependently — we use a multinomial split;
* result **size** ranges "anywhere from the minimum input size to three
  times the maximum of the input query and the matching database sequence"
  — BLAST output prints the query, the subject, and the alignment between
  them, hence the factor of three;
* results carry a similarity **score**; workers sort by score before
  shipping, and the final file holds each query's results in score order.

Everything is a pure function of (seed, query, fragment), which is what
makes the output "always identical since [results] are pseudo-randomly
generated" regardless of process count or I/O strategy.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..sim.rng import RandomStreams
from .database import FragmentedDatabase
from .queries import QuerySet


@dataclass(frozen=True)
class ResultBatch:
    """All results of searching one query against one fragment.

    ``sizes[i]`` and ``scores[i]`` describe result ``i``; batches arrive
    sorted by descending score (workers sort locally — "sorting costs are
    offloaded as much as possible to the workers").
    """

    query_id: int
    fragment_id: int
    sizes: np.ndarray  # int64 bytes
    scores: np.ndarray  # float64, descending

    def __post_init__(self) -> None:
        if len(self.sizes) != len(self.scores):
            raise ValueError("sizes and scores must align")

    @property
    def count(self) -> int:
        return len(self.sizes)

    @property
    def total_bytes(self) -> int:
        return int(self.sizes.sum()) if self.count else 0

    def is_sorted(self) -> bool:
        return bool(np.all(np.diff(self.scores) <= 0))


@dataclass(frozen=True)
class ResultModel:
    """Parameters of the result generator."""

    min_count: int = 1000
    max_count: int = 2000
    min_result_size: int = 1024
    # A hit against a chromosome-scale sequence does not print the whole
    # chromosome: BLAST reports the aligned region.  Capping the matching
    # sequence length for result sizing keeps the output volume at the
    # paper's ~208 MB for the standard workload instead of being dominated
    # by a handful of 43 MB NT outliers.
    max_match_B: int = 256 * 1024

    def __post_init__(self) -> None:
        if self.min_count < 0 or self.max_count < self.min_count:
            raise ValueError("need 0 <= min_count <= max_count")
        if self.min_result_size <= 0:
            raise ValueError("min_result_size must be positive")
        if self.max_match_B <= 0:
            raise ValueError("max_match_B must be positive")


class ResultGenerator:
    """Produces :class:`ResultBatch` objects deterministically."""

    def __init__(
        self,
        queries: QuerySet,
        database: FragmentedDatabase,
        model: ResultModel,
        streams: RandomStreams,
    ) -> None:
        self.queries = queries
        self.database = database
        self.model = model
        self._streams = streams.spawn("results")
        self._counts_cache: dict = {}

    # -- counts ------------------------------------------------------------
    def query_result_count(self, query_id: int) -> int:
        """Total results for ``query_id`` across the whole database."""
        rng = self._streams.stream("count", query_id)
        return int(rng.integers(self.model.min_count, self.model.max_count + 1))

    def fragment_counts(self, query_id: int) -> np.ndarray:
        """Multinomial split of the query's results across fragments."""
        if query_id not in self._counts_cache:
            total = self.query_result_count(query_id)
            rng = self._streams.stream("assign", query_id)
            probs = np.full(self.database.nfragments, 1.0 / self.database.nfragments)
            self._counts_cache[query_id] = rng.multinomial(total, probs)
        return self._counts_cache[query_id]

    # -- batches ---------------------------------------------------------------
    def batch(self, query_id: int, fragment_id: int) -> ResultBatch:
        """The results of (query, fragment) — the unit of worker compute."""
        count = int(self.fragment_counts(query_id)[fragment_id])
        if count == 0:
            empty = np.zeros(0)
            return ResultBatch(
                query_id, fragment_id,
                empty.astype(np.int64), empty.astype(np.float64),
            )
        rng = self._streams.stream("batch", query_id, fragment_id)
        query_len = min(self.queries[query_id].nbytes, self.model.max_match_B)
        db_lens = self.database.sample_sequence_lengths(query_id, fragment_id, count)
        db_lens = np.minimum(db_lens, self.model.max_match_B)
        upper = 3 * np.maximum(query_len, db_lens)
        upper = np.maximum(upper, self.model.min_result_size + 1)
        sizes = rng.integers(self.model.min_result_size, upper, dtype=np.int64)
        scores = rng.random(count)
        order = np.argsort(-scores, kind="stable")
        return ResultBatch(query_id, fragment_id, sizes[order], scores[order])

    # -- whole-run aggregates -----------------------------------------------------
    def query_total_bytes(self, query_id: int) -> int:
        """Output volume of one query (sum over fragments)."""
        return sum(
            self.batch(query_id, f).total_bytes
            for f in range(self.database.nfragments)
        )

    def run_total_bytes(self) -> int:
        """Output volume of the whole run — the final file size."""
        return sum(self.query_total_bytes(q.query_id) for q in self.queries)


def result_payload(query_id: int, fragment_id: int, index: int, size: int) -> bytes:
    """Deterministic content of one result record.

    An 8-byte BLAKE2 fingerprint of the result identity, repeated to
    ``size`` — cheap to generate, and any byte lost/misplaced by an I/O
    strategy changes the file content, so cross-strategy file equality is a
    strong end-to-end check.
    """
    if size < 0:
        raise ValueError("size must be non-negative")
    seed = hashlib.blake2b(
        f"{query_id}:{fragment_id}:{index}".encode(), digest_size=8
    ).digest()
    reps = -(-size // 8)
    return (seed * reps)[:size]
