"""Box histograms — S3aSim's way of describing size distributions.

The paper's S3aSim takes "a box histogram of input query sizes" and "a box
histogram of database sequence sizes": a list of (low, high, weight) boxes;
sampling picks a box with probability proportional to its weight and then a
uniform size within the box.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

Box = Tuple[int, int, float]  # (low, high, weight); sizes in bytes, inclusive bounds


@dataclass(frozen=True)
class BoxHistogram:
    """A weighted collection of uniform boxes over integer sizes."""

    boxes: Tuple[Box, ...]

    def __post_init__(self) -> None:
        if not self.boxes:
            raise ValueError("histogram needs at least one box")
        for low, high, weight in self.boxes:
            if low < 0 or high < low:
                raise ValueError(f"invalid box bounds ({low}, {high})")
            if weight < 0:
                raise ValueError("box weights must be non-negative")
        if self.total_weight() <= 0:
            raise ValueError("at least one box needs positive weight")

    @classmethod
    def single(cls, low: int, high: int) -> "BoxHistogram":
        """One box: uniform sizes in [low, high]."""
        return cls(((low, high, 1.0),))

    @classmethod
    def constant(cls, size: int) -> "BoxHistogram":
        """Degenerate histogram: every sample is ``size``."""
        return cls(((size, size, 1.0),))

    @classmethod
    def from_boxes(cls, boxes: Sequence[Sequence]) -> "BoxHistogram":
        return cls(tuple((int(l), int(h), float(w)) for l, h, w in boxes))

    def total_weight(self) -> float:
        return sum(w for _, _, w in self.boxes)

    def probabilities(self) -> np.ndarray:
        weights = np.array([w for _, _, w in self.boxes], dtype=float)
        return weights / weights.sum()

    def mean(self) -> float:
        """Expected sample size."""
        probs = self.probabilities()
        mids = np.array([(l + h) / 2 for l, h, _ in self.boxes])
        return float(probs @ mids)

    @property
    def min_size(self) -> int:
        return min(l for l, _, w in self.boxes if w > 0)

    @property
    def max_size(self) -> int:
        return max(h for _, h, w in self.boxes if w > 0)

    def sample(self, rng: np.random.Generator, count: int = 1) -> np.ndarray:
        """``count`` sizes drawn from the histogram (int64 array)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return np.zeros(0, dtype=np.int64)
        probs = self.probabilities()
        box_idx = rng.choice(len(self.boxes), size=count, p=probs)
        lows = np.array([l for l, _, _ in self.boxes], dtype=np.int64)[box_idx]
        highs = np.array([h for _, h, _ in self.boxes], dtype=np.int64)[box_idx]
        # integers() high bound is exclusive.
        return rng.integers(lows, highs + 1, dtype=np.int64)

    def sample_one(self, rng: np.random.Generator) -> int:
        return int(self.sample(rng, 1)[0])

    def truncated(self, max_size: int) -> "BoxHistogram":
        """The histogram restricted to sizes ≤ ``max_size``.

        Boxes beyond the cut are dropped, and so are zero-weight boxes:
        they can never be sampled, but keeping them used to make the
        truncated histogram disagree with ``min_size``/``max_size`` (which
        consider only positive-weight boxes) and could leave a truncation
        containing *only* zero-weight boxes, tripping the constructor's
        "at least one box needs positive weight" check far from the cause.
        A box straddling the cut is clipped with its weight scaled by the
        retained fraction; remaining weights are renormalized implicitly
        by sampling.
        """
        kept: List[Box] = []
        for low, high, weight in self.boxes:
            if weight <= 0 or low > max_size:
                continue
            if high <= max_size:
                kept.append((low, high, weight))
            else:
                fraction = (max_size - low + 1) / (high - low + 1)
                kept.append((low, max_size, weight * fraction))
        if not kept:
            raise ValueError(
                f"max_size={max_size} truncates away every positive-weight "
                f"box (smallest sampleable size is {self.min_size})"
            )
        return BoxHistogram(tuple(kept))
