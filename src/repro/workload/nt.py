"""NCBI NT database characteristics (the paper's example database).

The paper reports for the 2006 NT database: minimum sequence length 6 bytes,
maximum slightly over 43 MB, mean 4401 bytes.  The box histogram below is a
log-spaced fit reproducing those three statistics (heavy right tail: most
sequences are O(kB) gene-sized, a handful are chromosome-scale).  The same
histogram describes the input query set, as in the paper ("We used the same
histogram to represent our input query set of 20 queries").
"""

from __future__ import annotations

from .histogram import BoxHistogram

NT_MIN_SEQUENCE_B = 6
NT_MAX_SEQUENCE_B = 43 * 1024 * 1024  # "slightly over 43 MBytes"
NT_MEAN_SEQUENCE_B = 4401

#: Box histogram of NT sequence sizes (low, high, weight).
NT_HISTOGRAM = BoxHistogram.from_boxes(
    [
        (6, 100, 0.10),
        (100, 400, 0.25),
        (400, 800, 0.20),
        (800, 1_600, 0.22),
        (1_600, 4_000, 0.15),
        (4_000, 16_000, 0.06),
        (16_000, 64_000, 0.015),
        (64_000, 512_000, 0.004),
        (512_000, 4_000_000, 0.0004),
        (4_000_000, NT_MAX_SEQUENCE_B, 0.00002),
    ]
)

#: Query-set histogram.  The paper says the same histogram describes the
#: 20 queries yet reports them totalling "roughly 86 KBytes" — i.e. mean
#: query size ≈ the NT mean with no chromosome-scale outliers among 20
#: draws.  We therefore truncate the query distribution at 16 KiB (typical
#: submitted queries are gene-sized); the database-side distribution keeps
#: its full tail.
NT_QUERY_HISTOGRAM = NT_HISTOGRAM.truncated(16 * 1024)
