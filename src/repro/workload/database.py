"""The fragmented sequence database (database segmentation substrate).

Database segmentation replicates the query set and partitions the database
into fragments (Figure 1 of the paper); each (query, fragment) pair is one
unit of work.  For the simulation we need the database's *statistical*
shape — sequence-length samples drive result sizes — plus fragment
bookkeeping, not actual nucleotides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..sim.rng import RandomStreams
from .histogram import BoxHistogram


@dataclass(frozen=True)
class Fragment:
    """One database fragment: an even share of the database volume."""

    fragment_id: int
    nbytes: int


class FragmentedDatabase:
    """A sequence database split into ``nfragments`` even fragments.

    ``sample_sequence_length`` draws a matching-sequence length for a search
    hit — deterministic in (seed, query, fragment, result index) so results
    are identical across runs, strategies, and process counts.
    """

    def __init__(
        self,
        histogram: BoxHistogram,
        nfragments: int,
        total_bytes: int,
        streams: RandomStreams,
    ) -> None:
        if nfragments <= 0:
            raise ValueError("nfragments must be positive")
        if total_bytes <= 0:
            raise ValueError("total_bytes must be positive")
        self.histogram = histogram
        self.nfragments = nfragments
        self.total_bytes = total_bytes
        self._streams = streams.spawn("database")

    def __repr__(self) -> str:
        return (
            f"<FragmentedDatabase fragments={self.nfragments} "
            f"total={self.total_bytes}B>"
        )

    @property
    def fragments(self) -> List[Fragment]:
        base = self.total_bytes // self.nfragments
        remainder = self.total_bytes % self.nfragments
        return [
            Fragment(i, base + (1 if i < remainder else 0))
            for i in range(self.nfragments)
        ]

    def fragment(self, fragment_id: int) -> Fragment:
        if not 0 <= fragment_id < self.nfragments:
            raise ValueError(f"fragment {fragment_id} out of range")
        return self.fragments[fragment_id]

    def fragment_extent(self, fragment_id: int) -> Tuple[int, int]:
        """(offset, nbytes) of the fragment in a densely-packed db file.

        Fragments are stored in id order with no gaps, so the extent is a
        prefix sum — this is the read span a worker preloads before its
        first search against the fragment."""
        fragments = self.fragments
        if not 0 <= fragment_id < self.nfragments:
            raise ValueError(f"fragment {fragment_id} out of range")
        offset = sum(f.nbytes for f in fragments[:fragment_id])
        return offset, fragments[fragment_id].nbytes

    def sample_sequence_lengths(
        self, query_id: int, fragment_id: int, count: int
    ) -> np.ndarray:
        """Lengths of the database sequences matched by ``count`` results."""
        rng = self._streams.stream("seqlen", query_id, fragment_id)
        return self.histogram.sample(rng, count)

    def mean_sequence_length(self) -> float:
        return self.histogram.mean()
