"""Workload model: histograms, database, queries, results, compute time."""

from .compute import ComputeModel, MergeModel
from .database import Fragment, FragmentedDatabase
from .histogram import Box, BoxHistogram
from .nt import (
    NT_HISTOGRAM,
    NT_MAX_SEQUENCE_B,
    NT_MEAN_SEQUENCE_B,
    NT_MIN_SEQUENCE_B,
    NT_QUERY_HISTOGRAM,
)
from .queries import Query, QuerySet
from .results import ResultBatch, ResultGenerator, ResultModel, result_payload
from .serialization import (
    histogram_from_dict,
    histogram_to_dict,
    load_workload_kwargs,
    save_workload,
    workload_kwargs_from_dict,
    workload_to_dict,
)

__all__ = [
    "Box",
    "BoxHistogram",
    "ComputeModel",
    "Fragment",
    "FragmentedDatabase",
    "MergeModel",
    "NT_HISTOGRAM",
    "NT_MAX_SEQUENCE_B",
    "NT_MEAN_SEQUENCE_B",
    "NT_MIN_SEQUENCE_B",
    "NT_QUERY_HISTOGRAM",
    "Query",
    "QuerySet",
    "ResultBatch",
    "ResultGenerator",
    "ResultModel",
    "result_payload",
    "histogram_from_dict",
    "histogram_to_dict",
    "load_workload_kwargs",
    "save_workload",
    "workload_kwargs_from_dict",
    "workload_to_dict",
]
