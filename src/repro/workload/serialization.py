"""Workload description files: save/load the S3aSim input parameters.

S3aSim's pitch is that "flexibility in altering input parameters" makes
I/O-strategy studies cheap.  This module round-trips the workload-shaped
subset of :class:`~repro.core.config.SimulationConfig` through plain JSON
so parameter sets can be versioned and shared (``s3asim run --workload
my_study.json``).
"""

from __future__ import annotations

import json
from typing import Any, Dict, TextIO

from .compute import ComputeModel, MergeModel
from .histogram import BoxHistogram
from .results import ResultModel

FORMAT = "s3asim-workload-1"


def histogram_to_dict(histogram: BoxHistogram) -> Dict[str, Any]:
    return {"boxes": [list(box) for box in histogram.boxes]}


def histogram_from_dict(doc: Dict[str, Any]) -> BoxHistogram:
    return BoxHistogram.from_boxes(doc["boxes"])


def workload_to_dict(config) -> Dict[str, Any]:
    """The workload-shaped fields of a SimulationConfig as a document."""
    return {
        "format": FORMAT,
        "nqueries": config.nqueries,
        "nfragments": config.nfragments,
        "seed": config.seed,
        "db_total_bytes": config.db_total_bytes,
        "query_histogram": histogram_to_dict(config.query_histogram),
        "db_histogram": histogram_to_dict(config.db_histogram),
        "result_model": {
            "min_count": config.result_model.min_count,
            "max_count": config.result_model.max_count,
            "min_result_size": config.result_model.min_result_size,
            "max_match_B": config.result_model.max_match_B,
        },
        "compute": {
            "startup_s": config.compute.startup_s,
            "rate_s_per_byte": config.compute.rate_s_per_byte,
            "speed": config.compute.speed,
            "startup_scales": config.compute.startup_scales,
        },
        "merge": {
            "per_item_s": config.merge.per_item_s,
            "per_byte_s": config.merge.per_byte_s,
        },
    }


def workload_kwargs_from_dict(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Keyword arguments for SimulationConfig from a workload document."""
    if doc.get("format") != FORMAT:
        raise ValueError(
            f"not a workload document (format={doc.get('format')!r})"
        )
    return {
        "nqueries": int(doc["nqueries"]),
        "nfragments": int(doc["nfragments"]),
        "seed": int(doc["seed"]),
        "db_total_bytes": int(doc["db_total_bytes"]),
        "query_histogram": histogram_from_dict(doc["query_histogram"]),
        "db_histogram": histogram_from_dict(doc["db_histogram"]),
        "result_model": ResultModel(**doc["result_model"]),
        "compute": ComputeModel(**doc["compute"]),
        "merge": MergeModel(**doc["merge"]),
    }


def save_workload(config, stream: TextIO) -> None:
    json.dump(workload_to_dict(config), stream, indent=1)


def load_workload_kwargs(stream: TextIO) -> Dict[str, Any]:
    return workload_kwargs_from_dict(json.load(stream))
