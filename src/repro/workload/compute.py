"""The paper's compute-time model.

"Compute time is modeled as a constant startup cost + linear time based on
the size of the result" (Section 3).  The experiments scale a *compute
speed* knob from 0.1 to 25.6 (1.0 = base) standing in for faster CPUs,
FPGA/ASIC search engines, or better heuristics; the linear term shrinks
with speed while the startup term (task dispatch, fragment open, output
formatting setup) does not, matching the residual ~0.8 s compute phase the
paper reports at speed 25.6 where a purely linear model would predict ~0.2 s.

Defaults are calibrated against the paper's Figure 6/7 compute phases:
~54 s mean worker compute at speed 0.1 and ~0.8 s at 25.6 on 64 processes
(2560 tasks over 63 workers), and a compute-dominated ~400 s single-worker
run — consistent with Figure 2's 2-process points.
"""

from __future__ import annotations

from dataclasses import dataclass

from .results import ResultBatch


@dataclass(frozen=True)
class ComputeModel:
    """Search-time parameters.

    ``task_time = startup_s / (speed if startup_scales else 1)
    + rate_s_per_byte * result_bytes / speed``
    """

    startup_s: float = 0.015
    rate_s_per_byte: float = 1.55e-6
    speed: float = 1.0
    startup_scales: bool = False

    def __post_init__(self) -> None:
        if self.startup_s < 0 or self.rate_s_per_byte < 0:
            raise ValueError("startup_s and rate_s_per_byte must be non-negative")
        if self.speed <= 0:
            raise ValueError("speed must be positive")

    def with_speed(self, speed: float) -> "ComputeModel":
        from dataclasses import replace

        return replace(self, speed=speed)

    def task_time(self, result_bytes: int) -> float:
        """Seconds to search one (query, fragment) pair."""
        if result_bytes < 0:
            raise ValueError("result_bytes must be non-negative")
        startup = self.startup_s / self.speed if self.startup_scales else self.startup_s
        return startup + self.rate_s_per_byte * result_bytes / self.speed

    def batch_time(self, batch: ResultBatch) -> float:
        return self.task_time(batch.total_bytes)


@dataclass(frozen=True)
class MergeModel:
    """Cost of merging sorted result lists (worker- or master-side).

    Merging k sorted runs of n total items is O(n log k) comparisons plus a
    memcpy of the payload; both terms are tiny next to search and I/O but
    nonzero, and the paper reports them as their own phase.
    """

    per_item_s: float = 5e-7
    per_byte_s: float = 2e-10

    def merge_time(self, nitems: int, nbytes: int) -> float:
        if nitems < 0 or nbytes < 0:
            raise ValueError("counts must be non-negative")
        return self.per_item_s * nitems + self.per_byte_s * nbytes
