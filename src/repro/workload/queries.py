"""The input query set (replicated to all processors under database
segmentation)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..sim.rng import RandomStreams
from .histogram import BoxHistogram


@dataclass(frozen=True)
class Query:
    """One input sequence to search against the database."""

    query_id: int
    nbytes: int


class QuerySet:
    """The ordered input queries; sizes drawn from a box histogram."""

    def __init__(self, queries: Sequence[Query]) -> None:
        if not queries:
            raise ValueError("query set cannot be empty")
        ids = [q.query_id for q in queries]
        if ids != list(range(len(queries))):
            raise ValueError("query ids must be 0..n-1 in order")
        self.queries: List[Query] = list(queries)

    @classmethod
    def generate(
        cls, histogram: BoxHistogram, nqueries: int, streams: RandomStreams
    ) -> "QuerySet":
        """Deterministically sample ``nqueries`` query sizes."""
        if nqueries <= 0:
            raise ValueError("nqueries must be positive")
        rng = streams.spawn("queries").stream("sizes")
        sizes = histogram.sample(rng, nqueries)
        return cls([Query(i, int(sizes[i])) for i in range(nqueries)])

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def __getitem__(self, query_id: int) -> Query:
        return self.queries[query_id]

    def total_bytes(self) -> int:
        return sum(q.nbytes for q in self.queries)

    def sizes(self) -> np.ndarray:
        return np.array([q.nbytes for q in self.queries], dtype=np.int64)
