"""The input query set (replicated to all processors under database
segmentation)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..sim.rng import RandomStreams
from .histogram import BoxHistogram


@dataclass(frozen=True)
class Query:
    """One input sequence to search against the database."""

    query_id: int
    nbytes: int


class QuerySet:
    """The ordered input queries; sizes drawn from a box histogram."""

    def __init__(self, queries: Sequence[Query]) -> None:
        if not queries:
            raise ValueError("query set cannot be empty")
        ids = [q.query_id for q in queries]
        if ids != list(range(len(queries))):
            raise ValueError("query ids must be 0..n-1 in order")
        self.queries: List[Query] = list(queries)

    @classmethod
    def generate(
        cls, histogram: BoxHistogram, nqueries: int, streams: RandomStreams
    ) -> "QuerySet":
        """Deterministically sample ``nqueries`` query sizes."""
        if nqueries <= 0:
            raise ValueError("nqueries must be positive")
        rng = streams.spawn("queries").stream("sizes")
        sizes = histogram.sample(rng, nqueries)
        return cls([Query(i, int(sizes[i])) for i in range(nqueries)])

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def __getitem__(self, query_id: int) -> Query:
        return self.queries[query_id]

    def total_bytes(self) -> int:
        return sum(q.nbytes for q in self.queries)

    def sizes(self) -> np.ndarray:
        return np.array([q.nbytes for q in self.queries], dtype=np.int64)


#: Above this many queries, serve mode switches from the eager
#: :meth:`QuerySet.generate` to :class:`LazyQuerySet` so a ~1M-query
#: arrival run never materializes the whole size vector up front.
LAZY_THRESHOLD = 65536


class LazyQuerySet:
    """A :class:`QuerySet`-compatible view that samples sizes in chunks.

    Chunk ``c`` draws from the ``("queries", "sizes", c)`` stream, so any
    prefix of queries is deterministic in (seed, histogram) regardless of
    how many are eventually admitted.  Note the chunked draws are *not*
    bit-identical to the eager single-draw path — which is why the switch
    only happens above :data:`LAZY_THRESHOLD`, far beyond every golden
    config.
    """

    CHUNK = 4096

    def __init__(
        self, histogram: BoxHistogram, nqueries: int, streams: RandomStreams
    ) -> None:
        if nqueries <= 0:
            raise ValueError("nqueries must be positive")
        self.histogram = histogram
        self.nqueries = nqueries
        self._spawn = streams.spawn("queries")
        self._chunks: dict = {}

    def _chunk(self, index: int) -> np.ndarray:
        chunk = self._chunks.get(index)
        if chunk is None:
            count = min(self.CHUNK, self.nqueries - index * self.CHUNK)
            rng = self._spawn.stream("sizes", index)
            chunk = self._chunks[index] = self.histogram.sample(rng, count)
        return chunk

    def __len__(self) -> int:
        return self.nqueries

    def __getitem__(self, query_id: int) -> Query:
        if not 0 <= query_id < self.nqueries:
            raise IndexError(query_id)
        chunk = self._chunk(query_id // self.CHUNK)
        return Query(query_id, int(chunk[query_id % self.CHUNK]))

    def __iter__(self):
        return (self[i] for i in range(self.nqueries))

    def total_bytes(self) -> int:
        return int(sum(int(self._chunk(c).sum()) for c in range(-(-self.nqueries // self.CHUNK))))

    def sizes(self) -> np.ndarray:
        return np.array([self[i].nbytes for i in range(self.nqueries)], dtype=np.int64)
