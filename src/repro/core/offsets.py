"""Score merging and output-file offset assignment (master-side logic).

The output file is a sequence of per-query blocks in query order; within a
block, results from every fragment appear in descending score order (ties
broken by (fragment, index) for full determinism).  Workers send sorted
per-(query, fragment) score lists; the master merges them and answers with
"a list of 64-bit offsets sent to each worker with results" (Section 2.2).

Pure functions — no simulation time here; the master charges merge costs
separately via :class:`~repro.workload.compute.MergeModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class ScoredBatchMeta:
    """What the master knows about one (query, fragment) batch: the sorted
    scores and per-result sizes (not the payloads, unless master-writing)."""

    query_id: int
    fragment_id: int
    scores: np.ndarray
    sizes: np.ndarray

    def __post_init__(self) -> None:
        if len(self.scores) != len(self.sizes):
            raise ValueError("scores and sizes must align")

    @property
    def count(self) -> int:
        return len(self.scores)

    @property
    def total_bytes(self) -> int:
        return int(self.sizes.sum()) if self.count else 0


def merge_query(
    batches: Sequence[ScoredBatchMeta], base_offset: int
) -> Tuple[Dict[int, np.ndarray], int]:
    """Assign file offsets to every result of one query.

    Parameters
    ----------
    batches:
        One entry per fragment of the query (any order); each already
        sorted by descending score.
    base_offset:
        File offset where this query's block starts.

    Returns
    -------
    (offsets_by_fragment, block_size):
        ``offsets_by_fragment[f][i]`` is the absolute file offset of result
        ``i`` of fragment ``f`` *in the fragment's own (score-sorted)
        order*; ``block_size`` is the query's total output bytes.
    """
    if not batches:
        return {}, 0
    query_ids = {b.query_id for b in batches}
    if len(query_ids) != 1:
        raise ValueError(f"batches span multiple queries: {sorted(query_ids)}")
    frag_ids = [b.fragment_id for b in batches]
    if len(set(frag_ids)) != len(frag_ids):
        raise ValueError("duplicate fragment in merge")

    scores = np.concatenate([b.scores for b in batches]) if batches else np.zeros(0)
    sizes = np.concatenate([b.sizes for b in batches])
    frags = np.concatenate(
        [np.full(b.count, b.fragment_id, dtype=np.int64) for b in batches]
    )
    index_in_batch = np.concatenate(
        [np.arange(b.count, dtype=np.int64) for b in batches]
    )

    # Global order: descending score, ties by (fragment, index).
    order = np.lexsort((index_in_batch, frags, -scores))
    ends = np.cumsum(sizes[order])
    starts = base_offset + ends - sizes[order]

    offsets_by_fragment: Dict[int, np.ndarray] = {}
    for b in batches:
        mask = frags[order] == b.fragment_id
        # Positions of this fragment's results in the global order appear in
        # the fragment's own descending-score order because lexsort is
        # stable within equal keys and each batch is pre-sorted.
        offsets_by_fragment[b.fragment_id] = starts[mask]

    return offsets_by_fragment, int(sizes.sum())


def validate_assignment(
    offsets_by_fragment: Dict[int, np.ndarray],
    sizes_by_fragment: Dict[int, np.ndarray],
    base_offset: int,
    block_size: int,
) -> None:
    """Raise if the assignment is not a dense, non-overlapping tiling of
    [base_offset, base_offset + block_size)."""
    spans: List[Tuple[int, int]] = []
    for frag, offsets in offsets_by_fragment.items():
        sizes = sizes_by_fragment[frag]
        if len(offsets) != len(sizes):
            raise ValueError(f"fragment {frag}: offsets/sizes mismatch")
        spans.extend(
            (int(o), int(o + s)) for o, s in zip(offsets, sizes)
        )
    spans.sort()
    cursor = base_offset
    for start, end in spans:
        if start != cursor:
            raise ValueError(f"gap or overlap at {cursor} (next span at {start})")
        cursor = end
    if cursor != base_offset + block_size:
        raise ValueError(
            f"block ends at {cursor}, expected {base_offset + block_size}"
        )


class OffsetLedger:
    """Tracks per-query block bases as queries complete in order.

    Query blocks are laid out in query-id order; query ``q``'s base is only
    known once the sizes of all earlier queries are in.  The master feeds
    completed queries in ascending order (its scheduler completes them that
    way) and reads back absolute bases.
    """

    def __init__(self, nqueries: int) -> None:
        if nqueries <= 0:
            raise ValueError("nqueries must be positive")
        self.nqueries = nqueries
        self._block_sizes: List[int] = []

    @property
    def next_query(self) -> int:
        """The query id whose base the ledger can assign next."""
        return len(self._block_sizes)

    @property
    def assigned_bytes(self) -> int:
        return sum(self._block_sizes)

    def base_for(self, query_id: int, block_size: int) -> int:
        """Record ``query_id``'s block and return its base offset."""
        if query_id != self.next_query:
            raise ValueError(
                f"queries must be assigned in order (expected {self.next_query}, "
                f"got {query_id})"
            )
        if block_size < 0:
            raise ValueError("block_size must be non-negative")
        base = self.assigned_bytes
        self._block_sizes.append(block_size)
        return base

    def complete(self) -> bool:
        return len(self._block_sizes) == self.nqueries

    def total_bytes(self) -> int:
        if not self.complete():
            raise ValueError("ledger incomplete")
        return self.assigned_bytes
