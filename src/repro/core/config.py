"""Simulation configuration: everything S3aSim lets the user customize.

Per the paper, S3aSim exposes "the total number of fragments of the
database, total number of input queries, a box histogram of input query
sizes, a box histogram of database sequence sizes, a min/max count of
results per input query, a minimum result size per query, variable
simulated compute speeds, MPI-IO hints, parallel I/O, write all data at the
end ..., and many others."  :class:`SimulationConfig` is that parameter
surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..faults.plan import FaultPlan, FaultToleranceConfig
from ..mpi.network import NetworkConfig
from ..pvfs.filesystem import PVFSConfig
from ..serve.arrivals import ArrivalConfig
from ..shard.state import ShardConfig
from ..sim.environment import SCHEDULERS
from ..sim.rng import RandomStreams
from ..workload.compute import ComputeModel, MergeModel
from ..workload.database import FragmentedDatabase
from ..workload.histogram import BoxHistogram
from ..workload.nt import NT_HISTOGRAM, NT_QUERY_HISTOGRAM
from ..workload.queries import LAZY_THRESHOLD, LazyQuerySet, QuerySet
from ..workload.results import ResultGenerator, ResultModel
from .strategies import ADAPTIVE_FALLBACK, IOStrategy, get_strategy, is_adaptive

GIB = 1024**3

#: Seed whose sampled 20-query workload best matches the paper's reported
#: constants (~86 KiB of queries, ~208 MB of output).
PAPER_SEED = 2006


@dataclass(frozen=True)
class SimulationConfig:
    """One S3aSim run's parameters.

    The defaults reproduce the paper's test setup (Section 3.3): 20 queries,
    128 fragments, 1000–2000 results per query, NT-shaped histograms,
    results written after every query, sync after every write, Feynman-like
    network and 16-server PVFS2.
    """

    nprocs: int = 16
    strategy: str = "ww-list"
    query_sync: bool = False

    nqueries: int = 20
    nfragments: int = 128
    seed: int = PAPER_SEED
    query_histogram: BoxHistogram = field(default_factory=lambda: NT_QUERY_HISTOGRAM)
    db_histogram: BoxHistogram = field(default_factory=lambda: NT_HISTOGRAM)
    db_total_bytes: int = 4 * GIB
    result_model: ResultModel = field(default_factory=ResultModel)

    compute: ComputeModel = field(default_factory=ComputeModel)
    merge: MergeModel = field(default_factory=MergeModel)

    #: Write results after every ``write_every`` queries (1 = the paper's
    #: experiments; ``nqueries`` = mpiBLAST-1.2 / pioBLAST write-at-end).
    write_every: int = 1
    sync_after_write: bool = True

    #: Resume a failed run at this query (must sit on a write-group
    #: boundary).  Queries before it are treated as already on disk from
    #: the previous run — the paper's stated reason for writing results
    #: frequently: "More frequently writing out the results also allows
    #: users to resume a failed application run at the appropriate input
    #: query."
    resume_from_query: int = 0

    network: NetworkConfig = field(default_factory=NetworkConfig.myrinet2000)
    pvfs: PVFSConfig = field(default_factory=PVFSConfig.feynman)

    #: Generate and verify actual file bytes (slower; tests use it).
    store_data: bool = False
    output_path: str = "/s3asim/results.out"

    #: Collect per-layer metrics (``repro.obs``) during the run.  Off by
    #: default: the disabled registry is a shared no-op and keeps runs
    #: bit-identical to an uninstrumented build; enabling it records the
    #: same events without perturbing their order.
    collect_metrics: bool = False

    #: Run the cross-layer invariant checker (``repro.check``) during the
    #: run.  Off by default: the null checker is a shared no-op and keeps
    #: runs bit-identical; enabling it audits conservation laws in zero
    #: virtual time and raises ``InvariantViolation`` on the first breach.
    check: bool = False

    #: Event-queue backend for the simulation kernel: ``"heap"`` (the
    #: seed's binary heap) or ``"calendar"`` (calendar queue with O(1)
    #: expected schedule/pop and same-timestamp batching).  Both produce
    #: bit-identical event orders — the tie-break total order
    #: ``(time, priority, eid)`` is preserved exactly — so this is purely
    #: a performance knob; "heap" stays the default for continuity.
    scheduler: str = "heap"

    #: Open-loop service mode: queries stream in from a seeded arrival
    #: process instead of being pre-loaded (``repro.serve``).  ``None``
    #: (the default) is the paper's closed batch, bit-identical to the
    #: seed; when set, ``nqueries`` bounds the number of *offered*
    #: arrivals and the admitted count is decided at run time.
    arrival: Optional[ArrivalConfig] = None

    #: Multi-master sharding (``repro.shard``): partition the ranks into
    #: ``shard.nshards`` master+worker pools that share the network and
    #: PVFS volume, with query placement at admission and work-stealing
    #: between masters.  ``None`` (the default) is the single-master
    #: runner, bit-identical to the seed.
    shard: Optional[ShardConfig] = None

    #: Read the database fragment from the shared volume before the first
    #: search against it on each worker (the real tools fault the fragment
    #: in from storage; the seed charged no read traffic for it).  Off by
    #: default — the seed's timing is bit-identical.
    preload_fragments: bool = False

    #: On a resumed run, read back the previously-written prefix
    #: ``[0, resume_base)`` at startup before dispatching new work — the
    #: checkpoint-restart verification pass real resumable tools perform.
    #: Requires ``resume_from_query > 0``.
    verify_resume: bool = False

    #: The run's failure schedule.  The default (empty) plan injects
    #: nothing and keeps the simulation bit-identical to a fault-free
    #: build — the tolerance machinery only activates when needed.
    fault_plan: FaultPlan = field(default_factory=FaultPlan.none)
    #: Recovery-protocol knobs; ``None`` means "enable automatically with
    #: defaults iff the plan contains worker crashes".
    fault_tolerance: Optional[FaultToleranceConfig] = None

    def __post_init__(self) -> None:
        if self.nprocs < 2:
            raise ValueError("need at least 2 processes (1 master + 1 worker)")
        if self.nqueries <= 0:
            raise ValueError("nqueries must be positive")
        if self.nfragments <= 0:
            raise ValueError("nfragments must be positive")
        if not 1 <= self.write_every:
            raise ValueError("write_every must be >= 1")
        if not 0 <= self.resume_from_query < self.nqueries:
            raise ValueError("resume_from_query must be in [0, nqueries)")
        if self.resume_from_query % self.write_every != 0:
            raise ValueError(
                "resume_from_query must sit on a write-group boundary "
                f"(multiple of write_every={self.write_every})"
            )
        if is_adaptive(self.strategy):
            if self.query_sync:
                raise ValueError(
                    "hybrid-auto does not compose with query_sync: the "
                    "sync barrier protocol differs between the MW and WW "
                    "strategies a run may mix per query"
                )
        else:
            get_strategy(self.strategy)  # validates the name
        if self.verify_resume and self.resume_from_query == 0:
            raise ValueError(
                "verify_resume needs a resumed run (resume_from_query > 0)"
            )
        if self.arrival is not None:
            if self.write_every != 1:
                raise ValueError(
                    "serve mode requires write_every=1 (each admitted "
                    "query is its own write group)"
                )
            if self.resume_from_query != 0:
                raise ValueError("serve mode cannot resume a partial run")
            if not self.fault_plan.empty or self.fault_tolerance is not None:
                raise ValueError(
                    "serve mode does not compose with fault injection yet"
                )
        if self.shard is not None and self.shard.nshards > 1:
            if self.arrival is None:
                raise ValueError(
                    "multi-master sharding requires serve mode (set "
                    "arrival): batch workloads have a static task list "
                    "with nothing to place or steal"
                )
            if self.nprocs < 2 * self.shard.nshards:
                raise ValueError(
                    f"{self.shard.nshards} shards need at least "
                    f"{2 * self.shard.nshards} processes (1 master + "
                    ">= 1 worker each)"
                )
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"scheduler must be one of {SCHEDULERS}, got {self.scheduler!r}"
            )
        for crash in self.fault_plan.worker_crashes:
            if not 1 <= crash.rank < self.nprocs:
                raise ValueError(
                    f"crash rank {crash.rank} outside worker range "
                    f"[1, {self.nprocs})"
                )
        for spec in self.fault_plan.server_outages + self.fault_plan.server_slowdowns:
            if not 0 <= spec.server_id < self.pvfs.nservers:
                raise ValueError(
                    f"fault server_id {spec.server_id} outside "
                    f"[0, {self.pvfs.nservers})"
                )
        if self.fault_plan.server_kills:
            for kill in self.fault_plan.server_kills:
                if not 0 <= kill.server_id < self.pvfs.nservers:
                    raise ValueError(
                        f"kill server_id {kill.server_id} outside "
                        f"[0, {self.pvfs.nservers})"
                    )
            if self.pvfs.replicas < 2:
                raise ValueError(
                    "a ServerKill is permanent data loss on a replicas=1 "
                    "volume; set pvfs.replicas >= 2 to make the plan "
                    "survivable"
                )
            # No replica chain may lose every member: chain of primary p is
            # {(p + r) % nservers, r < replicas}.
            killed = {k.server_id for k in self.fault_plan.server_kills}
            n = self.pvfs.nservers
            for primary in range(n):
                chain = {(primary + r) % n for r in range(self.pvfs.replicas)}
                if chain <= killed:
                    raise ValueError(
                        f"fault plan kills every replica of chain "
                        f"{sorted(chain)} (primary {primary}) — the data "
                        "would be unrecoverable"
                    )

    # -- derived objects ------------------------------------------------------
    @property
    def nworkers(self) -> int:
        return self.nprocs - 1

    @property
    def ntasks(self) -> int:
        return self.nqueries * self.nfragments

    @property
    def ngroups(self) -> int:
        """Number of write groups."""
        return -(-self.nqueries // self.write_every)

    @property
    def resume_group(self) -> int:
        """First write group this run actually executes."""
        return self.resume_from_query // self.write_every

    def group_of(self, query_id: int) -> int:
        return query_id // self.write_every

    def queries_in_group(self, group: int) -> range:
        lo = group * self.write_every
        hi = min(lo + self.write_every, self.nqueries)
        return range(lo, hi)

    @property
    def adaptive(self) -> bool:
        """Whether per-query strategy selection (``repro.adapt``) is on."""
        return is_adaptive(self.strategy)

    def io_strategy(self) -> IOStrategy:
        """The static strategy descriptor driving the protocol shape.

        Under hybrid-auto this is the worker-writing list-I/O fallback:
        the selector overrides it per query, but the message-loop plumbing
        (posted receives, termination conditions) follows the descriptor.
        """
        if self.adaptive:
            return ADAPTIVE_FALLBACK
        return get_strategy(self.strategy)

    def fault_tolerance_active(self) -> bool:
        """Whether heartbeats/reassignment run in this configuration.

        Active when explicitly configured or when the plan contains worker
        crashes.  Server/link faults alone don't need it (they are handled
        transparently below the application protocol), and keeping it off
        preserves bit-identical no-fault timing.
        """
        return self.fault_tolerance is not None or self.fault_plan.needs_tolerance

    def effective_fault_tolerance(self) -> FaultToleranceConfig:
        return (
            self.fault_tolerance
            if self.fault_tolerance is not None
            else FaultToleranceConfig()
        )

    def streams(self) -> RandomStreams:
        return RandomStreams(self.seed)

    def build_workload(self) -> "Workload":
        streams = self.streams()
        if self.arrival is not None and self.nqueries > LAZY_THRESHOLD:
            queries = LazyQuerySet(self.query_histogram, self.nqueries, streams)
        else:
            queries = QuerySet.generate(self.query_histogram, self.nqueries, streams)
        database = FragmentedDatabase(
            self.db_histogram, self.nfragments, self.db_total_bytes, streams
        )
        generator = ResultGenerator(queries, database, self.result_model, streams)
        return Workload(queries=queries, database=database, results=generator)

    def effective_pvfs(self) -> PVFSConfig:
        """PVFS config with the run's store_data flag applied."""
        return replace(self.pvfs, store_data=self.store_data)

    def with_(self, **kwargs) -> "SimulationConfig":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)

    @classmethod
    def paper_setup(cls, nprocs: int, strategy: str, **kwargs) -> "SimulationConfig":
        """The Section 3.3 configuration at the given scale."""
        return cls(nprocs=nprocs, strategy=strategy, **kwargs)


@dataclass(frozen=True)
class Workload:
    """The generated inputs of one run (all deterministic in the seed)."""

    queries: "QuerySet"  # or LazyQuerySet (interface-compatible) in serve mode
    database: FragmentedDatabase
    results: ResultGenerator
