"""Timing phases — S3aSim's execution-time decomposition (paper Section 3).

Every rank accumulates simulated time into the eight phases the paper
defines: Setup, Data Distribution, Compute, Merge Results, Gather Results,
I/O, Sync, and Other (the remainder).  Figures 3, 4, 6, and 7 are stacked
bars of exactly these buckets for the worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional

from ..sim import Environment


class Phase(str, Enum):
    """The paper's timing phases."""

    SETUP = "setup"
    DATA_DISTRIBUTION = "data_distribution"
    COMPUTE = "compute"
    MERGE = "merge_results"
    GATHER = "gather_results"
    IO = "io"
    SYNC = "sync"
    OTHER = "other"

    @classmethod
    def measured(cls) -> List["Phase"]:
        """Phases accumulated directly (OTHER is derived)."""
        return [p for p in cls if p is not cls.OTHER]


class PhaseTimer:
    """Accumulates per-phase simulated time for one rank.

    With a ``recorder`` attached (any object exposing
    ``record(rank, state, start, end)``, e.g.
    :class:`repro.trace.TraceRecorder`), every measured span also becomes a
    timeline interval — S3aSim's MPE/Jumpshot-style tracing.
    """

    def __init__(self, env: Environment, rank: int = -1, recorder=None) -> None:
        self.env = env
        self.rank = rank
        self.recorder = recorder
        self.times: Dict[Phase, float] = {p: 0.0 for p in Phase.measured()}
        self.started_at: float = env.now
        self.finished_at: Optional[float] = None

    def _record(self, phase: Phase, start: float) -> None:
        if self.recorder is not None and self.env.now > start:
            self.recorder.record(self.rank, phase.value, start, self.env.now)

    def _credit(self, phase: Phase, seconds: float) -> None:
        """Every crediting path funnels through here (so do the metrics)."""
        self.times[phase] += seconds
        m = self.env.metrics
        if m.enabled:
            m.counter(
                "app.phase_seconds", rank=self.rank, phase=phase.value
            ).add(seconds)

    def __repr__(self) -> str:
        spent = {p.value: round(t, 6) for p, t in self.times.items() if t}
        return f"<PhaseTimer {spent}>"

    def add(self, phase: Phase, seconds: float) -> None:
        """Directly credit ``seconds`` to ``phase``."""
        if seconds < 0:
            raise ValueError("cannot credit negative time")
        if phase is Phase.OTHER:
            raise ValueError("OTHER is derived; credit a measured phase")
        self._credit(phase, seconds)

    def add_span(self, phase: Phase, start: float) -> None:
        """Credit the span from ``start`` to now (and trace it)."""
        self.add(phase, self.env.now - start)
        self._record(phase, start)

    def measure(self, phase: Phase, fragment):
        """Process fragment: run ``fragment`` crediting its span to ``phase``.

        Usage inside rank code: ``x = yield from timer.measure(Phase.IO,
        fs.write(...))``.
        """
        start = self.env.now
        result = yield from fragment
        self._credit(phase, self.env.now - start)
        self._record(phase, start)
        return result

    def wait(self, phase: Phase, event):
        """Process fragment: wait on a kernel event, crediting the wait."""
        start = self.env.now
        value = yield event
        self._credit(phase, self.env.now - start)
        self._record(phase, start)
        return value

    def sleep(self, phase: Phase, seconds: float):
        """Process fragment: spend ``seconds`` of simulated time in
        ``phase`` (models local CPU work like searching or merging)."""
        if seconds < 0:
            raise ValueError("cannot sleep negative time")
        start = self.env.now
        yield self.env.timeout(seconds)
        self._credit(phase, self.env.now - start)
        self._record(phase, start)

    def finish(self) -> None:
        """Mark the rank's end time (for the OTHER remainder)."""
        self.finished_at = self.env.now

    def report(self) -> "PhaseReport":
        end = self.finished_at if self.finished_at is not None else self.env.now
        return PhaseReport.from_times(self.times, end - self.started_at)


@dataclass(frozen=True)
class PhaseReport:
    """Immutable snapshot: per-phase seconds plus the derived OTHER bucket."""

    times: Dict[Phase, float]
    total: float

    @classmethod
    def from_times(cls, times: Dict[Phase, float], total: float) -> "PhaseReport":
        measured = {p: times.get(p, 0.0) for p in Phase.measured()}
        other = max(0.0, total - sum(measured.values()))
        full = dict(measured)
        full[Phase.OTHER] = other
        return cls(times=full, total=total)

    def __getitem__(self, phase: Phase) -> float:
        return self.times[phase]

    def get(self, phase: Phase, default: float = 0.0) -> float:
        return self.times.get(phase, default)

    def as_dict(self) -> Dict[str, float]:
        return {p.value: self.times[p] for p in Phase}

    @staticmethod
    def mean(reports: Iterable["PhaseReport"]) -> "PhaseReport":
        """Average of several ranks' reports (the paper plots the mean
        worker-process breakdown)."""
        reports = list(reports)
        if not reports:
            raise ValueError("need at least one report")
        n = len(reports)
        times = {
            p: sum(r.times[p] for r in reports) / n for p in Phase
        }
        total = sum(r.total for r in reports) / n
        return PhaseReport(times=times, total=total)
