"""Independent output-file oracle.

The simulation's master assigns file offsets by merging scores as they
arrive over simulated messages.  This module computes the *same* layout
directly from the deterministic workload — no master, no messages, no
timing — giving an independent oracle: any simulated run's output file
must equal the reference byte for byte.  Used by tests and
``s3asim validate --oracle``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..pvfs.bytestore import ByteStore
from .config import SimulationConfig, Workload
from .offsets import ScoredBatchMeta, merge_query
from ..workload.results import result_payload


def reference_layout(
    workload: Workload, nqueries: int, nfragments: int
) -> List[Tuple[int, int, int, int, int]]:
    """The expected placement of every result.

    Returns tuples ``(query, fragment, index_in_batch, offset, size)``
    sorted by offset; offsets tile [0, total) densely.
    """
    placements: List[Tuple[int, int, int, int, int]] = []
    base = 0
    for query in range(nqueries):
        batches = [
            workload.results.batch(query, fragment)
            for fragment in range(nfragments)
        ]
        metas = [
            ScoredBatchMeta(
                query_id=query,
                fragment_id=batch.fragment_id,
                scores=batch.scores,
                sizes=batch.sizes,
            )
            for batch in batches
        ]
        offsets_by_fragment, block_size = merge_query(metas, base)
        for batch in batches:
            offsets = offsets_by_fragment.get(batch.fragment_id, np.zeros(0))
            for index, (offset, size) in enumerate(
                zip(offsets, batch.sizes)
            ):
                placements.append(
                    (query, batch.fragment_id, index, int(offset), int(size))
                )
        base += block_size
    placements.sort(key=lambda p: p[3])
    return placements


def build_reference_bytestore(config: SimulationConfig) -> ByteStore:
    """The byte-exact expected output file for ``config``'s workload."""
    workload = config.build_workload()
    store = ByteStore(store_data=True)
    for query, fragment, index, offset, size in reference_layout(
        workload, config.nqueries, config.nfragments
    ):
        store.write(offset, size, result_payload(query, fragment, index, size))
    return store


def verify_against_reference(
    config: SimulationConfig, bytestore: ByteStore
) -> List[str]:
    """Compare a simulated run's output against the oracle.

    Returns a list of human-readable problems (empty = verified).  The
    bytestore must have been produced with ``store_data=True``.
    """
    problems: List[str] = []
    reference = build_reference_bytestore(config)
    if bytestore.extents() != reference.extents():
        problems.append(
            f"extents differ: got {bytestore.extents()[:3]}..., "
            f"expected {reference.extents()[:3]}..."
        )
        return problems
    if not bytestore.store_data:
        problems.append("bytestore has no content (store_data=False)")
        return problems
    # Compare content in 1 MiB windows to localize a mismatch.
    window = 1 << 20
    for start, end in reference.extents():
        position = start
        while position < end:
            take = min(window, end - position)
            got = bytestore.read(position, take)
            want = reference.read(position, take)
            if got != want:
                first = next(
                    i for i in range(take) if got[i] != want[i]
                )
                problems.append(
                    f"content mismatch at byte {position + first}"
                )
                return problems
            position += take
    return problems
