"""The worker process — Algorithm 2 of the paper.

Workers self-schedule: request a task, search it (simulated compute),
locally merge and ship sorted scores (plus payloads under master-writing),
and — in worker-writing strategies — write their results when the master's
offset lists arrive.  Under the individual strategies a worker keeps
processing new tasks while offset lists are in flight ("while workers wait
for the location list from the master, they can process additional
queries"); under WW-Coll every worker must enter the per-group collective
write.

Fault tolerance adds a crash/reboot loop around the main protocol: a
:class:`~repro.faults.injector.WorkerCrashFault` interrupt wipes the
worker's volatile state (stored result batches, in-flight bookkeeping),
the worker sleeps through its downtime, announces itself with a ``Rejoin``
(incarnation bumped), and re-enters the protocol from a clean slate.  A
heartbeat side-process lets the master detect the silence.  Writes and
their acknowledgements happen inside crash-critical sections, so a batch
is either provably unwritten (and safely recomputed) or acknowledged on
disk — never half-written.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .. import mpi
from ..faults.injector import WorkerCrashFault
from ..mpiio.file import MPIIOFile
from ..mpiio.hints import IND_LIST, IND_POSIX
from ..sim.errors import Interrupt
from ..workload.results import ResultBatch, result_payload
from .config import SimulationConfig, Workload
from .phases import Phase, PhaseTimer
from .protocol import (
    HEARTBEAT_BYTES,
    Heartbeat,
    MASTER_RANK,
    OffsetMessage,
    Release,
    REQUEST_BYTES,
    Rejoin,
    ScoreMessage,
    TAG_ASSIGN,
    TAG_HEARTBEAT,
    TAG_OFFSETS,
    TAG_REJOIN,
    TAG_REQUEST,
    TAG_SCORES,
    TAG_WRITE_ACK,
    TAG_WRITTEN,
    TaskAssignment,
    WriteAck,
    WrittenNotice,
)


class Worker:
    """State machine of one worker rank."""

    def __init__(
        self,
        comm,
        wcomm,
        cfg: SimulationConfig,
        workload: Workload,
        fh: MPIIOFile,
        recorder=None,
        db_fh: Optional[MPIIOFile] = None,
    ) -> None:
        self.comm = comm  # world communicator view (rank >= 1)
        self.wcomm = wcomm  # worker-only communicator view
        self.cfg = cfg
        self.workload = workload
        self.fh = fh
        self.strategy = cfg.io_strategy()
        # -- hybrid-auto (repro.adapt) --------------------------------------
        #: Under hybrid-auto each assignment arrives stamped with the
        #: query's chosen strategy; the worker keeps a per-task map so the
        #: eventual offset entries are written with the matching method.
        self.adaptive = cfg.adaptive
        self.task_strategy: Dict[Tuple[int, int], str] = {}
        #: Shard index, for checker ledger keys (MasterGroup overrides).
        self.shard_id = 0
        # -- fragment preload -------------------------------------------------
        #: Database file handle; when set, the worker reads a fragment's
        #: extent before its first search against it (mpiBLAST-style copy
        #: of the fragment to the node before searching).
        self.db_fh = db_fh
        self.loaded_fragments: Set[int] = set()
        # Keyed by the *global* rank so sharded runs (where each shard's
        # workers restart local numbering at 1) get distinct timer/trace
        # rows; on the world communicator global == local.
        self.timer = PhaseTimer(comm.env, rank=comm.global_rank, recorder=recorder)

        self.stored: Dict[Tuple[int, int], ResultBatch] = {}
        self.pending_sends: List = []
        self.no_more_work = False
        # Offset messages processed / barriers joined, counted in absolute
        # group ids (a resumed run starts past the already-written groups).
        self.groups_handled = cfg.resume_group
        self.groups_synced = cfg.resume_group

        # -- serve mode -------------------------------------------------------
        #: Worker-writing serve runs acknowledge writes so the master can
        #: stamp result-durable latency.
        self.serve_acks = cfg.arrival is not None and self.strategy.parallel_io
        #: Dynamic group count from the master's Release (serve mode); the
        #: static ``cfg.ngroups`` bound applies until it arrives.
        self.final_groups: Optional[int] = None

        self.offset_recv = None
        self.notice_recv = None
        self.assign_recv = None

        # -- fault tolerance ------------------------------------------------
        self.ft_active = cfg.fault_tolerance_active()
        self.fault_counters: Dict[str, int] = {}
        self.incarnation = 0
        self.crashed = False
        self._critical = 0
        self._hb_stop = False

    @property
    def in_critical_section(self) -> bool:
        """True while a crash must be deferred (see the injector)."""
        return self._critical > 0

    def _count(self, name: str, n: int = 1) -> None:
        self.fault_counters[name] = self.fault_counters.get(name, 0) + n
        m = self.comm.env.metrics
        if m.enabled:
            m.inc(f"faults.{name}", n, rank=self.comm.rank)

    def _critically(self, frag):
        """Run a process fragment with crash injection masked."""
        self._critical += 1
        try:
            result = yield from frag
        finally:
            self._critical -= 1
        return result

    # -- lifecycle ------------------------------------------------------------
    def run(self):
        """Process fragment: the worker's whole life."""
        comm, cfg, timer = self.comm, self.cfg, self.timer

        # Setup: receive input variables from the master (step 1).
        yield from self._critically(
            timer.measure(Phase.SETUP, mpi.bcast(comm, 0, 256, None))
        )

        if self.strategy.parallel_io:
            self.offset_recv = comm.irecv(source=MASTER_RANK, tag=TAG_OFFSETS)
        elif cfg.query_sync:
            self.notice_recv = comm.irecv(source=MASTER_RANK, tag=TAG_WRITTEN)

        if self.ft_active:
            comm.env.process(
                self._heartbeat_loop(), name=f"worker-{comm.rank}-heartbeat"
            )

        pending_downtime: Optional[float] = None
        while True:
            try:
                if pending_downtime is not None:
                    # Reboot: sit out the downtime, then rejoin the run.
                    yield comm.env.timeout(pending_downtime)
                    pending_downtime = None
                    self._rejoin()
                yield from self._main_loop()
                break
            except Interrupt as exc:
                if not self.ft_active or not isinstance(
                    exc.cause, WorkerCrashFault
                ):
                    self._hb_stop = True
                    raise
                pending_downtime = self._crash_cleanup(exc.cause)

        self._hb_stop = True
        # Make sure all score sends reached the master (step 15).
        self._critical += 1
        try:
            for send in self.pending_sends:
                yield from timer.measure(Phase.GATHER, send.wait())
            yield from timer.measure(Phase.SYNC, mpi.barrier(comm))
        finally:
            self._critical -= 1
        timer.finish()
        return timer.report()

    def _main_loop(self):
        comm, timer = self.comm, self.timer
        while True:
            yield from self._drain_io()

            if not self.no_more_work:
                yield from self._request_and_work()
            else:
                if self._io_finished():
                    return
                # Only offset lists / notices remain; wait for the next one.
                events = self._io_events()
                start = comm.env.now
                yield comm.env.any_of(events)
                timer.add_span(Phase.DATA_DISTRIBUTION, start)

    # -- crash / reboot ---------------------------------------------------------
    def _crash_cleanup(self, fault: WorkerCrashFault) -> float:
        """Model the loss of all volatile state; returns the downtime."""
        self.crashed = True
        self.incarnation += 1
        self._count("crashes")
        # Close any timeline intervals the dying incarnation left open —
        # otherwise the rebooted incarnation's begin() for the same state
        # raises "already open" (the open-interval leak).
        recorder = self.timer.recorder
        if recorder is not None and hasattr(recorder, "abort"):
            recorder.abort(self.comm.rank, self.comm.env.now)
        if self.stored:
            self._count("batches_lost", len(self.stored))
            self.stored.clear()
        self.task_strategy.clear()
        # The fragment cache is volatile too: a rebooted worker must re-read
        # any fragment before searching it again.
        self.loaded_fragments.clear()
        # In-flight sends survive (the NIC already has the bytes) but we
        # stop tracking them; an unserved assignment is dropped on the
        # floor — the master's recovery requeues whatever it had assigned.
        self.pending_sends = []
        if self.assign_recv is not None:
            if not self.assign_recv.matched:
                self.assign_recv.cancel()
            self.assign_recv = None
        return fault.downtime_s

    def _rejoin(self) -> None:
        self.crashed = False
        note = Rejoin(worker=self.comm.rank, incarnation=self.incarnation)
        self.comm.isend(MASTER_RANK, TAG_REJOIN, HEARTBEAT_BYTES, note, oob=True)

    def _heartbeat_loop(self):
        env = self.comm.env
        ftc = self.cfg.effective_fault_tolerance()
        while not self._hb_stop:
            yield env.timeout(ftc.heartbeat_interval_s)
            if self._hb_stop:
                return
            if self.crashed:
                continue
            beat = Heartbeat(worker=self.comm.rank, incarnation=self.incarnation)
            self.comm.isend(
                MASTER_RANK, TAG_HEARTBEAT, HEARTBEAT_BYTES, beat, oob=True
            )

    # -- task cycle --------------------------------------------------------------
    def _request_and_work(self):
        comm, timer = self.comm, self.timer

        request = comm.isend(MASTER_RANK, TAG_REQUEST, REQUEST_BYTES, comm.rank)
        self.assign_recv = comm.irecv(source=MASTER_RANK, tag=TAG_ASSIGN)

        while not self.assign_recv.completed:
            events = [self.assign_recv.done_event] + self._io_events()
            start = comm.env.now
            yield comm.env.any_of(events)
            timer.add_span(Phase.DATA_DISTRIBUTION, start)
            yield from self._drain_io()

        assignment: Optional[TaskAssignment] = self.assign_recv.done_event.value
        self.assign_recv = None
        if assignment is None:
            self.no_more_work = True
            return
        if isinstance(assignment, Release):
            self.final_groups = assignment.final_groups
            self.no_more_work = True
            return
        yield from self._do_task(assignment)

    def _preload_fragment(self, fragment_id: int):
        """Read the fragment's extent from the shared database file before
        the first search against it (read-dominated startup I/O)."""
        offset, nbytes = self.workload.database.fragment_extent(fragment_id)
        yield from self.timer.measure(
            Phase.IO,
            self.db_fh.read_at(self.comm.global_rank, offset, nbytes),
        )
        self.loaded_fragments.add(fragment_id)
        m = self.comm.env.metrics
        if m.enabled:
            m.inc("app.fragments_preloaded", 1.0, rank=self.comm.rank)

    def _do_task(self, task: TaskAssignment):
        cfg, timer = self.cfg, self.timer
        if self.db_fh is not None and task.fragment_id not in self.loaded_fragments:
            yield from self._preload_fragment(task.fragment_id)
        batch = self.workload.results.batch(task.query_id, task.fragment_id)

        # Compute: the simulated search (step 6).
        yield from timer.sleep(Phase.COMPUTE, cfg.compute.batch_time(batch))
        m = self.comm.env.metrics
        if m.enabled:
            m.inc("app.tasks_completed", 1.0, rank=self.comm.rank)

        ship_payload = not self.strategy.parallel_io
        if self.adaptive:
            name = task.strategy if task.strategy is not None else "ww-list"
            ship_payload = name == "mw"
            if not ship_payload:
                self.task_strategy[(task.query_id, task.fragment_id)] = name
        payload_bytes = 0
        payloads: Optional[List[bytes]] = None
        if not ship_payload:
            # Merge with previous results for this query (step 8).
            cost = cfg.merge.merge_time(batch.count, batch.total_bytes)
            yield from timer.sleep(Phase.MERGE, cost)
            self.stored[(task.query_id, task.fragment_id)] = batch
        else:
            payload_bytes = batch.total_bytes
            if cfg.store_data:
                # Identity comes from the batch (its query id is global
                # even when this worker addresses queries through a
                # partition-local view, as in hybrid segmentation).
                payloads = [
                    result_payload(
                        batch.query_id, batch.fragment_id, i, int(size)
                    )
                    for i, size in enumerate(batch.sizes)
                ]

        message = ScoreMessage(
            query_id=task.query_id,
            fragment_id=task.fragment_id,
            worker=self.comm.rank,
            scores=batch.scores,
            sizes=batch.sizes,
            payload_bytes=payload_bytes,
            payloads=payloads,
            incarnation=self.incarnation,
        )
        # Nonblocking send of scores (and results if MW) — step 10.
        send = self.comm.isend(
            MASTER_RANK, TAG_SCORES, message.wire_bytes(), message
        )
        self.pending_sends.append(send)
        self.pending_sends = [s for s in self.pending_sends if not s.completed]
        if False:  # pragma: no cover - keeps this a generator
            yield None

    # -- I/O-side message handling -------------------------------------------------
    def _io_events(self) -> List:
        events = []
        if self.offset_recv is not None:
            events.append(self.offset_recv.done_event)
        if self.notice_recv is not None:
            events.append(self.notice_recv.done_event)
        return events

    def _drain_io(self):
        while True:
            progressed = False
            if self.offset_recv is not None and self.offset_recv.completed:
                message: OffsetMessage = self.offset_recv.done_event.value
                self.offset_recv = self.comm.irecv(
                    source=MASTER_RANK, tag=TAG_OFFSETS
                )
                yield from self._critically(self._handle_offsets(message))
                progressed = True
            if self.notice_recv is not None and self.notice_recv.completed:
                notice: WrittenNotice = self.notice_recv.done_event.value
                self.notice_recv = self.comm.irecv(
                    source=MASTER_RANK, tag=TAG_WRITTEN
                )
                yield from self._critically(self._handle_notice(notice))
                progressed = True
            if not progressed:
                return

    def _handle_offsets(self, message: OffsetMessage):
        """Write the group's results (step 18) and sync if requested."""
        cfg, timer = self.cfg, self.timer
        if message.discard:
            self._handle_discard(message)
            return
        if message.repair:
            yield from self._write_repair(message)
            return
        # Buckets keyed by write method: a single ``None`` bucket (the
        # hinted method) under static strategies; under hybrid-auto one
        # bucket per method actually chosen, issued as separate writes.
        buckets: Dict[
            Optional[str], List[Tuple[int, int, Optional[bytes]]]
        ] = {}
        written: List[Tuple[int, int]] = []
        for entry in message.entries:
            key = (entry.query_id, entry.fragment_id)
            batch = self.stored.pop(key, None)
            if batch is None:
                if not self.ft_active:
                    raise KeyError(key)
                # The batch died in a crash after the master merged its
                # scores; the recovery protocol repairs it out-of-band.
                self._count("entries_skipped")
                self.task_strategy.pop(key, None)
                continue
            written.append(key)
            method = self._entry_method(key)
            c = self.comm.env.check
            if c.enabled:
                c.entry_alignment(
                    entry.query_id, entry.fragment_id,
                    len(entry.offsets), len(batch.sizes),
                )
            rows = buckets.setdefault(method, [])
            for i, (offset, size) in enumerate(zip(entry.offsets, batch.sizes)):
                data: Optional[bytes] = None
                if cfg.store_data:
                    data = result_payload(
                        batch.query_id, batch.fragment_id, i, int(size)
                    )
                rows.append((int(offset), int(size), data))

        if self.strategy.collective:
            # Everyone joins the collective write, data or not.
            rows = buckets.get(None, [])
            regions = [(o, s) for o, s, _ in rows]
            datas = [d for _, _, d in rows] if cfg.store_data else None
            yield from timer.measure(
                Phase.IO, self.fh.write_at_all(self.wcomm, regions, datas)
            )
        else:
            for method in (None, IND_POSIX, IND_LIST):
                rows = buckets.get(method)
                if not rows:
                    continue
                regions = [(o, s) for o, s, _ in rows]
                datas = [d for _, _, d in rows] if cfg.store_data else None
                yield from timer.measure(
                    Phase.IO,
                    self.fh.write_at_list(
                        self.comm.global_rank, regions, datas, method=method
                    ),
                )
        self.groups_handled = max(self.groups_handled, message.group + 1)
        if (self.ft_active or self.serve_acks) and written:
            self._send_ack(written)

        if cfg.query_sync:
            yield from timer.measure(Phase.SYNC, mpi.barrier(self.wcomm))
            self.groups_synced = max(self.groups_synced, message.group + 1)

    def _entry_method(self, key: Tuple[int, int]) -> Optional[str]:
        """Write method for one offset entry's batch.

        ``None`` (the file handle's hinted method) under static strategies;
        under hybrid-auto the method matching the task's stamped strategy,
        reported to the checker's executed ledger."""
        if not self.adaptive:
            return None
        name = self.task_strategy.pop(key, "ww-list")
        c = self.comm.env.check
        if c.enabled:
            c.strategy_executed(key[0], name, shard=self.shard_id)
        return IND_POSIX if name == "ww-posix" else IND_LIST

    def _handle_discard(self, message: OffsetMessage) -> None:
        """Drop stranded batches another worker already delivered."""
        for entry in message.entries:
            key = (entry.query_id, entry.fragment_id)
            self.task_strategy.pop(key, None)
            if self.stored.pop(key, None) is not None:
                self._count("batches_discarded")

    def _write_repair(self, message: OffsetMessage):
        """Write a recomputed batch at its originally-issued offsets.

        Repairs are always individual writes (even under WW-Coll — the
        surviving group collective already happened without these bytes)
        and never advance the group counters.
        """
        cfg, timer = self.cfg, self.timer
        buckets: Dict[
            Optional[str], List[Tuple[int, int, Optional[bytes]]]
        ] = {}
        written: List[Tuple[int, int]] = []
        for entry in message.entries:
            key = (entry.query_id, entry.fragment_id)
            batch = self.stored.pop(key, None)
            if batch is None:
                # Crashed again between the recompute and this repair; the
                # master will reissue to the next recompute.
                self._count("entries_skipped")
                self.task_strategy.pop(key, None)
                continue
            written.append(key)
            method = self._entry_method(key)
            c = self.comm.env.check
            if c.enabled:
                c.entry_alignment(
                    entry.query_id, entry.fragment_id,
                    len(entry.offsets), len(batch.sizes),
                )
            rows = buckets.setdefault(method, [])
            for i, (offset, size) in enumerate(zip(entry.offsets, batch.sizes)):
                data: Optional[bytes] = None
                if cfg.store_data:
                    data = result_payload(
                        batch.query_id, batch.fragment_id, i, int(size)
                    )
                rows.append((int(offset), int(size), data))
        for method in (None, IND_POSIX, IND_LIST):
            rows = buckets.get(method)
            if not rows:
                continue
            regions = [(o, s) for o, s, _ in rows]
            datas = [d for _, _, d in rows] if cfg.store_data else None
            yield from timer.measure(
                Phase.IO,
                self.fh.write_at_list(
                    self.comm.global_rank, regions, datas, method=method
                ),
            )
        if written:
            self._count("repairs_written", len(written))
            self._send_ack(written)

    def _send_ack(self, keys: List[Tuple[int, int]]) -> None:
        # OOB: an ack stuck behind bulk data could outlive its sender's
        # death detection and trigger a spurious (overlapping!) reissue.
        ack = WriteAck(worker=self.comm.rank, keys=tuple(keys))
        self.comm.isend(MASTER_RANK, TAG_WRITE_ACK, ack.wire_bytes(), ack, oob=True)

    def _handle_notice(self, notice: WrittenNotice):
        """MW + query sync: barrier once the master wrote the group."""
        yield from self.timer.measure(Phase.SYNC, mpi.barrier(self.wcomm))
        self.groups_synced = max(self.groups_synced, notice.group + 1)

    # -- termination -------------------------------------------------------------------
    def _effective_groups(self) -> int:
        """The run's final group count (dynamic in serve mode)."""
        if self.final_groups is not None:
            return self.final_groups
        return self.cfg.ngroups

    def _io_finished(self) -> bool:
        cfg = self.cfg
        ngroups = self._effective_groups()
        if self.strategy.master_writes:
            return (not cfg.query_sync) or self.groups_synced >= ngroups
        if self.strategy.collective or cfg.query_sync:
            # Every group produces a message to every worker.
            synced_ok = (not cfg.query_sync) or self.groups_synced >= ngroups
            return self.groups_handled >= ngroups and not self.stored and synced_ok
        # Individual, no sync: done once everything stored has been written.
        return not self.stored and self.no_more_work
