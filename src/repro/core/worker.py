"""The worker process — Algorithm 2 of the paper.

Workers self-schedule: request a task, search it (simulated compute),
locally merge and ship sorted scores (plus payloads under master-writing),
and — in worker-writing strategies — write their results when the master's
offset lists arrive.  Under the individual strategies a worker keeps
processing new tasks while offset lists are in flight ("while workers wait
for the location list from the master, they can process additional
queries"); under WW-Coll every worker must enter the per-group collective
write.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .. import mpi
from ..mpiio.file import MPIIOFile
from ..workload.results import ResultBatch, result_payload
from .config import SimulationConfig, Workload
from .phases import Phase, PhaseTimer
from .protocol import (
    MASTER_RANK,
    OffsetMessage,
    REQUEST_BYTES,
    ScoreMessage,
    TAG_ASSIGN,
    TAG_OFFSETS,
    TAG_REQUEST,
    TAG_SCORES,
    TAG_WRITTEN,
    TaskAssignment,
    WrittenNotice,
)


class Worker:
    """State machine of one worker rank."""

    def __init__(
        self,
        comm,
        wcomm,
        cfg: SimulationConfig,
        workload: Workload,
        fh: MPIIOFile,
        recorder=None,
    ) -> None:
        self.comm = comm  # world communicator view (rank >= 1)
        self.wcomm = wcomm  # worker-only communicator view
        self.cfg = cfg
        self.workload = workload
        self.fh = fh
        self.strategy = cfg.io_strategy()
        self.timer = PhaseTimer(comm.env, rank=comm.rank, recorder=recorder)

        self.stored: Dict[Tuple[int, int], ResultBatch] = {}
        self.pending_sends: List = []
        self.no_more_work = False
        # Offset messages processed / barriers joined, counted in absolute
        # group ids (a resumed run starts past the already-written groups).
        self.groups_handled = cfg.resume_group
        self.groups_synced = cfg.resume_group

        self.offset_recv = None
        self.notice_recv = None

    # -- lifecycle ------------------------------------------------------------
    def run(self):
        """Process fragment: the worker's whole life."""
        comm, cfg, timer = self.comm, self.cfg, self.timer

        # Setup: receive input variables from the master (step 1).
        yield from timer.measure(Phase.SETUP, mpi.bcast(comm, 0, 256, None))

        if self.strategy.parallel_io:
            self.offset_recv = comm.irecv(source=MASTER_RANK, tag=TAG_OFFSETS)
        elif cfg.query_sync:
            self.notice_recv = comm.irecv(source=MASTER_RANK, tag=TAG_WRITTEN)

        while True:
            yield from self._drain_io()

            if not self.no_more_work:
                yield from self._request_and_work()
            else:
                if self._io_finished():
                    break
                # Only offset lists / notices remain; wait for the next one.
                events = self._io_events()
                start = comm.env.now
                yield comm.env.any_of(events)
                timer.add_span(Phase.DATA_DISTRIBUTION, start)

        # Make sure all score sends reached the master (step 15).
        for send in self.pending_sends:
            yield from timer.measure(Phase.GATHER, send.wait())
        yield from timer.measure(Phase.SYNC, mpi.barrier(comm))
        timer.finish()
        return timer.report()

    # -- task cycle --------------------------------------------------------------
    def _request_and_work(self):
        comm, timer = self.comm, self.timer

        request = comm.isend(MASTER_RANK, TAG_REQUEST, REQUEST_BYTES, comm.rank)
        assign_recv = comm.irecv(source=MASTER_RANK, tag=TAG_ASSIGN)

        while not assign_recv.completed:
            events = [assign_recv.done_event] + self._io_events()
            start = comm.env.now
            yield comm.env.any_of(events)
            timer.add_span(Phase.DATA_DISTRIBUTION, start)
            yield from self._drain_io()

        assignment: Optional[TaskAssignment] = assign_recv.done_event.value
        if assignment is None:
            self.no_more_work = True
            return
        yield from self._do_task(assignment)

    def _do_task(self, task: TaskAssignment):
        cfg, timer = self.cfg, self.timer
        batch = self.workload.results.batch(task.query_id, task.fragment_id)

        # Compute: the simulated search (step 6).
        yield from timer.sleep(Phase.COMPUTE, cfg.compute.batch_time(batch))

        payload_bytes = 0
        payloads: Optional[List[bytes]] = None
        if self.strategy.parallel_io:
            # Merge with previous results for this query (step 8).
            cost = cfg.merge.merge_time(batch.count, batch.total_bytes)
            yield from timer.sleep(Phase.MERGE, cost)
            self.stored[(task.query_id, task.fragment_id)] = batch
        else:
            payload_bytes = batch.total_bytes
            if cfg.store_data:
                # Identity comes from the batch (its query id is global
                # even when this worker addresses queries through a
                # partition-local view, as in hybrid segmentation).
                payloads = [
                    result_payload(
                        batch.query_id, batch.fragment_id, i, int(size)
                    )
                    for i, size in enumerate(batch.sizes)
                ]

        message = ScoreMessage(
            query_id=task.query_id,
            fragment_id=task.fragment_id,
            worker=self.comm.rank,
            scores=batch.scores,
            sizes=batch.sizes,
            payload_bytes=payload_bytes,
            payloads=payloads,
        )
        # Nonblocking send of scores (and results if MW) — step 10.
        send = self.comm.isend(
            MASTER_RANK, TAG_SCORES, message.wire_bytes(), message
        )
        self.pending_sends.append(send)
        self.pending_sends = [s for s in self.pending_sends if not s.completed]
        if False:  # pragma: no cover - keeps this a generator
            yield None

    # -- I/O-side message handling -------------------------------------------------
    def _io_events(self) -> List:
        events = []
        if self.offset_recv is not None:
            events.append(self.offset_recv.done_event)
        if self.notice_recv is not None:
            events.append(self.notice_recv.done_event)
        return events

    def _drain_io(self):
        while True:
            progressed = False
            if self.offset_recv is not None and self.offset_recv.completed:
                message: OffsetMessage = self.offset_recv.done_event.value
                self.offset_recv = self.comm.irecv(
                    source=MASTER_RANK, tag=TAG_OFFSETS
                )
                yield from self._handle_offsets(message)
                progressed = True
            if self.notice_recv is not None and self.notice_recv.completed:
                notice: WrittenNotice = self.notice_recv.done_event.value
                self.notice_recv = self.comm.irecv(
                    source=MASTER_RANK, tag=TAG_WRITTEN
                )
                yield from self._handle_notice(notice)
                progressed = True
            if not progressed:
                return

    def _handle_offsets(self, message: OffsetMessage):
        """Write the group's results (step 18) and sync if requested."""
        cfg, timer = self.cfg, self.timer
        regions: List[Tuple[int, int]] = []
        datas: Optional[List[Optional[bytes]]] = [] if cfg.store_data else None
        for entry in message.entries:
            batch = self.stored.pop((entry.query_id, entry.fragment_id))
            for i, (offset, size) in enumerate(zip(entry.offsets, batch.sizes)):
                regions.append((int(offset), int(size)))
                if datas is not None:
                    datas.append(
                        result_payload(
                            batch.query_id, batch.fragment_id, i, int(size)
                        )
                    )

        if self.strategy.collective:
            # Everyone joins the collective write, data or not.
            yield from timer.measure(
                Phase.IO, self.fh.write_at_all(self.wcomm, regions, datas)
            )
        elif regions:
            yield from timer.measure(
                Phase.IO,
                self.fh.write_at_list(self.comm.global_rank, regions, datas),
            )
        self.groups_handled = message.group + 1

        if cfg.query_sync:
            yield from timer.measure(Phase.SYNC, mpi.barrier(self.wcomm))
            self.groups_synced = message.group + 1

    def _handle_notice(self, notice: WrittenNotice):
        """MW + query sync: barrier once the master wrote the group."""
        yield from self.timer.measure(Phase.SYNC, mpi.barrier(self.wcomm))
        self.groups_synced = notice.group + 1

    # -- termination -------------------------------------------------------------------
    def _io_finished(self) -> bool:
        cfg = self.cfg
        if self.strategy.master_writes:
            return (not cfg.query_sync) or self.groups_synced >= cfg.ngroups
        if self.strategy.collective or cfg.query_sync:
            # Every group produces a message to every worker.
            synced_ok = (not cfg.query_sync) or self.groups_synced >= cfg.ngroups
            return self.groups_handled >= cfg.ngroups and not self.stored and synced_ok
        # Individual, no sync: done once everything stored has been written.
        return not self.stored and self.no_more_work
