"""Named scenarios: the real tools each strategy configuration mirrors.

The paper anchors every strategy in a shipping sequence-search tool:

* **mpiBLAST 1.2** — master-writing, all results held until the end of the
  run ("the master wrote all its results at the end of the application
  run.  This limited the size of input queries and the target database").
* **mpiBLAST 1.4** — master-writing, results written immediately after
  each query ("the current design path ... has headed towards writing the
  results out immediately after a query is processed").
* **pioBLAST** — collective worker-writing ("The WW-Coll strategy,
  proposed by pioBLAST, uses MPI-IO collective writes").
* **proposed** — the paper's individual worker-writing list-I/O strategy.

Each scenario is a function from a base configuration to a concrete
:class:`~repro.core.config.SimulationConfig`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, Optional

from .config import SimulationConfig


def mpiblast_12(base: Optional[SimulationConfig] = None) -> SimulationConfig:
    """mpiBLAST 1.2: master writes everything at the end of the run."""
    base = base if base is not None else SimulationConfig()
    return base.with_(strategy="mw", write_every=base.nqueries)


def mpiblast_14(base: Optional[SimulationConfig] = None) -> SimulationConfig:
    """mpiBLAST 1.4: master writes after every query (resumable)."""
    base = base if base is not None else SimulationConfig()
    return base.with_(strategy="mw", write_every=1)


def pioblast(base: Optional[SimulationConfig] = None) -> SimulationConfig:
    """pioBLAST: collective worker writes, all results at the end."""
    base = base if base is not None else SimulationConfig()
    return base.with_(strategy="ww-coll", write_every=base.nqueries)


def proposed_ww_list(base: Optional[SimulationConfig] = None) -> SimulationConfig:
    """The paper's proposal: individual worker list-I/O per query."""
    base = base if base is not None else SimulationConfig()
    return base.with_(strategy="ww-list", write_every=1)


def proposed_ww_posix(base: Optional[SimulationConfig] = None) -> SimulationConfig:
    """The proposal's unoptimized variant (per-region POSIX writes)."""
    base = base if base is not None else SimulationConfig()
    return base.with_(strategy="ww-posix", write_every=1)


def preload(base: Optional[SimulationConfig] = None) -> SimulationConfig:
    """Read-dominated startup: every worker faults its fragments in from
    the shared database file before the first search, with server
    read-ahead turned on (sequential fragment scans are the best case for
    prefetch) and the adaptive per-query strategy handling the writes."""
    base = base if base is not None else SimulationConfig()
    return base.with_(
        strategy="hybrid-auto",
        query_sync=False,
        write_every=1,
        preload_fragments=True,
        pvfs=replace(base.pvfs, readahead_B=1024 * 1024),
    )


def checkpoint_restart(base: Optional[SimulationConfig] = None) -> SimulationConfig:
    """Restart after a mid-run server loss: the first half of the queries
    is assumed durable from the previous incarnation, the master re-reads
    and verifies that prefix before dispatching the rest, and a
    :class:`~repro.faults.plan.ServerKill` fires mid-run against a
    2-replica volume so the re-read survives the outage."""
    from ..faults.plan import FaultPlan, ServerKill

    base = base if base is not None else SimulationConfig()
    if base.nqueries < 2:
        raise ValueError("checkpoint-restart needs at least 2 queries")
    return base.with_(
        strategy="ww-list",
        write_every=1,
        resume_from_query=base.nqueries // 2,
        verify_resume=True,
        pvfs=replace(base.pvfs, replicas=2),
        fault_plan=FaultPlan(server_kills=(ServerKill(0, at_time=5.0),)),
    )


SCENARIOS: Dict[str, Callable[[Optional[SimulationConfig]], SimulationConfig]] = {
    "mpiblast-1.2": mpiblast_12,
    "mpiblast-1.4": mpiblast_14,
    "pioblast": pioblast,
    "proposed": proposed_ww_list,
    "proposed-posix": proposed_ww_posix,
    "preload": preload,
    "checkpoint-restart": checkpoint_restart,
}


def get_scenario(
    name: str, base: Optional[SimulationConfig] = None
) -> SimulationConfig:
    """Build the configuration for a named historical scenario."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        ) from None
    return factory(base)
