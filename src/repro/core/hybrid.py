"""Hybrid query/database segmentation — the paper's future-work item.

"There are many other input variables that can significantly affect
overall application performance such as ... hybrid query
segmentation/database segmentation strategies" (Section 5).

The hybrid splits the machine into ``npartitions`` independent
master/worker partitions.  Queries are divided across partitions (query
segmentation between partitions); within a partition the database is
fragmented as usual (database segmentation).  All partitions share the
same network and the same PVFS2 volume, each writing its own output file
— so the partitions' I/O genuinely contends, which is the interesting
part of the trade-off:

* more partitions → smaller collective/offset scopes, masters serve fewer
  workers, and per-query write serialization shrinks;
* fewer partitions → better load balance across the whole query set (a
  partition stuck with expensive queries cannot steal work from another).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..mpi.world import MpiWorld
from ..mpiio.file import MPIIOFile
from ..pvfs.filesystem import FileSystem, PVFSFile
from ..workload.queries import Query, QuerySet
from .config import SimulationConfig, Workload
from .master import Master
from .report import FileStats, RunResult
from .worker import Worker


class _QuerySlice:
    """Workload view exposing a contiguous slice of the global queries
    under local ids 0..n-1 (each partition's master/worker protocol works
    in local query ids)."""

    def __init__(self, workload: Workload, lo: int, hi: int) -> None:
        self._workload = workload
        self._lo = lo
        self._hi = hi
        self.queries = QuerySet(
            [
                Query(local, workload.queries[lo + local].nbytes)
                for local in range(hi - lo)
            ]
        )
        self.database = workload.database
        self.results = _ResultSlice(workload, lo)


class _ResultSlice:
    """Result generator view translating local query ids to global ones."""

    def __init__(self, workload: Workload, lo: int) -> None:
        self._results = workload.results
        self._lo = lo

    def batch(self, query_id: int, fragment_id: int):
        return self._results.batch(self._lo + query_id, fragment_id)

    def query_total_bytes(self, query_id: int) -> int:
        return self._results.query_total_bytes(self._lo + query_id)

    def run_total_bytes(self) -> int:
        n = len(self._results.queries)
        return sum(
            self._results.query_total_bytes(q)
            for q in range(self._lo, min(self._lo + 10**9, n))
        )


@dataclass(frozen=True)
class HybridResult:
    """Outcome of a hybrid run."""

    npartitions: int
    elapsed: float
    partition_results: List[RunResult]

    @property
    def complete(self) -> bool:
        return all(r.file_stats.complete for r in self.partition_results)

    def summary_line(self) -> str:
        per = " ".join(
            f"p{i}={r.elapsed:.2f}s" for i, r in enumerate(self.partition_results)
        )
        return (
            f"hybrid k={self.npartitions} total={self.elapsed:8.2f}s  [{per}]"
        )


class HybridS3aSim:
    """Run ``npartitions`` S3aSim partitions on one simulated machine."""

    def __init__(self, config: SimulationConfig, npartitions: int) -> None:
        if npartitions <= 0:
            raise ValueError("npartitions must be positive")
        if config.nprocs < 2 * npartitions:
            raise ValueError(
                "each partition needs at least 2 processes "
                f"({config.nprocs} procs for {npartitions} partitions)"
            )
        if config.nqueries < npartitions:
            raise ValueError("need at least one query per partition")
        if config.resume_from_query:
            raise ValueError("hybrid runs do not support resuming")
        self.config = config
        self.npartitions = npartitions
        self.world = MpiWorld(nranks=config.nprocs, network=config.network)
        self.fs = FileSystem(
            self.world.env,
            config.effective_pvfs(),
            client_nic=lambda rank: self.world.network.nic(rank),
        )
        self.workload = config.build_workload()

    # -- partitioning -------------------------------------------------------
    def partition_ranks(self, index: int) -> List[int]:
        """Contiguous rank block of one partition."""
        base = self.config.nprocs // self.npartitions
        extra = self.config.nprocs % self.npartitions
        start = index * base + min(index, extra)
        size = base + (1 if index < extra else 0)
        return list(range(start, start + size))

    def partition_queries(self, index: int) -> range:
        """Contiguous query slice of one partition."""
        base = self.config.nqueries // self.npartitions
        extra = self.config.nqueries % self.npartitions
        start = index * base + min(index, extra)
        size = base + (1 if index < extra else 0)
        return range(start, start + size)

    # -- execution --------------------------------------------------------------
    def run(self) -> HybridResult:
        cfg = self.config
        partition_meta = []

        for index in range(self.npartitions):
            ranks = self.partition_ranks(index)
            queries = self.partition_queries(index)
            sub_cfg = cfg.with_(
                nprocs=len(ranks),
                nqueries=len(queries),
                output_path=f"{cfg.output_path}.part{index}",
            )
            comm = self.world.comm.sub(ranks)
            wcomm = comm.sub(list(range(1, len(ranks))))

            file = PVFSFile(
                sub_cfg.output_path, self.fs.layout, cfg.store_data
            )
            self.fs.files[sub_cfg.output_path] = file
            strategy = sub_cfg.io_strategy()
            fh = MPIIOFile(
                self.fs, file,
                strategy.hints(sync_after_write=cfg.sync_after_write),
            )
            workload_view = _QuerySlice(
                self.workload, queries.start, queries.stop
            )

            master = Master(comm.view(0), sub_cfg, fh)
            self.world.spawn(ranks[0], lambda _v, m=master: m.run())
            worker_objs = []
            for local in range(1, len(ranks)):
                worker = Worker(
                    comm.view(local), wcomm.view(local - 1), sub_cfg,
                    workload_view, fh,
                )
                worker_objs.append(worker)
                self.world.spawn(ranks[local], lambda _v, w=worker: w.run())
            partition_meta.append((sub_cfg, fh, workload_view, ranks))

        reports = self.world.run()
        elapsed = self.world.env.now

        results = []
        for index, (sub_cfg, fh, workload_view, ranks) in enumerate(
            partition_meta
        ):
            bytestore = fh.file.bytestore
            expected = sum(
                workload_view.results.query_total_bytes(q)
                for q in range(sub_cfg.nqueries)
            )
            stats = FileStats(
                total_bytes=bytestore.total_bytes(),
                expected_bytes=expected,
                nextents=len(bytestore.extents()),
                dense=bytestore.is_dense(expected),
            )
            # A partition's own span: when its slowest rank finished.
            # (The final barrier is per-partition, so ranks of a fast
            # partition really do finish early.)
            partition_elapsed = max(reports[r].total for r in ranks)
            results.append(
                RunResult(
                    strategy=sub_cfg.strategy,
                    query_sync=sub_cfg.query_sync,
                    nprocs=sub_cfg.nprocs,
                    compute_speed=sub_cfg.compute.speed,
                    elapsed=partition_elapsed,
                    master=reports[ranks[0]],
                    workers=[reports[r] for r in ranks[1:]],
                    file_stats=stats,
                )
            )
        return HybridResult(
            npartitions=self.npartitions,
            elapsed=elapsed,
            partition_results=results,
        )


def run_hybrid(config: SimulationConfig, npartitions: int) -> HybridResult:
    """Convenience one-shot hybrid run."""
    return HybridS3aSim(config, npartitions).run()
