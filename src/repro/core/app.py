"""S3aSim application runner: wire everything together and run one job.

Builds the simulated cluster (MPI world + PVFS2 volume sharing the same
NICs), generates the workload, spawns the master (rank 0) and the workers
(ranks 1..n-1), runs to completion, and validates the output file against
the deterministic expectation.
"""

from __future__ import annotations

from typing import Optional

from ..adapt.selector import StrategySelector
from ..check.invariants import InvariantChecker
from ..faults.injector import FaultInjector
from ..mpi.world import MpiWorld
from ..mpiio.file import MPIIOFile
from ..obs.metrics import MetricsRegistry
from ..pvfs.filesystem import FileSystem, PVFSFile
from ..serve.arrivals import arrival_process
from ..sim.environment import Environment
from .config import SimulationConfig, Workload
from .master import Master
from .report import FileStats, RunResult
from .worker import Worker


class S3aSim:
    """One configured simulation instance (reusable pieces exposed for
    tests: ``world``, ``fs``, ``workload``, ``fh``)."""

    def __init__(self, config: SimulationConfig, recorder=None) -> None:
        self.config = config
        self.recorder = recorder
        self.world = MpiWorld(
            nranks=config.nprocs,
            network=config.network,
            env=Environment(scheduler=config.scheduler),
        )
        if config.collect_metrics:
            # Attach before the FileSystem exists: IOServer binds its
            # counter handles at construction time.
            self.world.env.metrics = MetricsRegistry(
                constant_labels={"strategy": config.strategy}
            )
        if config.check:
            # Same placement rule as metrics: before any layer caches the
            # environment hook.
            self.world.env.check = InvariantChecker(self.world.env)
        self.fs = FileSystem(
            self.world.env,
            config.effective_pvfs(),
            client_nic=lambda rank: self.world.network.nic(rank),
            recorder=recorder,
        )
        self.workload: Workload = config.build_workload()
        # The output file is created up-front (rank 0 would MPI_File_open
        # with MODE_CREATE; the metadata cost is negligible next to the
        # run and keeping it out of the rank processes simplifies handle
        # sharing).
        file = PVFSFile(
            config.output_path, self.fs.layout, config.effective_pvfs().store_data
        )
        self.fs.files[config.output_path] = file
        strategy = config.io_strategy()
        self.fh = MPIIOFile(
            self.fs, file, strategy.hints(sync_after_write=config.sync_after_write)
        )
        # Shared database file for fragment preloads: densely-packed
        # fragments, read-only during the run (store_data off — only the
        # I/O timing matters, the sequence bytes carry no information).
        self.db_fh: Optional[MPIIOFile] = None
        if config.preload_fragments:
            db_file = PVFSFile("/s3asim/db", self.fs.layout, False)
            self.fs.files["/s3asim/db"] = db_file
            self.db_fh = MPIIOFile(
                self.fs, db_file, strategy.hints(sync_after_write=False)
            )
        # Worker-only communicator (rank i of wcomm == world rank i+1): the
        # collective writes and query-sync barriers happen here.
        self.wcomm = self.world.comm.sub(list(range(1, config.nprocs)))

    def run(self, until: Optional[float] = None) -> RunResult:
        """Execute the simulation and return the collected result.

        ``until`` cuts the run off at that simulated time (serve-mode
        horizon experiments); phase reports are then synthesized from the
        live timers and still-open trace intervals are cleaned up, so the
        partial result is still well-formed.
        """
        cfg = self.config

        resume_block_sizes = None
        if cfg.resume_from_query:
            resume_block_sizes = [
                self.workload.results.query_total_bytes(q)
                for q in range(cfg.resume_from_query)
            ]
        selector = None
        if cfg.adaptive:
            selector = StrategySelector(
                self.workload.results, self.fs, nworkers=cfg.nworkers
            )
        master = Master(
            self.world.comm.view(0), cfg, self.fh,
            recorder=self.recorder,
            resume_block_sizes=resume_block_sizes,
            selector=selector,
        )
        self.world.spawn(0, lambda _view, m=master: m.run())
        workers = []
        injector = None
        if not cfg.fault_plan.empty:
            injector = FaultInjector(
                self.world.env,
                cfg.fault_plan,
                cfg.effective_fault_tolerance(),
                network=self.world.network,
                fs=self.fs,
                streams=cfg.streams(),
                recorder=self.recorder,
            )
        for rank in range(1, cfg.nprocs):
            worker = Worker(
                self.world.comm.view(rank),
                self.wcomm.view(rank - 1),
                cfg,
                self.workload,
                self.fh,
                recorder=self.recorder,
                db_fh=self.db_fh,
            )
            workers.append(worker)
            process = self.world.spawn(rank, lambda _view, w=worker: w.run())
            if injector is not None:
                injector.register_worker(rank, worker, process)
        if injector is not None:
            injector.start()

        if cfg.arrival is not None:
            self.world.env.process(
                arrival_process(
                    self.world.env,
                    master,
                    cfg.arrival,
                    cfg.streams(),
                    cfg.nqueries,
                ),
                name="arrivals",
            )

        reports = self.world.run(until=until)
        elapsed = self.world.env.now
        cutoff = any(report is None for report in reports.values())
        if cutoff:
            # ``until`` fired first: synthesize phase reports from the live
            # timers and close every dangling trace interval (still-pending
            # queries' latency bars are discarded, not fabricated).
            if self.recorder is not None:
                if master.serve is not None:
                    for q in list(master.serve.arrival_t):
                        self.recorder.discard(0, state=f"serve_q{q}")
                for rank in range(cfg.nprocs):
                    self.recorder.abort(rank, elapsed)
            reports = {
                0: reports[0] if reports[0] is not None else master.timer.report()
            } | {
                r: (
                    reports[r]
                    if reports[r] is not None
                    else workers[r - 1].timer.report()
                )
                for r in range(1, cfg.nprocs)
            }

        bytestore = self.fh.file.bytestore
        resume_base = sum(
            self.workload.results.query_total_bytes(q)
            for q in range(cfg.resume_from_query)
        )
        if master.serve is not None:
            # Serve mode: only the queries actually admitted produce bytes.
            expected = sum(
                self.workload.results.query_total_bytes(q)
                for q in range(master.serve.admitted)
            )
        else:
            expected = self.workload.results.run_total_bytes() - resume_base
        # A fresh run must tile [0, expected); a resumed run tiles
        # [resume_base, resume_base + expected) — one gapless extent either
        # way.
        dense = bytestore.extents() == (
            [(resume_base, resume_base + expected)] if expected else []
        )
        file_stats = FileStats(
            total_bytes=bytestore.total_bytes(),
            expected_bytes=expected,
            nextents=len(bytestore.extents()),
            dense=dense,
        )
        server_stats = {
            "requests": float(self.fs.total_requests()),
            "bytes_written": float(self.fs.total_bytes_written()),
            "syncs": float(self.fs.total_syncs()),
            "mean_busy_s": sum(s.stats.busy_s for s in self.fs.servers)
            / len(self.fs.servers),
        }
        fault_stats: dict = {}
        fault_events: list = []
        if injector is not None or master.fault_counters or any(
            w.fault_counters for w in workers
        ):
            for name, value in master.fault_counters.items():
                fault_stats[name] = fault_stats.get(name, 0.0) + float(value)
            for worker in workers:
                for name, value in worker.fault_counters.items():
                    fault_stats[name] = fault_stats.get(name, 0.0) + float(value)
            for name, value in self.fs.fault_stats.items():
                if value:
                    fault_stats[name] = fault_stats.get(name, 0.0) + float(value)
            if self.world.network.faults is not None:
                link = self.world.network.faults.stats
                fault_stats["messages_dropped"] = float(link.drops)
                fault_stats["retransmits"] = float(link.retransmits)
                fault_stats["link_failures"] = float(link.link_failures)
            if injector is not None:
                fault_stats.update(injector.stats())
                fault_events = list(injector.events)
        serve_stats: dict = {}
        if master.serve is not None:
            serve_stats = master.serve.stats()
        metrics_registry = self.world.env.metrics
        if metrics_registry.enabled:
            metrics_registry.set_gauge("run.elapsed_seconds", elapsed)
            if master.serve is not None:
                s = master.serve
                metrics_registry.inc("serve.offered", float(s.offered))
                metrics_registry.inc("serve.admitted", float(s.admitted))
                metrics_registry.inc("serve.rejected", float(s.rejected))
                metrics_registry.inc("serve.shed", float(s.shed))
                metrics_registry.inc("serve.completed", float(s.completed))
            metrics_registry.set_gauge("run.nprocs", float(cfg.nprocs))
            env = self.world.env
            if env._cal is not None:
                # Kernel counters are plain ints incremented in the hot
                # loop; exported once here instead of per event.
                metrics_registry.set_gauge(
                    "sim.calendar_batches", float(env.batches)
                )
                metrics_registry.set_gauge(
                    "sim.calendar_resizes", float(env._cal.resizes)
                )
        metrics = metrics_registry.snapshot()
        checker = self.world.env.check
        if checker.enabled:
            # End-of-run audit: strict conservation equalities only hold on
            # fault-free runs (a crashed worker legitimately abandons
            # in-flight sends).
            checker.finalize(
                now=elapsed,
                recorder=self.recorder,
                # A cutoff legitimately strands in-flight messages, so the
                # strict equalities only apply to runs that finished.
                fault_free=cfg.fault_plan.empty and not cutoff,
                open_queries=(
                    master.serve.admitted - master.serve.completed
                    if master.serve is not None
                    else None
                ),
            )
        return RunResult(
            strategy=cfg.strategy,
            query_sync=cfg.query_sync,
            nprocs=cfg.nprocs,
            compute_speed=cfg.compute.speed,
            elapsed=elapsed,
            master=reports[0],
            workers=[reports[r] for r in range(1, cfg.nprocs)],
            file_stats=file_stats,
            server_stats=server_stats,
            fault_stats=fault_stats,
            fault_events=fault_events,
            metrics=metrics,
            serve_stats=serve_stats,
        )


def run_simulation(config: SimulationConfig):
    """Convenience one-shot: build and run.

    Dispatches on ``config.shard``: a multi-master configuration runs
    through :func:`repro.shard.group.run_sharded` and returns a
    :class:`~repro.shard.group.ShardedRunResult`; everything else takes
    the single-master path and returns a plain :class:`RunResult`.
    """
    if config.shard is not None and config.shard.nshards > 1:
        from ..shard.group import run_sharded

        return run_sharded(config)
    return S3aSim(config).run()
