"""Run results: phase breakdowns, totals, and output-file statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..obs.metrics import MetricsSnapshot
from .phases import Phase, PhaseReport


@dataclass(frozen=True)
class FileStats:
    """What ended up in the simulated output file."""

    total_bytes: int
    expected_bytes: int
    nextents: int
    dense: bool

    @property
    def complete(self) -> bool:
        return self.dense and self.total_bytes == self.expected_bytes


@dataclass(frozen=True)
class RunResult:
    """Everything one S3aSim run produced.

    ``master`` is rank 0's phase report; ``workers[i]`` is rank ``i+1``'s.
    ``elapsed`` is the wall-clock (simulated) span of the whole job — what
    Figure 2/5 plot as "overall execution time".
    """

    strategy: str
    query_sync: bool
    nprocs: int
    compute_speed: float
    elapsed: float
    master: PhaseReport
    workers: List[PhaseReport]
    file_stats: FileStats
    server_stats: Dict[str, float] = field(default_factory=dict)
    #: Aggregated fault/recovery counters (empty on fault-free runs):
    #: crashes, tasks_reassigned, repairs_issued, retransmits, retries, ...
    fault_stats: Dict[str, float] = field(default_factory=dict)
    #: Chronological injector log (worker-crash / server windows / ...).
    fault_events: List[dict] = field(default_factory=list)
    #: Full metrics snapshot, present iff the run collected metrics
    #: (``SimulationConfig.collect_metrics=True``).
    metrics: Optional[MetricsSnapshot] = None
    #: Serve-mode summary (empty on batch runs): offered/admitted/rejected/
    #: shed/completed/pending counts plus completion-latency mean and
    #: p50/p95/p99/max in seconds.
    serve_stats: Dict[str, float] = field(default_factory=dict)

    @property
    def worker_mean(self) -> PhaseReport:
        """Mean worker-process breakdown (what Figures 3/4/6/7 show)."""
        return PhaseReport.mean(self.workers)

    def phase_seconds(self, phase: Phase) -> float:
        return self.worker_mean[phase]

    def summary_line(self) -> str:
        wm = self.worker_mean
        parts = " ".join(
            f"{p.value}={wm[p]:.2f}" for p in Phase if wm[p] > 0.005
        )
        sync = "sync" if self.query_sync else "no-sync"
        return (
            f"{self.strategy:8s} {sync:7s} np={self.nprocs:<3d} "
            f"speed={self.compute_speed:<5g} total={self.elapsed:8.2f}s  [{parts}]"
        )

    def as_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "query_sync": self.query_sync,
            "nprocs": self.nprocs,
            "compute_speed": self.compute_speed,
            "elapsed": self.elapsed,
            "worker_mean": self.worker_mean.as_dict(),
            "master": self.master.as_dict(),
            "file": {
                "total_bytes": self.file_stats.total_bytes,
                "expected_bytes": self.file_stats.expected_bytes,
                "dense": self.file_stats.dense,
            },
            "servers": self.server_stats,
            "faults": self.fault_stats,
            **({"serve": self.serve_stats} if self.serve_stats else {}),
            **(
                {"metrics": self.metrics.as_dict()}
                if self.metrics is not None
                else {}
            ),
        }
