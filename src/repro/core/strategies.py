"""The four I/O strategies of the paper (Section 2).

Each strategy is a small descriptor consumed by the master/worker
algorithms; the behavioural differences live in three axes:

=============  ==============  ===========================  =================
strategy       who writes      what workers ship to master  write method
=============  ==============  ===========================  =================
MW             master          scores + sizes + payloads    contiguous
WW-POSIX       each worker     scores + sizes               per-region writes
WW-List        each worker     scores + sizes               list I/O
WW-Coll        all workers     scores + sizes               two-phase
=============  ==============  ===========================  =================

WW-Coll additionally *gates task assignment*: the master withholds tasks of
the next write group until the current group's offsets are out, because
"the WW-Coll strategy cannot allow worker processes to begin upcoming
queries until after the I/O operation" — every worker must enter the
collective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..mpiio.hints import IND_LIST, IND_POSIX, MPIIOHints


@dataclass(frozen=True)
class IOStrategy:
    """Descriptor of one result-writing strategy."""

    name: str
    master_writes: bool
    collective: bool
    ind_method: str  # meaningful only for individual worker-writing

    @property
    def parallel_io(self) -> bool:
        """Workers write (the paper's "Use Parallel I/O" flag)."""
        return not self.master_writes

    @property
    def workers_send_payload(self) -> bool:
        """Whether result payloads travel to the master (only MW)."""
        return self.master_writes

    @property
    def gates_assignment(self) -> bool:
        """Whether the master defers next-group tasks (only WW-Coll)."""
        return self.collective

    def hints(self, sync_after_write: bool = True) -> MPIIOHints:
        """MPI-IO hints implied by the strategy."""
        return MPIIOHints(
            ind_wr_method=self.ind_method,
            sync_after_write=sync_after_write,
        )

    def __str__(self) -> str:
        return self.name


MASTER_WRITING = IOStrategy(
    name="mw", master_writes=True, collective=False, ind_method=IND_LIST
)
WORKER_POSIX = IOStrategy(
    name="ww-posix", master_writes=False, collective=False, ind_method=IND_POSIX
)
WORKER_LIST = IOStrategy(
    name="ww-list", master_writes=False, collective=False, ind_method=IND_LIST
)
WORKER_COLLECTIVE = IOStrategy(
    name="ww-coll", master_writes=False, collective=True, ind_method=IND_LIST
)

STRATEGIES: Dict[str, IOStrategy] = {
    s.name: s
    for s in (MASTER_WRITING, WORKER_POSIX, WORKER_LIST, WORKER_COLLECTIVE)
}

#: The adaptive pseudo-strategy (``repro.adapt``): not a static descriptor
#: and deliberately *not* in :data:`STRATEGIES` — per-query selection picks
#: among real strategies at run time, and code that enumerates the static
#: strategy space (validation, metamorphic harness) must not see it.
HYBRID_AUTO = "hybrid-auto"

#: Statically-safe stand-in descriptor for hybrid-auto runs: worker-writing
#: list I/O keeps the master's dispatch loop, offset receives, and
#: termination conditions valid whatever mix the selector picks (MW queries
#: are special-cased per query; WW-Coll is excluded from the candidate set
#: because its assignment gating is a whole-run property).
ADAPTIVE_FALLBACK = WORKER_LIST


def is_adaptive(name: str) -> bool:
    """Whether ``name`` selects the per-query adaptive mode."""
    return name == HYBRID_AUTO


#: Display labels matching the paper's figures.
LABELS: Dict[str, str] = {
    "mw": "Master writing",
    "ww-posix": "Worker - POSIX I/O",
    "ww-list": "Worker - List I/O",
    "ww-coll": "Worker - Collective I/O",
    HYBRID_AUTO: "Hybrid (per-query adaptive)",
}


def get_strategy(name: str) -> IOStrategy:
    """Look up a strategy by its short name ('mw', 'ww-posix', ...)."""
    try:
        return STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; choose from {sorted(STRATEGIES)}"
        ) from None
