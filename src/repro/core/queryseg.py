"""Query segmentation — the baseline the paper's introduction argues against.

"In this approach, the entire sequence database is replicated to all
processors and a set of query sequences are segmented into fractions.
Each processor searches a fraction of query sequences against the entire
sequence database.  When the sequence database does not fit into the
processor memory, query segmentation suffers repeated I/O introduced by
loading sequence data back and forth between the file system and the main
memory."  (Section 1)

This module implements that tool shape over the same substrates, so the
intro's two structural claims become measurable:

* **repeated I/O** — each worker owns a whole query and must stream every
  database byte that does not fit in its memory, *per query*, from the
  shared file system (a `/database` file on the simulated PVFS2 volume);
* **under-utilization** — one query is the unit of work, so at most
  ``nqueries`` workers are ever busy ("result in resource
  under-utilization ... when the number of sequences is relatively small
  compared to the number of processors").

Search results are identical to the database-segmentation runs (same
deterministic generator), so the output file remains byte-comparable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import mpi
from ..mpi.world import MpiWorld
from ..mpiio.file import MPIIOFile
from ..pvfs.filesystem import FileSystem, PVFSFile
from ..workload.results import result_payload
from .config import SimulationConfig, Workload
from .offsets import OffsetLedger, ScoredBatchMeta, merge_query
from .phases import Phase, PhaseTimer
from .report import FileStats, RunResult

TAG_REQUEST = 11
TAG_ASSIGN = 12
TAG_SIZE = 13
TAG_BASE = 14

_CONTROL_BYTES = 16
_DB_PATH = "/s3asim/database"
_READ_CHUNK_B = 16 * 1024 * 1024

MIB = 1024 * 1024
#: Per-process memory available for caching database fragments.  Feynman
#: nodes had 1 GB RDRAM shared by two ranks; leave room for the
#: application.
DEFAULT_WORKER_MEMORY_B = 384 * MIB


class QuerySegMaster:
    """Hands out whole queries; serializes output-block base offsets."""

    def __init__(self, comm, cfg: SimulationConfig, recorder=None) -> None:
        self.comm = comm
        self.cfg = cfg
        self.timer = PhaseTimer(comm.env, rank=comm.rank, recorder=recorder)
        self.next_query = 0
        self.ledger = OffsetLedger(cfg.nqueries)
        self.sizes: Dict[int, int] = {}
        self.owners: Dict[int, int] = {}
        self.done_workers = 0
        self.bases_sent = 0
        self.pending_sends: List = []

    def run(self):
        comm, cfg, timer = self.comm, self.cfg, self.timer
        yield from timer.measure(
            Phase.SETUP, mpi.bcast(comm, 0, 256, {"nqueries": cfg.nqueries})
        )

        request_recv = comm.irecv(tag=TAG_REQUEST)
        size_recv = comm.irecv(tag=TAG_SIZE)

        while self.bases_sent < cfg.nqueries or self.done_workers < cfg.nworkers:
            self._advance_ledger()
            if (
                self.bases_sent >= cfg.nqueries
                and self.done_workers >= cfg.nworkers
            ):
                break
            start = comm.env.now
            yield request_recv.done_event | size_recv.done_event
            timer.add_span(Phase.DATA_DISTRIBUTION, start)

            if request_recv.completed:
                worker = request_recv.done_event.value
                request_recv = comm.irecv(tag=TAG_REQUEST)
                if self.next_query < cfg.nqueries:
                    query = self.next_query
                    self.next_query += 1
                    self.owners[query] = worker
                    yield from timer.measure(
                        Phase.DATA_DISTRIBUTION,
                        comm.send(worker, TAG_ASSIGN, _CONTROL_BYTES, query),
                    )
                else:
                    self.done_workers += 1
                    yield from timer.measure(
                        Phase.DATA_DISTRIBUTION,
                        comm.send(worker, TAG_ASSIGN, _CONTROL_BYTES, None),
                    )

            if size_recv.completed:
                query, nbytes = size_recv.done_event.value
                size_recv = comm.irecv(tag=TAG_SIZE)
                self.sizes[query] = nbytes

        for send in self.pending_sends:
            yield from timer.measure(Phase.GATHER, send.wait())
        yield from timer.measure(Phase.SYNC, mpi.barrier(comm))
        timer.finish()
        return timer.report()

    def _advance_ledger(self) -> None:
        """Assign base offsets for queries whose predecessors are sized."""
        while self.ledger.next_query in self.sizes:
            query = self.ledger.next_query
            base = self.ledger.base_for(query, self.sizes[query])
            self.pending_sends.append(
                self.comm.isend(
                    self.owners[query], TAG_BASE, _CONTROL_BYTES, (query, base)
                )
            )
            self.bases_sent += 1


class QuerySegWorker:
    """Searches whole queries against the whole (streamed) database."""

    def __init__(
        self,
        comm,
        cfg: SimulationConfig,
        workload: Workload,
        fh: MPIIOFile,
        db_file: PVFSFile,
        fs: FileSystem,
        memory_B: int = DEFAULT_WORKER_MEMORY_B,
        recorder=None,
    ) -> None:
        self.comm = comm
        self.cfg = cfg
        self.workload = workload
        self.fh = fh
        self.db_file = db_file
        self.fs = fs
        self.memory_B = memory_B
        self.timer = PhaseTimer(comm.env, rank=comm.rank, recorder=recorder)
        self.resident_B = 0  # database bytes cached from the last pass
        self.read_cursor = 0
        self.pending_blocks: Dict[int, Tuple[int, Dict[int, object]]] = {}
        self.base_recv = None
        self.no_more_work = False
        self.pending_sends: List = []

    # -- lifecycle ----------------------------------------------------------
    def run(self):
        comm, timer = self.comm, self.timer
        yield from timer.measure(Phase.SETUP, mpi.bcast(comm, 0, 256, None))
        self.base_recv = comm.irecv(source=0, tag=TAG_BASE)

        while True:
            yield from self._drain_bases()
            if not self.no_more_work:
                yield from self._request_and_work()
            else:
                if not self.pending_blocks:
                    break
                start = comm.env.now
                yield self.base_recv.done_event
                timer.add_span(Phase.DATA_DISTRIBUTION, start)

        for send in self.pending_sends:
            yield from timer.measure(Phase.GATHER, send.wait())
        yield from timer.measure(Phase.SYNC, mpi.barrier(comm))
        timer.finish()
        return timer.report()

    def _request_and_work(self):
        comm, timer = self.comm, self.timer
        comm.isend(0, TAG_REQUEST, _CONTROL_BYTES, comm.rank)
        assign_recv = comm.irecv(source=0, tag=TAG_ASSIGN)
        while not assign_recv.completed:
            start = comm.env.now
            yield assign_recv.done_event | self.base_recv.done_event
            timer.add_span(Phase.DATA_DISTRIBUTION, start)
            yield from self._drain_bases()
        query = assign_recv.done_event.value
        if query is None:
            self.no_more_work = True
            return
        yield from self._search_query(query)

    # -- the whole-database search -------------------------------------------
    def _search_query(self, query: int):
        cfg, timer = self.cfg, self.timer
        batches = [
            self.workload.results.batch(query, fragment)
            for fragment in range(cfg.nfragments)
        ]
        total_compute = sum(cfg.compute.batch_time(b) for b in batches)

        # Stream the database fraction that no longer fits in memory —
        # the intro's "repeated I/O ... loading sequence data back and
        # forth between the file system and the main memory".
        to_read = max(0, self.cfg.db_total_bytes - self.resident_B)
        if to_read > 0:
            nchunks = max(1, -(-to_read // _READ_CHUNK_B))
            compute_slice = total_compute / nchunks
            remaining = to_read
            while remaining > 0:
                take = min(_READ_CHUNK_B, remaining)
                offset = self.read_cursor % self.cfg.db_total_bytes
                take = min(take, self.cfg.db_total_bytes - offset)
                yield from timer.measure(
                    Phase.IO,
                    self.fs.read(self.comm.global_rank, self.db_file, offset, take),
                )
                self.read_cursor += take
                remaining -= take
                yield from timer.sleep(Phase.COMPUTE, compute_slice)
            self.resident_B = min(self.memory_B, self.cfg.db_total_bytes)
        else:
            yield from timer.sleep(Phase.COMPUTE, total_compute)
        # If the database does not fully fit, the tail of this pass
        # evicted the head: the next query must re-read the overflow.
        if self.cfg.db_total_bytes > self.memory_B:
            self.resident_B = self.memory_B

        # Merge the per-fragment result lists locally.
        count = sum(b.count for b in batches)
        nbytes = sum(b.total_bytes for b in batches)
        yield from timer.sleep(
            Phase.MERGE, cfg.merge.merge_time(count, nbytes)
        )

        # Report the block size; write once the base offset arrives.
        self.pending_blocks[query] = (nbytes, {b.fragment_id: b for b in batches})
        send = self.comm.isend(0, TAG_SIZE, _CONTROL_BYTES, (query, nbytes))
        self.pending_sends.append(send)

    # -- output ------------------------------------------------------------------
    def _drain_bases(self):
        while self.base_recv is not None and self.base_recv.completed:
            query, base = self.base_recv.done_event.value
            self.base_recv = self.comm.irecv(source=0, tag=TAG_BASE)
            yield from self._write_block(query, base)

    def _write_block(self, query: int, base: int):
        cfg, timer = self.cfg, self.timer
        nbytes, batches = self.pending_blocks.pop(query)
        data: Optional[bytes] = None
        if cfg.store_data:
            metas = [
                ScoredBatchMeta(
                    query_id=query,
                    fragment_id=b.fragment_id,
                    scores=b.scores,
                    sizes=b.sizes,
                )
                for b in batches.values()
            ]
            offsets_by_fragment, _ = merge_query(metas, base)
            block = bytearray(nbytes)
            for fragment, offsets in offsets_by_fragment.items():
                batch = batches[fragment]
                for index, (offset, size) in enumerate(
                    zip(offsets, batch.sizes)
                ):
                    position = int(offset) - base
                    block[position : position + int(size)] = result_payload(
                        batch.query_id, batch.fragment_id, index, int(size)
                    )
            data = bytes(block)
        yield from timer.measure(
            Phase.IO,
            self.fh.write_at(self.comm.global_rank, base, nbytes, data),
        )


class QuerySegS3aSim:
    """A query-segmentation job on the shared simulated machine."""

    def __init__(
        self,
        config: SimulationConfig,
        worker_memory_B: int = DEFAULT_WORKER_MEMORY_B,
        recorder=None,
    ) -> None:
        if worker_memory_B <= 0:
            raise ValueError("worker_memory_B must be positive")
        self.config = config
        self.worker_memory_B = worker_memory_B
        self.recorder = recorder
        self.world = MpiWorld(nranks=config.nprocs, network=config.network)
        self.fs = FileSystem(
            self.world.env,
            config.effective_pvfs(),
            client_nic=lambda rank: self.world.network.nic(rank),
            recorder=recorder,
        )
        self.workload = config.build_workload()
        # The replicated-database file lives on the shared volume.
        db_file = PVFSFile(_DB_PATH, self.fs.layout, store_data=False)
        db_file.bytestore.write(0, config.db_total_bytes)
        self.fs.files[_DB_PATH] = db_file
        self.db_file = db_file
        out = PVFSFile(config.output_path, self.fs.layout, config.store_data)
        self.fs.files[config.output_path] = out
        strategy = config.io_strategy()
        self.fh = MPIIOFile(
            self.fs, out, strategy.hints(sync_after_write=config.sync_after_write)
        )

    def run(self) -> RunResult:
        cfg = self.config
        master = QuerySegMaster(
            self.world.comm.view(0), cfg, recorder=self.recorder
        )
        self.world.spawn(0, lambda _v, m=master: m.run())
        for rank in range(1, cfg.nprocs):
            worker = QuerySegWorker(
                self.world.comm.view(rank), cfg, self.workload, self.fh,
                self.db_file, self.fs, memory_B=self.worker_memory_B,
                recorder=self.recorder,
            )
            self.world.spawn(rank, lambda _v, w=worker: w.run())

        reports = self.world.run()
        elapsed = self.world.env.now
        bytestore = self.fh.file.bytestore
        expected = self.workload.results.run_total_bytes()
        return RunResult(
            strategy="query-seg",
            query_sync=False,
            nprocs=cfg.nprocs,
            compute_speed=cfg.compute.speed,
            elapsed=elapsed,
            master=reports[0],
            workers=[reports[r] for r in range(1, cfg.nprocs)],
            file_stats=FileStats(
                total_bytes=bytestore.total_bytes(),
                expected_bytes=expected,
                nextents=len(bytestore.extents()),
                dense=bytestore.is_dense(expected),
            ),
        )


def run_query_segmentation(
    config: SimulationConfig, worker_memory_B: int = DEFAULT_WORKER_MEMORY_B
) -> RunResult:
    """Convenience one-shot query-segmentation run."""
    return QuerySegS3aSim(config, worker_memory_B).run()
