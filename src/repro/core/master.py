"""The master process — Algorithm 1 of the paper.

The master hands out (query, fragment) tasks on request (self-scheduling),
gathers sorted score lists (plus payloads under master-writing), merges
them, and — depending on the strategy — either writes completed queries
itself or answers workers with file-offset lists.

Completed write groups are dispatched strictly in query order because a
query's block base is only known once all earlier queries' sizes are in
(see :class:`~repro.core.offsets.OffsetLedger`).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from .. import mpi
from ..mpiio.file import MPIIOFile
from .config import SimulationConfig
from .offsets import OffsetLedger, ScoredBatchMeta, merge_query
from .phases import Phase, PhaseTimer
from .protocol import (
    ASSIGN_BYTES,
    NOTICE_BYTES,
    OffsetEntry,
    OffsetMessage,
    ScoreMessage,
    TAG_ASSIGN,
    TAG_OFFSETS,
    TAG_REQUEST,
    TAG_SCORES,
    TAG_WRITTEN,
    TaskAssignment,
    WrittenNotice,
)


class Master:
    """State machine of the master rank."""

    def __init__(
        self,
        comm,
        cfg: SimulationConfig,
        fh: MPIIOFile,
        recorder=None,
        resume_block_sizes: Optional[List[int]] = None,
    ) -> None:
        self.comm = comm
        self.cfg = cfg
        self.fh = fh
        self.strategy = cfg.io_strategy()
        self.timer = PhaseTimer(comm.env, rank=comm.rank, recorder=recorder)

        # Task queue in (query, fragment) order; a resumed run skips the
        # queries already written by the failed run.
        self.tasks: List[TaskAssignment] = [
            TaskAssignment(q, f)
            for q in range(cfg.resume_from_query, cfg.nqueries)
            for f in range(cfg.nfragments)
        ]
        self.next_task = 0

        # Gathered score metadata: query -> fragment -> meta.
        self.received: Dict[int, Dict[int, ScoredBatchMeta]] = {}
        self.payloads: Dict[Tuple[int, int], Optional[List[bytes]]] = {}
        self.task_owner: Dict[Tuple[int, int], int] = {}

        self.ledger = OffsetLedger(cfg.nqueries)
        if cfg.resume_from_query:
            # Pre-seed the ledger with the completed run's block sizes
            # (on a real resume the master reads them from the partial
            # output's index).
            if (
                resume_block_sizes is None
                or len(resume_block_sizes) != cfg.resume_from_query
            ):
                raise ValueError(
                    "resuming requires one prior block size per skipped query"
                )
            for q, size in enumerate(resume_block_sizes):
                self.ledger.base_for(q, size)
        self.groups_dispatched = cfg.resume_group
        self.pending_requests: deque = deque()
        self.done_workers = 0
        self.pending_sends: List = []

    # -- assignability ----------------------------------------------------
    def _task_assignable(self) -> bool:
        if self.next_task >= len(self.tasks):
            return False
        if not self.strategy.gates_assignment:
            return True
        # WW-Coll: only hand out tasks of the current write group.
        group = self.cfg.group_of(self.tasks[self.next_task].query_id)
        return group <= self.groups_dispatched

    def _tasks_exhausted(self) -> bool:
        return self.next_task >= len(self.tasks)

    def _group_complete(self, group: int) -> bool:
        for q in self.cfg.queries_in_group(group):
            got = self.received.get(q)
            if got is None or len(got) < self.cfg.nfragments:
                return False
        return True

    # -- main loop -------------------------------------------------------------
    def run(self):
        """Process fragment: the master's whole life."""
        comm, cfg, timer = self.comm, self.cfg, self.timer

        # Setup: distribute input variables to the workers (step 1).
        yield from timer.measure(
            Phase.SETUP,
            mpi.bcast(comm, 0, 256, {"nqueries": cfg.nqueries, "nfragments": cfg.nfragments}),
        )

        request_recv = comm.irecv(tag=TAG_REQUEST)
        score_recv = comm.irecv(tag=TAG_SCORES)

        while self.groups_dispatched < cfg.ngroups or self.done_workers < cfg.nworkers:
            yield from self._make_progress()

            if self.groups_dispatched >= cfg.ngroups and self.done_workers >= cfg.nworkers:
                break

            # Wait for the next worker message (request or scores).
            start = comm.env.now
            yield request_recv.done_event | score_recv.done_event
            timer.add_span(Phase.DATA_DISTRIBUTION, start)

            if request_recv.completed:
                worker = request_recv.done_event.value
                request_recv = comm.irecv(tag=TAG_REQUEST)
                yield from self._handle_request(worker)

            if score_recv.completed:
                message: ScoreMessage = score_recv.done_event.value
                score_recv = comm.irecv(tag=TAG_SCORES)
                yield from self._handle_scores(message)

        # Drain any in-flight offset/notice sends before the final barrier.
        for send in self.pending_sends:
            yield from timer.measure(Phase.GATHER, send.wait())
        yield from timer.measure(Phase.SYNC, mpi.barrier(comm))
        timer.finish()
        return timer.report()

    # -- progress: serve deferred requests, dispatch completed groups ---------
    def _make_progress(self):
        cfg = self.cfg
        moved = True
        while moved:
            moved = False
            # Dispatch completed groups in order.
            while (
                self.groups_dispatched < cfg.ngroups
                and self._group_complete(self.groups_dispatched)
            ):
                yield from self._dispatch_group(self.groups_dispatched)
                self.groups_dispatched += 1
                moved = True
            # Serve deferred work requests that became assignable.
            while self.pending_requests and self._task_assignable():
                yield from self._respond(self.pending_requests.popleft())
                moved = True
            # Terminate waiting workers once no tasks remain.
            while self.pending_requests and self._tasks_exhausted():
                yield from self._send_no_more_work(self.pending_requests.popleft())
                moved = True

    # -- request handling -----------------------------------------------------------
    def _handle_request(self, worker: int):
        if self._task_assignable():
            yield from self._respond(worker)
        elif self._tasks_exhausted():
            yield from self._send_no_more_work(worker)
        else:
            # WW-Coll gating: park the request until the group advances.
            self.pending_requests.append(worker)
            return

    def _respond(self, worker: int):
        task = self.tasks[self.next_task]
        self.next_task += 1
        self.task_owner[(task.query_id, task.fragment_id)] = worker
        yield from self.timer.measure(
            Phase.DATA_DISTRIBUTION,
            self.comm.send(worker, TAG_ASSIGN, ASSIGN_BYTES, task),
        )

    def _send_no_more_work(self, worker: int):
        self.done_workers += 1
        yield from self.timer.measure(
            Phase.DATA_DISTRIBUTION,
            self.comm.send(worker, TAG_ASSIGN, ASSIGN_BYTES, None),
        )

    # -- score handling ---------------------------------------------------------------
    def _handle_scores(self, message: ScoreMessage):
        meta = ScoredBatchMeta(
            query_id=message.query_id,
            fragment_id=message.fragment_id,
            scores=message.scores,
            sizes=message.sizes,
        )
        key = (message.query_id, message.fragment_id)
        self.received.setdefault(message.query_id, {})[message.fragment_id] = meta
        if message.payloads is not None:
            self.payloads[key] = message.payloads
        # The master merges the ordered scores with its own ordered list.
        cost = self.cfg.merge.merge_time(meta.count, 16 * meta.count)
        yield from self.timer.sleep(Phase.GATHER, cost)

    # -- group dispatch ----------------------------------------------------------------
    def _dispatch_group(self, group: int):
        if self.strategy.master_writes:
            yield from self._write_group(group)
            if self.cfg.query_sync:
                yield from self._notify_group_written(group)
        else:
            yield from self._send_offsets(group)

    def _merge_group(self, group: int):
        """Offsets for every query of the group; returns per-worker entries."""
        per_worker: Dict[int, List[OffsetEntry]] = {}
        blocks = []
        for q in self.cfg.queries_in_group(group):
            batches = list(self.received[q].values())
            total = sum(b.total_bytes for b in batches)
            base = self.ledger.base_for(q, total)
            offsets_by_frag, block_size = merge_query(batches, base)
            blocks.append((q, base, block_size))
            for frag, offsets in offsets_by_frag.items():
                worker = self.task_owner[(q, frag)]
                per_worker.setdefault(worker, []).append(
                    OffsetEntry(query_id=q, fragment_id=frag, offsets=offsets)
                )
        return per_worker, blocks

    def _send_offsets(self, group: int):
        per_worker, _ = self._merge_group(group)
        broadcast = self.strategy.collective or self.cfg.query_sync
        targets = (
            range(1, self.cfg.nprocs) if broadcast else sorted(per_worker.keys())
        )
        for worker in targets:
            message = OffsetMessage(
                group=group, entries=tuple(per_worker.get(worker, ()))
            )
            self.pending_sends.append(
                self.comm.isend(worker, TAG_OFFSETS, message.wire_bytes(), message)
            )
        # isend: the master moves on; completions are drained at exit.
        if False:  # pragma: no cover - keeps this a generator
            yield None

    def _write_group(self, group: int):
        """Master-writing: one large contiguous write per completed query."""
        _, blocks = self._merge_group_mw(group)
        for q, base, block_size, data in blocks:
            yield from self.timer.measure(
                Phase.IO,
                self.fh.write_at(self.comm.global_rank, base, block_size, data),
            )

    def _merge_group_mw(self, group: int):
        blocks = []
        for q in self.cfg.queries_in_group(group):
            batches = list(self.received[q].values())
            total = sum(b.total_bytes for b in batches)
            base = self.ledger.base_for(q, total)
            offsets_by_frag, block_size = merge_query(batches, base)
            data: Optional[bytes] = None
            if self.cfg.store_data:
                block = bytearray(block_size)
                for frag, offsets in offsets_by_frag.items():
                    meta = self.received[q][frag]
                    payloads = self.payloads.get((q, frag))
                    if payloads is None:
                        continue
                    for off, size, chunk in zip(offsets, meta.sizes, payloads):
                        pos = int(off) - base
                        block[pos : pos + int(size)] = chunk
                data = bytes(block)
            blocks.append((q, base, block_size, data))
        return None, blocks

    def _notify_group_written(self, group: int):
        notice = WrittenNotice(group=group)
        for worker in range(1, self.cfg.nprocs):
            self.pending_sends.append(
                self.comm.isend(worker, TAG_WRITTEN, NOTICE_BYTES, notice)
            )
        if False:  # pragma: no cover - keeps this a generator
            yield None
