"""The master process — Algorithm 1 of the paper.

The master hands out (query, fragment) tasks on request (self-scheduling),
gathers sorted score lists (plus payloads under master-writing), merges
them, and — depending on the strategy — either writes completed queries
itself or answers workers with file-offset lists.

Completed write groups are dispatched strictly in query order because a
query's block base is only known once all earlier queries' sizes are in
(see :class:`~repro.core.offsets.OffsetLedger`).

Fault tolerance (active only when the run's
:class:`~repro.faults.plan.FaultPlan` contains worker crashes, or when
:class:`~repro.faults.plan.FaultToleranceConfig` is set explicitly) adds an
mpiBLAST-style recovery layer:

* a watchdog side-process receives worker heartbeats and declares a worker
  dead after ``detection_timeout_s`` of silence (or immediately on an
  explicit rejoin notice — whichever arrives first triggers recovery
  exactly once per crash);
* a dead worker's assigned-but-unscored tasks are requeued at the front of
  the task queue; its delivered-but-undispatched batches are invalidated
  (the recompute regenerates identical scores, so the eventual group merge
  is unchanged); its dispatched-but-unacknowledged offsets are moved to a
  reissue table and repaired out-of-band once a recompute arrives — the
  stored offsets are reused verbatim, never re-derived, because
  :meth:`OffsetLedger.base_for` is strictly once-per-query;
* workers acknowledge worker-writing disk writes (``WriteAck``), and the
  master refuses to terminate any worker while unacknowledged or
  reissueable bytes remain, which closes the crash-after-"no more work"
  window.

With fault tolerance off, the event sequence is bit-identical to the
pre-fault implementation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from .. import mpi
from ..mpiio.file import MPIIOFile
from ..serve.state import ServeState
from .config import SimulationConfig
from .offsets import OffsetLedger, ScoredBatchMeta, merge_query
from .phases import Phase, PhaseTimer
from .protocol import (
    ASSIGN_BYTES,
    Donate,
    DonatedQuery,
    NOTICE_BYTES,
    OffsetEntry,
    OffsetMessage,
    Release,
    ScoreMessage,
    STEAL_BYTES,
    Steal,
    TAG_ASSIGN,
    TAG_DONATE,
    TAG_HEARTBEAT,
    TAG_OFFSETS,
    TAG_REJOIN,
    TAG_REQUEST,
    TAG_SCORES,
    TAG_STEAL,
    TAG_WRITE_ACK,
    TAG_WRITTEN,
    TaskAssignment,
    WriteAck,
    WrittenNotice,
)


class _Issued:
    """Offsets sent to a worker, awaiting its on-disk acknowledgement."""

    __slots__ = ("worker", "offsets", "group")

    def __init__(self, worker: int, offsets, group: int) -> None:
        self.worker = worker
        self.offsets = offsets
        self.group = group


class Master:
    """State machine of the master rank."""

    def __init__(
        self,
        comm,
        cfg: SimulationConfig,
        fh: MPIIOFile,
        recorder=None,
        resume_block_sizes: Optional[List[int]] = None,
        selector=None,
    ) -> None:
        self.comm = comm
        self.cfg = cfg
        self.fh = fh
        self.strategy = cfg.io_strategy()
        # -- hybrid-auto (repro.adapt) --------------------------------------
        #: Per-query adaptive mode: ``self.strategy`` is the static
        #: fallback descriptor; ``chosen`` holds each query's actual
        #: strategy, decided by the selector at first assignment.
        self.adaptive = cfg.adaptive
        self.selector = selector
        if self.adaptive and selector is None:
            raise ValueError(
                "hybrid-auto needs a StrategySelector (see repro.adapt)"
            )
        self.chosen: Dict[int, str] = {}
        # Timer/trace rows are keyed by the *global* rank: in a sharded run
        # every shard's master is local rank 0 of its sub-communicator, and
        # per-rank rows must not collide.  Single-master runs use the world
        # communicator, where global == local.
        self.timer = PhaseTimer(comm.env, rank=comm.global_rank, recorder=recorder)
        self.recorder = recorder

        # Serve mode (open-loop arrivals): the task queue starts empty and
        # grows as queries are admitted; batch mode pre-loads it in
        # (query, fragment) order (a resumed run skips the queries already
        # written by the failed run).
        self.serve: Optional[ServeState] = (
            ServeState(cfg.arrival) if cfg.arrival is not None else None
        )
        #: Worker-writing serve runs need on-disk acknowledgements to stamp
        #: result-durable latency (MW knows at its own write return).
        self.serve_acks = self.serve is not None and self.strategy.parallel_io
        if self.serve is not None:
            self.tasks: List[TaskAssignment] = []
        else:
            self.tasks = [
                TaskAssignment(q, f)
                for q in range(cfg.resume_from_query, cfg.nqueries)
                for f in range(cfg.nfragments)
            ]
        self.next_task = 0

        # Gathered score metadata: query -> fragment -> meta.
        self.received: Dict[int, Dict[int, ScoredBatchMeta]] = {}
        self.payloads: Dict[Tuple[int, int], Optional[List[bytes]]] = {}
        self.task_owner: Dict[Tuple[int, int], int] = {}

        self.ledger = OffsetLedger(cfg.nqueries)
        if cfg.resume_from_query:
            # Pre-seed the ledger with the completed run's block sizes
            # (on a real resume the master reads them from the partial
            # output's index).
            if (
                resume_block_sizes is None
                or len(resume_block_sizes) != cfg.resume_from_query
            ):
                raise ValueError(
                    "resuming requires one prior block size per skipped query"
                )
            for q, size in enumerate(resume_block_sizes):
                self.ledger.base_for(q, size)
        #: Bytes the failed run already put on disk (the readback span of
        #: the checkpoint-restart verification pass).
        self.resume_base = sum(resume_block_sizes) if resume_block_sizes else 0
        self.groups_dispatched = cfg.resume_group
        self.pending_requests: deque = deque()
        #: Mirror of ``pending_requests`` membership: the deque preserves
        #: FIFO service order, the set answers "is this worker parked?" in
        #: O(1) — a deque ``in`` test is a linear scan, quadratic across a
        #: large worker pool's request stream.
        self._pending_set: Set[int] = set()
        self.done_set: Set[int] = set()
        self.pending_sends: List = []

        # -- multi-master sharding (attach_shard wires these) ---------------
        #: This master's shard index (0 in single-master runs).
        self.shard_id = 0
        #: Master-to-master communicator view (sharded runs only).
        self._mcomm = None
        self._shard_cfg = None
        #: True once this master's steal protocol has concluded (always
        #: true outside sharded runs, so the termination conditions below
        #: are untouched by default).
        self._steal_done = True
        self._steal_wake = None

        # -- fault tolerance ------------------------------------------------
        self.ft_active = cfg.fault_tolerance_active()
        self.fault_counters: Dict[str, int] = {}
        self.dead: Set[int] = set()
        #: Work requests that arrived from a worker while it was presumed
        #: dead; served once it rejoins (or turns out alive after all).
        self.dead_requests: Set[int] = set()
        #: Latest incarnation (reboot count) heard from each worker; score
        #: messages from older incarnations are stale and dropped.
        self.incarnations: Dict[int, int] = {}
        #: (q, f) -> _Issued: offsets sent, write not yet acknowledged.
        self.issued: Dict[Tuple[int, int], _Issued] = {}
        #: (q, f) -> _Issued: owner died before acking; awaiting recompute.
        self.reissue: Dict[Tuple[int, int], _Issued] = {}
        self.last_heard: Dict[int, float] = {}
        self._wake = None
        self._watchdog_stop = False

    @property
    def done_workers(self) -> int:
        return len(self.done_set)

    def _count(self, name: str, n: int = 1) -> None:
        self.fault_counters[name] = self.fault_counters.get(name, 0) + n
        m = self.comm.env.metrics
        if m.enabled:
            m.inc(f"faults.{name}", n, rank=self.comm.rank)

    def attach_shard(self, shard_id: int, mcomm, shard_cfg) -> None:
        """Wire this master into a multi-master group (before ``run``).

        ``mcomm`` is this master's view of the master-to-master
        communicator (local rank == shard index); the steal protocol only
        activates when the shard config enables it and peers exist.
        """
        self.shard_id = shard_id
        self._mcomm = mcomm
        self._shard_cfg = shard_cfg
        if shard_cfg.steal and shard_cfg.nshards > 1:
            self._steal_done = False

    # -- pending-request parking (FIFO deque + O(1) membership set) --------
    def _park(self, worker: int) -> None:
        self.pending_requests.append(worker)
        self._pending_set.add(worker)

    def _pop_parked(self) -> int:
        worker = self.pending_requests.popleft()
        self._pending_set.discard(worker)
        return worker

    # -- assignability ----------------------------------------------------
    def _task_assignable(self) -> bool:
        if self.next_task >= len(self.tasks):
            return False
        if not self.strategy.gates_assignment:
            return True
        # WW-Coll: only hand out tasks of the current write group.
        group = self.cfg.group_of(self.tasks[self.next_task].query_id)
        return group <= self.groups_dispatched

    def _tasks_exhausted(self) -> bool:
        return self.next_task >= len(self.tasks)

    def _groups_target(self) -> int:
        """Write groups this run must dispatch (dynamic in serve mode)."""
        if self.serve is not None:
            return self.serve.admitted
        return self.cfg.ngroups

    def _release_ok(self) -> bool:
        """May a worker be told "no more work"?

        Without fault tolerance: always (the exhaustion check suffices).
        In serve mode: only once the arrival process has finished — until
        then any arrival may create work, and the released worker would
        miss it.  With fault tolerance: only once nothing can ever create
        work again — all groups dispatched, every issued write
        acknowledged, nothing awaiting reissue.  Past this point any crash
        loses zero bytes, so a released worker never needs recalling.
        """
        if self.serve is not None:
            # Sharded: also hold releases until this master's steal
            # protocol concludes — a stolen query needs live workers.
            return self.serve.arrivals_done and self._steal_done
        if not self.ft_active:
            return True
        return (
            self.groups_dispatched >= self.cfg.ngroups
            and not self.issued
            and not self.reissue
        )

    def _finished(self) -> bool:
        base = (
            self.groups_dispatched >= self._groups_target()
            and self.done_workers >= self.cfg.nworkers
        )
        if self.serve is not None:
            return (
                base
                and self.serve.arrivals_done
                and not self.serve.outstanding
                and self._tasks_exhausted()
            )
        if not self.ft_active:
            return base
        return (
            base
            and not self.issued
            and not self.reissue
            and self._tasks_exhausted()
        )

    def _group_complete(self, group: int) -> bool:
        donated = self.serve.donated_q if self.serve is not None else ()
        for q in self.cfg.queries_in_group(group):
            if q in donated:
                continue  # donated away: a zero-size placeholder block
            got = self.received.get(q)
            if got is None or len(got) < self.cfg.nfragments:
                return False
        return True

    # -- main loop -------------------------------------------------------------
    def run(self):
        """Process fragment: the master's whole life."""
        comm, cfg, timer = self.comm, self.cfg, self.timer

        # Setup: distribute input variables to the workers (step 1).
        yield from timer.measure(
            Phase.SETUP,
            mpi.bcast(comm, 0, 256, {"nqueries": cfg.nqueries, "nfragments": cfg.nfragments}),
        )

        if cfg.verify_resume and self.resume_base:
            yield from self._verify_resume_prefix()

        request_recv = comm.irecv(tag=TAG_REQUEST)
        score_recv = comm.irecv(tag=TAG_SCORES)
        ack_recv = None
        if self.ft_active or self.serve_acks:
            ack_recv = comm.irecv(tag=TAG_WRITE_ACK)
        if self.ft_active:
            comm.env.process(self._watchdog(), name="master-watchdog")
        steal_recv = None
        if self._mcomm is not None and not self._steal_done:
            steal_recv = self._mcomm.irecv(tag=TAG_STEAL)
            comm.env.process(
                self._steal_loop(), name=f"steal-loop-{self.shard_id}"
            )

        while not self._finished():
            yield from self._make_progress()

            if self._finished():
                break

            # Wait for the next worker message (request or scores; plus
            # write acks and watchdog wake-ups under fault tolerance, and
            # arrival wake-ups in serve mode).
            events = [request_recv.done_event, score_recv.done_event]
            if ack_recv is not None:
                events.append(ack_recv.done_event)
            if steal_recv is not None:
                events.append(steal_recv.done_event)
            if self.ft_active or self.serve is not None:
                self._wake = comm.env.event()
                events.append(self._wake)
            start = comm.env.now
            yield comm.env.any_of(events)
            timer.add_span(Phase.DATA_DISTRIBUTION, start)

            if request_recv.completed:
                worker = request_recv.done_event.value
                request_recv = comm.irecv(tag=TAG_REQUEST)
                yield from self._handle_request(worker)

            if score_recv.completed:
                message: ScoreMessage = score_recv.done_event.value
                score_recv = comm.irecv(tag=TAG_SCORES)
                yield from self._handle_scores(message)

            if ack_recv is not None and ack_recv.completed:
                ack: WriteAck = ack_recv.done_event.value
                ack_recv = comm.irecv(tag=TAG_WRITE_ACK)
                self._handle_ack(ack)

            if steal_recv is not None and steal_recv.completed:
                probe: Steal = steal_recv.done_event.value
                steal_recv = self._mcomm.irecv(tag=TAG_STEAL)
                self._handle_steal(probe)

        self._watchdog_stop = True
        if steal_recv is not None:
            # Keep answering late probes (with empty donations) after this
            # master has finished: a hungry peer's termination protocol
            # waits on a reply from every shard.  A side process never
            # gates the run's own termination.
            comm.env.process(
                self._steal_responder(steal_recv),
                name=f"steal-responder-{self.shard_id}",
            )
        # Drain any in-flight offset/notice sends before the final barrier.
        for send in self.pending_sends:
            yield from timer.measure(Phase.GATHER, send.wait())
        yield from timer.measure(Phase.SYNC, mpi.barrier(comm))
        timer.finish()
        return timer.report()

    # -- progress: serve deferred requests, dispatch completed groups ---------
    def _make_progress(self):
        moved = True
        while moved:
            moved = False
            # Dispatch completed groups in order.
            while (
                self.groups_dispatched < self._groups_target()
                and self._group_complete(self.groups_dispatched)
            ):
                yield from self._dispatch_group(self.groups_dispatched)
                self.groups_dispatched += 1
                moved = True
            # Serve deferred work requests that became assignable.
            while self.pending_requests and self._task_assignable():
                yield from self._respond(self._pop_parked())
                moved = True
            # Terminate waiting workers once no tasks remain (and, under
            # fault tolerance, once no crash could ever create new work).
            while (
                self.pending_requests
                and self._tasks_exhausted()
                and self._release_ok()
            ):
                yield from self._send_no_more_work(self._pop_parked())
                moved = True
        self._steal_nudge()

    # -- request handling -----------------------------------------------------------
    def _handle_request(self, worker: int):
        if self.ft_active and worker in self.dead:
            # Request from a worker we presume dead.  Don't assign (the
            # response would be lost) and don't drop (the worker may be a
            # false positive that is very much alive and waiting): stash
            # it and serve it on revival.
            self.dead_requests.add(worker)
            self._count("requests_stashed")
            return
        if self._task_assignable():
            yield from self._respond(worker)
        elif self._tasks_exhausted() and self._release_ok():
            yield from self._send_no_more_work(worker)
        elif worker not in self._pending_set:
            # WW-Coll gating (or fault-tolerant release hold): park the
            # request until the group advances / release becomes safe.
            self._park(worker)
            self._steal_nudge()

    def _verify_resume_prefix(self):
        """Checkpoint-restart: read the failed run's prefix back before any
        new work goes out (the read-dominated startup phase of a resumed
        run; real resumable tools re-scan the partial output's tail)."""
        chunk = self.fh.hints.cb_buffer_size
        regions = [
            (off, min(chunk, self.resume_base - off))
            for off in range(0, self.resume_base, chunk)
        ]
        yield from self.timer.measure(
            Phase.IO,
            self.fh.read_at_list(self.comm.global_rank, regions),
        )

    # -- hybrid-auto: per-query strategy choice -----------------------------
    def _query_strategy_name(self, q: int) -> str:
        """The query's chosen strategy, deciding it now if unseen.

        The choice is stamped three ways — selector ledger, invariant
        checker, trace — so the checker can assert chosen == executed ==
        traced at finalize.
        """
        name = self.chosen.get(q)
        if name is not None:
            return name
        content = (
            self.serve.content.get(q, q) if self.serve is not None else q
        )
        name = self.selector.choose(
            q,
            content=content,
            outstanding_faults=len(self.dead) + len(self.reissue),
        )
        self.chosen[q] = name
        env = self.comm.env
        if env.check.enabled:
            env.check.strategy_chosen(q, name, shard=self.shard_id)
        self._stamp_choice(q, name)
        return name

    def _stamp_choice(self, q: int, name: str) -> None:
        """Stamp the choice into the trace (a zero-length interval on the
        master's row at decision time) and the checker's traced ledger."""
        if self.recorder is not None:
            now = self.comm.env.now
            self.recorder.record(
                self.comm.global_rank, f"adapt_q{q}_{name}", now, now
            )
        c = self.comm.env.check
        if c.enabled:
            c.strategy_traced(q, name, shard=self.shard_id)

    def _query_parallel_io(self, q: int) -> bool:
        """Whether the query's results are written by workers (per-query
        under hybrid-auto, the static strategy flag otherwise)."""
        if not self.adaptive:
            return self.strategy.parallel_io
        return self.chosen.get(q, self.strategy.name) != "mw"

    def _respond(self, worker: int):
        task = self.tasks[self.next_task]
        self.next_task += 1
        if self.adaptive:
            task = replace(
                task, strategy=self._query_strategy_name(task.query_id)
            )
        self.task_owner[(task.query_id, task.fragment_id)] = worker
        if self.serve is not None:
            # A started query has work in flight and can no longer be shed.
            self.serve.started.add(task.query_id)
        yield from self.timer.measure(
            Phase.DATA_DISTRIBUTION,
            self.comm.send(worker, TAG_ASSIGN, ASSIGN_BYTES, task),
        )

    def _send_no_more_work(self, worker: int):
        self.done_set.add(worker)
        payload = (
            Release(final_groups=self.serve.admitted)
            if self.serve is not None
            else None
        )
        yield from self.timer.measure(
            Phase.DATA_DISTRIBUTION,
            self.comm.send(worker, TAG_ASSIGN, ASSIGN_BYTES, payload),
        )

    # -- score handling ---------------------------------------------------------------
    def _handle_scores(self, message: ScoreMessage):
        key = (message.query_id, message.fragment_id)
        if self.ft_active and message.worker in self.dead:
            # In-flight scores from a crashed worker; its task was already
            # requeued, so accepting would double-count.
            self._count("stale_scores_dropped")
            return
        if self.ft_active and message.incarnation < self.incarnations.get(
            message.worker, 0
        ):
            # Sent before a crash we already recovered from (the rejoin
            # overtook this message): the payload behind these scores died
            # with the old incarnation.
            self._count("stale_scores_dropped")
            return
        if self.ft_active and key in self.reissue:
            # Recompute of a batch whose offsets were issued before the
            # original owner died: repair out-of-band with the *original*
            # offsets (the ledger hands a query's base out exactly once).
            rec = self.reissue.pop(key)
            self.task_owner[key] = message.worker
            repair = OffsetMessage(
                group=rec.group,
                entries=(
                    OffsetEntry(
                        query_id=key[0], fragment_id=key[1], offsets=rec.offsets
                    ),
                ),
                repair=True,
            )
            self.issued[key] = _Issued(message.worker, rec.offsets, rec.group)
            self.pending_sends.append(
                self.comm.isend(
                    message.worker, TAG_OFFSETS, repair.wire_bytes(), repair
                )
            )
            self._count("repairs_issued")
            cost = self.cfg.merge.merge_time(len(message.scores), 16 * len(message.scores))
            yield from self.timer.sleep(Phase.GATHER, cost)
            return
        existing = self.received.get(message.query_id, {}).get(message.fragment_id)
        if existing is not None:
            # Duplicate delivery (e.g. a requeued task whose original
            # assignment was matched from the reborn worker's mailbox).
            # Drop it; under worker-writing also tell the sender to discard
            # its stranded stored batch so its termination condition can
            # still be met — unless the sender IS the accepted owner (a
            # worker can compute the same task twice), whose single stored
            # copy must survive for the group write.
            self._count("duplicate_scores_dropped")
            if (
                self.ft_active
                and self._query_parallel_io(message.query_id)
                and self.task_owner.get(key) != message.worker
            ):
                discard = OffsetMessage(
                    group=-1,
                    entries=(
                        OffsetEntry(
                            query_id=key[0],
                            fragment_id=key[1],
                            offsets=np.empty(0, dtype=np.int64),
                        ),
                    ),
                    discard=True,
                )
                self.pending_sends.append(
                    self.comm.isend(
                        message.worker, TAG_OFFSETS, discard.wire_bytes(), discard
                    )
                )
                self._count("discards_issued")
            return
        meta = ScoredBatchMeta(
            query_id=message.query_id,
            fragment_id=message.fragment_id,
            scores=message.scores,
            sizes=message.sizes,
        )
        self.received.setdefault(message.query_id, {})[message.fragment_id] = meta
        if message.payloads is not None:
            self.payloads[key] = message.payloads
        if self.ft_active:
            self.task_owner[key] = message.worker
        # The master merges the ordered scores with its own ordered list.
        cost = self.cfg.merge.merge_time(meta.count, 16 * meta.count)
        yield from self.timer.sleep(Phase.GATHER, cost)

    def _handle_ack(self, ack: WriteAck) -> None:
        for key in ack.keys:
            key = tuple(key)
            if self.issued.pop(key, None) is not None:
                self._count("writes_acked")
            if self.reissue.pop(key, None) is not None:
                # The write raced its sender's death detection: the bytes
                # are on disk after all, so cancel the planned reissue (and
                # the recompute, if it hasn't been assigned yet — if it
                # has, the duplicate-score path discards its output).
                self._count("reissues_cancelled")
                self._unqueue(key)
            if self.serve is not None:
                # Worker-writing: a query is result-durable once every one
                # of its fragment batches has been acknowledged on disk.
                q = key[0]
                left = self.serve.outstanding.get(q)
                if left is not None:
                    if left <= 1:
                        del self.serve.outstanding[q]
                        self._query_durable(q)
                    else:
                        self.serve.outstanding[q] = left - 1

    # -- group dispatch ----------------------------------------------------------------
    def _dispatch_group(self, group: int):
        if self.adaptive:
            yield from self._dispatch_group_adaptive(group)
        elif self.strategy.master_writes:
            yield from self._write_group(group)
            if self.cfg.query_sync:
                yield from self._notify_group_written(group)
        else:
            yield from self._send_offsets(group)

    def _dispatch_group_adaptive(self, group: int):
        """Hybrid-auto dispatch: each completed query of the group goes out
        under its chosen strategy — MW queries written inline by the master
        from the shipped payloads, WW queries as offset lists to their
        owners — mixed freely within one write group."""
        per_worker: Dict[int, List[OffsetEntry]] = {}
        c = self.comm.env.check
        for q in self.cfg.queries_in_group(group):
            if self._query_donated(q):
                self._ledger_placeholder(q)
                continue
            name = self.chosen.get(q, self.strategy.name)
            batches = list(self.received[q].values())
            total = sum(b.total_bytes for b in batches)
            base = self.ledger.base_for(q, total)
            offsets_by_frag, block_size = merge_query(batches, base)
            if c.enabled:
                c.offsets_assigned(
                    q, base, block_size, offsets_by_frag,
                    {b.fragment_id: b.sizes for b in batches},
                    shard=self.shard_id,
                )
            if name == "mw":
                data: Optional[bytes] = None
                if self.cfg.store_data:
                    block = bytearray(block_size)
                    for frag, offsets in offsets_by_frag.items():
                        meta = self.received[q][frag]
                        payloads = self.payloads.get((q, frag))
                        if payloads is None:
                            continue
                        for off, size, chunk in zip(offsets, meta.sizes, payloads):
                            pos = int(off) - base
                            block[pos : pos + int(size)] = chunk
                    data = bytes(block)
                if c.enabled:
                    c.strategy_executed(q, "mw", shard=self.shard_id)
                yield from self.timer.measure(
                    Phase.IO,
                    self.fh.write_at(
                        self.comm.global_rank, base, block_size, data
                    ),
                )
                if self.serve is not None:
                    # MW: the master's own write return is result-durable.
                    self._query_durable(q)
                continue
            for frag, offsets in offsets_by_frag.items():
                worker = self.task_owner[(q, frag)]
                per_worker.setdefault(worker, []).append(
                    OffsetEntry(query_id=q, fragment_id=frag, offsets=offsets)
                )
            if self.serve is not None:
                # WW: result-durable once every batch's write is acked.
                s = self.serve.outstanding
                s[q] = s.get(q, 0) + len(offsets_by_frag)
        for worker in sorted(per_worker):
            entries = tuple(per_worker[worker])
            if self.ft_active:
                for entry in entries:
                    self.issued[(entry.query_id, entry.fragment_id)] = _Issued(
                        worker, entry.offsets, group
                    )
            message = OffsetMessage(group=group, entries=entries)
            self.pending_sends.append(
                self.comm.isend(worker, TAG_OFFSETS, message.wire_bytes(), message)
            )

    def _merge_group(self, group: int):
        """Offsets for every query of the group; returns per-worker entries."""
        per_worker: Dict[int, List[OffsetEntry]] = {}
        blocks = []
        for q in self.cfg.queries_in_group(group):
            if self._query_donated(q):
                self._ledger_placeholder(q)
                continue
            batches = list(self.received[q].values())
            total = sum(b.total_bytes for b in batches)
            base = self.ledger.base_for(q, total)
            offsets_by_frag, block_size = merge_query(batches, base)
            c = self.comm.env.check
            if c.enabled:
                c.offsets_assigned(
                    q, base, block_size, offsets_by_frag,
                    {b.fragment_id: b.sizes for b in batches},
                    shard=self.shard_id,
                )
            blocks.append((q, base, block_size))
            for frag, offsets in offsets_by_frag.items():
                worker = self.task_owner[(q, frag)]
                per_worker.setdefault(worker, []).append(
                    OffsetEntry(query_id=q, fragment_id=frag, offsets=offsets)
                )
        return per_worker, blocks

    def _send_offsets(self, group: int):
        per_worker, _ = self._merge_group(group)
        if self.serve is not None:
            # Latency stops at result-durable: count the batches whose
            # on-disk acks this group's queries are waiting for.
            for entries_list in per_worker.values():
                for entry in entries_list:
                    s = self.serve.outstanding
                    s[entry.query_id] = s.get(entry.query_id, 0) + 1
        broadcast = self.strategy.collective or self.cfg.query_sync
        targets = (
            range(1, self.cfg.nprocs) if broadcast else sorted(per_worker.keys())
        )
        for worker in targets:
            entries = tuple(per_worker.get(worker, ()))
            if self.ft_active:
                for entry in entries:
                    self.issued[(entry.query_id, entry.fragment_id)] = _Issued(
                        worker, entry.offsets, group
                    )
            message = OffsetMessage(group=group, entries=entries)
            self.pending_sends.append(
                self.comm.isend(worker, TAG_OFFSETS, message.wire_bytes(), message)
            )
        # isend: the master moves on; completions are drained at exit.
        if False:  # pragma: no cover - keeps this a generator
            yield None

    def _write_group(self, group: int):
        """Master-writing: one large contiguous write per completed query."""
        _, blocks = self._merge_group_mw(group)
        for q, base, block_size, data in blocks:
            yield from self.timer.measure(
                Phase.IO,
                self.fh.write_at(self.comm.global_rank, base, block_size, data),
            )
            if self.serve is not None:
                # MW: the master's own write return is result-durable.
                self._query_durable(q)

    def _merge_group_mw(self, group: int):
        blocks = []
        for q in self.cfg.queries_in_group(group):
            if self._query_donated(q):
                self._ledger_placeholder(q)
                continue
            batches = list(self.received[q].values())
            total = sum(b.total_bytes for b in batches)
            base = self.ledger.base_for(q, total)
            offsets_by_frag, block_size = merge_query(batches, base)
            c = self.comm.env.check
            if c.enabled:
                c.offsets_assigned(
                    q, base, block_size, offsets_by_frag,
                    {b.fragment_id: b.sizes for b in batches},
                    shard=self.shard_id,
                )
            data: Optional[bytes] = None
            if self.cfg.store_data:
                block = bytearray(block_size)
                for frag, offsets in offsets_by_frag.items():
                    meta = self.received[q][frag]
                    payloads = self.payloads.get((q, frag))
                    if payloads is None:
                        continue
                    for off, size, chunk in zip(offsets, meta.sizes, payloads):
                        pos = int(off) - base
                        block[pos : pos + int(size)] = chunk
                data = bytes(block)
            blocks.append((q, base, block_size, data))
        return None, blocks

    def _notify_group_written(self, group: int):
        notice = WrittenNotice(group=group)
        for worker in range(1, self.cfg.nprocs):
            self.pending_sends.append(
                self.comm.isend(worker, TAG_WRITTEN, NOTICE_BYTES, notice)
            )
        if False:  # pragma: no cover - keeps this a generator
            yield None

    # -- serve mode: arrivals, admission, latency --------------------------------
    def on_arrival(self, priority: bool, content: Optional[int] = None) -> None:
        """Admission decision for one arrival (synchronous, open loop).

        An arrival that finds the pending queue full is either turned away
        (``reject``) or — under ``shed`` — takes over the slot of the
        youngest not-yet-started non-priority query, whose id it reuses
        (the workload is a pure function of the query id — or of the slot's
        content id in sharded runs — so the slot's content is unchanged;
        only its arrival stamp and lane move).

        ``content`` is the global content id in sharded runs (placement
        assigns each arrival a shard *and* a content id); ``None`` means
        "the slot id", the single-master identity mapping.
        """
        s = self.serve
        env = self.comm.env
        s.offered += 1
        c = env.check
        if c.enabled:
            c.arrival("offered", shard=self.shard_id)
        if s.pending < s.cfg.max_pending:
            self._admit(priority, content)
        elif s.cfg.policy == "shed":
            victim = self._try_shed()
            if victim is None:
                s.rejected += 1
                if c.enabled:
                    c.arrival("rejected", shard=self.shard_id)
            else:
                s.shed += 1
                if c.enabled:
                    c.arrival("shed", shard=self.shard_id)
                s.arrival_t[victim] = env.now
                s.priority.discard(victim)
                if priority:
                    s.priority.add(victim)
                if self.recorder is not None:
                    rank = self.comm.global_rank
                    self.recorder.discard(rank, state=f"serve_q{victim}")
                    self.recorder.begin(rank, f"serve_q{victim}", env.now)
                self._enqueue_query(victim, priority)
                if c.enabled:
                    c.arrival("admitted", shard=self.shard_id)
        else:
            s.rejected += 1
            if c.enabled:
                c.arrival("rejected", shard=self.shard_id)
        self._wakeup()

    def arrivals_finished(self) -> None:
        """The arrival process is done; the admitted count is now final."""
        self.serve.arrivals_done = True
        self._wakeup()
        self._steal_nudge()

    def _admit(self, priority: bool, content: Optional[int] = None) -> None:
        s = self.serve
        q = s.admitted
        s.admitted += 1
        s.arrival_t[q] = self.comm.env.now
        s.content[q] = q if content is None else content
        if priority:
            s.priority.add(q)
        if self.recorder is not None:
            self.recorder.begin(
                self.comm.global_rank, f"serve_q{q}", self.comm.env.now
            )
        self._enqueue_query(q, priority)
        c = self.comm.env.check
        if c.enabled:
            c.arrival("admitted", shard=self.shard_id)

    def _enqueue_query(self, q: int, priority: bool) -> None:
        new = [TaskAssignment(q, f) for f in range(self.cfg.nfragments)]
        if priority and not self.strategy.gates_assignment:
            # Priority lane: jump the unassigned queue.  Suppressed under
            # WW-Coll, whose group gate only opens in FIFO query order —
            # front-inserting a later query's tasks would deadlock it.
            self.tasks[self.next_task : self.next_task] = new
        else:
            self.tasks.extend(new)

    def _try_shed(self) -> Optional[int]:
        """Pick and evict the youngest sheddable query; return its id."""
        s = self.serve
        for q in range(s.admitted - 1, -1, -1):
            if q in s.started or q in s.priority or q not in s.arrival_t:
                continue
            # Remove its (still unassigned) tasks from the queue.
            self.tasks = self.tasks[: self.next_task] + [
                t for t in self.tasks[self.next_task :] if t.query_id != q
            ]
            return q
        return None

    def _query_durable(self, q: int) -> None:
        """Arrival → result-durable: stamp the completion latency."""
        s = self.serve
        now = self.comm.env.now
        latency = now - s.arrival_t.pop(q)
        s.latency.observe(latency)
        s.completed += 1
        s.started.discard(q)
        s.priority.discard(q)
        m = self.comm.env.metrics
        if m.enabled:
            m.observe("serve.latency_seconds", latency)
        if self.recorder is not None:
            self.recorder.end(self.comm.global_rank, f"serve_q{q}", now)
        c = self.comm.env.check
        if c.enabled:
            c.arrival_completed(shard=self.shard_id)
        self._wakeup()

    # -- multi-master sharding: work stealing ------------------------------------
    def _query_donated(self, q: int) -> bool:
        return self.serve is not None and q in self.serve.donated_q

    def _ledger_placeholder(self, q: int) -> None:
        """Allocate a donated query's block: the offset ledger is strictly
        in-order, so the slot still occupies a zero-size span (the output
        file stays dense and later queries' bases are unchanged)."""
        base = self.ledger.base_for(q, 0)
        c = self.comm.env.check
        if c.enabled:
            c.offsets_assigned(q, base, 0, {}, {}, shard=self.shard_id)

    def _hungry(self) -> bool:
        """Starving: workers are asking and there is nothing to hand out."""
        return (
            not self._steal_done
            and self._tasks_exhausted()
            and bool(self.pending_requests)
        )

    def _steal_nudge(self) -> None:
        if (
            self._steal_wake is not None
            and not self._steal_wake.triggered
            and self._hungry()
        ):
            self._steal_wake.succeed()

    def _steal_loop(self):
        """Side process, the thief half of the protocol: when this shard
        starves, probe the peer masters round-robin for unstarted queries.

        One probe is in flight at a time (so a single posted Donate receive
        suffices).  A round in which every peer donates nothing is *final*
        once the global arrival process has finished — nothing can refill
        the peers, so the thief concludes (``_steal_done``) and unblocks
        the release path.  Before that, an empty round backs off
        ``steal_retry_s`` and tries again.
        """
        env = self.comm.env
        s = self.serve
        mcomm = self._mcomm
        nshards = self._shard_cfg.nshards
        peers = [(self.shard_id + k) % nshards for k in range(1, nshards)]
        donate_recv = mcomm.irecv(tag=TAG_DONATE)
        rr = 0
        while not self._steal_done:
            if not self._hungry():
                self._steal_wake = env.event()
                yield self._steal_wake
                continue
            final = s.arrivals_done
            got = 0
            for k in range(len(peers)):
                peer = peers[(rr + k) % len(peers)]
                capacity = self.cfg.nqueries - s.admitted
                if capacity <= 0:
                    break
                probe = Steal(shard=self.shard_id, capacity=capacity)
                req = mcomm.isend(peer, TAG_STEAL, STEAL_BYTES, probe, oob=True)
                yield from req.wait()
                yield donate_recv.done_event
                donate: Donate = donate_recv.done_event.value
                donate_recv = mcomm.irecv(tag=TAG_DONATE)
                for dq in donate.queries:
                    self._admit_stolen(dq)
                    got += 1
                if got and not self._hungry():
                    break
            rr = (rr + 1) % len(peers)
            if got:
                continue
            if final:
                self._steal_done = True
                self._wakeup()
                return
            yield env.timeout(self._shard_cfg.steal_retry_s)

    def _handle_steal(self, probe: Steal) -> None:
        """Donor half: answer a peer's probe with up to half of the
        unstarted, non-priority pending queries (possibly none).

        The youngest half goes — the oldest pending queries are next in
        line for local assignment, so shipping the tail minimizes wasted
        locality, mirroring the shed policy's victim preference.
        """
        s = self.serve
        queries: List[DonatedQuery] = []
        if s is not None:
            eligible = [
                q
                for q in range(s.admitted)
                if q in s.arrival_t
                and q not in s.started
                and q not in s.priority
                and q not in s.donated_q
            ]
            count = min((len(eligible) + 1) // 2, max(probe.capacity, 0))
            victims = eligible[len(eligible) - count :]
            if victims:
                doomed = set(victims)
                self.tasks = self.tasks[: self.next_task] + [
                    t
                    for t in self.tasks[self.next_task :]
                    if t.query_id not in doomed
                ]
                env = self.comm.env
                c = env.check
                m = env.metrics
                for q in victims:
                    at = s.arrival_t.pop(q)
                    s.donated_q.add(q)
                    s.donated += 1
                    queries.append(
                        DonatedQuery(content=s.content.get(q, q), arrival_t=at)
                    )
                    if self.recorder is not None:
                        self.recorder.discard(
                            self.comm.global_rank, state=f"serve_q{q}"
                        )
                    if c.enabled:
                        c.arrival("donated", shard=self.shard_id)
                    if m.enabled:
                        m.inc("shard.donated_queries", shard=self.shard_id)
        reply = Donate(shard=self.shard_id, queries=tuple(queries))
        self.pending_sends.append(
            self._mcomm.isend(
                probe.shard, TAG_DONATE, reply.wire_bytes(), reply, oob=True
            )
        )

    def _admit_stolen(self, dq: DonatedQuery) -> None:
        """Thief half: a donated query enters as a fresh local admission,
        keeping its original arrival stamp (honest end-to-end latency) and
        its global content id (the workload is a function of the content,
        which survives the transfer)."""
        s = self.serve
        q = s.admitted
        s.admitted += 1
        s.stolen += 1
        s.arrival_t[q] = dq.arrival_t
        s.content[q] = dq.content
        if self.recorder is not None:
            self.recorder.begin(
                self.comm.global_rank, f"serve_q{q}", dq.arrival_t
            )
        self._enqueue_query(q, False)
        env = self.comm.env
        c = env.check
        if c.enabled:
            c.arrival("stolen", shard=self.shard_id)
            c.arrival("admitted", shard=self.shard_id)
        m = env.metrics
        if m.enabled:
            m.inc("shard.steals", shard=self.shard_id)
        self._wakeup()

    def _steal_responder(self, steal_recv):
        """Post-exit donor: answer every late probe with an empty Donate."""
        mcomm = self._mcomm
        while True:
            if not steal_recv.completed:
                yield steal_recv.done_event
            probe: Steal = steal_recv.done_event.value
            steal_recv = mcomm.irecv(tag=TAG_STEAL)
            reply = Donate(shard=self.shard_id, queries=())
            req = mcomm.isend(
                probe.shard, TAG_DONATE, reply.wire_bytes(), reply, oob=True
            )
            yield from req.wait()

    # -- fault tolerance: detection and recovery --------------------------------
    def _watchdog(self):
        """Side process: heartbeat bookkeeping and death/rejoin handling."""
        comm = self.comm
        env = comm.env
        ftc = self.cfg.effective_fault_tolerance()
        hb_recv = comm.irecv(tag=TAG_HEARTBEAT)
        rejoin_recv = comm.irecv(tag=TAG_REJOIN)
        self.last_heard = {w: env.now for w in range(1, self.cfg.nprocs)}

        while not self._watchdog_stop:
            tick = env.timeout(ftc.heartbeat_interval_s)
            yield env.any_of(
                [hb_recv.done_event, rejoin_recv.done_event, tick]
            )
            if self._watchdog_stop:
                return
            if hb_recv.completed:
                beat = hb_recv.done_event.value
                hb_recv = comm.irecv(tag=TAG_HEARTBEAT)
                self.last_heard[beat.worker] = env.now
                self.incarnations[beat.worker] = max(
                    self.incarnations.get(beat.worker, 0), beat.incarnation
                )
                if beat.worker in self.dead:
                    # Either a false-positive detection (the worker was
                    # alive all along) or its rejoin notice is lagging;
                    # recovery already ran at detection, so just revive.
                    self._on_worker_rejoin(beat.worker)
            if rejoin_recv.completed:
                rejoin = rejoin_recv.done_event.value
                rejoin_recv = comm.irecv(tag=TAG_REJOIN)
                self.last_heard[rejoin.worker] = env.now
                self.incarnations[rejoin.worker] = max(
                    self.incarnations.get(rejoin.worker, 0), rejoin.incarnation
                )
                self._on_worker_rejoin(rejoin.worker)
            for worker, heard in self.last_heard.items():
                if (
                    worker not in self.dead
                    and worker not in self.done_set
                    and env.now - heard > ftc.detection_timeout_s
                ):
                    self._on_worker_death(worker)

    def _on_worker_death(self, worker: int) -> None:
        self.dead.add(worker)
        self._count("failures_detected")
        self._recover_lost_state(worker)
        self._wakeup()

    def _on_worker_rejoin(self, worker: int) -> None:
        self._count("rejoins")
        if worker in self.dead:
            # Recovery already ran at timeout detection; just revive.
            self.dead.discard(worker)
            if worker in self.dead_requests:
                self.dead_requests.discard(worker)
                if worker not in self._pending_set:
                    self._park(worker)
        else:
            # The crash went unnoticed (reboot beat the timeout): the
            # worker's volatile state is gone all the same — recover now.
            self._recover_lost_state(worker)
        self._wakeup()

    def _recover_lost_state(self, worker: int) -> None:
        """Requeue/invalidate/reissue everything the dead worker held."""
        try:
            self.pending_requests.remove(worker)
        except ValueError:
            pass
        self._pending_set.discard(worker)
        # NOTE: a released worker stays released — by the release gate, all
        # of its bytes were safe before the "no more work" went out, and it
        # will never request again, so pulling it out of ``done_set`` would
        # deadlock the termination condition.
        requeued = 0
        for key, owner in list(self.task_owner.items()):
            if owner != worker:
                continue
            q, f = key
            if key in self.reissue:
                # The reassigned recompute died too; queue it again (the
                # original offsets stay parked in the reissue table).
                requeued += self._requeue(key)
                continue
            rec = self.issued.get(key)
            if rec is not None:
                # Offsets sent, write never acknowledged: park the offsets
                # and recompute the batch.
                self.issued.pop(key)
                self.reissue[key] = rec
                requeued += self._requeue(key)
                continue
            meta = self.received.get(q, {}).get(f)
            if meta is None:
                # Assigned but no scores delivered: plain reassignment.
                requeued += self._requeue(key)
                continue
            if (
                self._query_parallel_io(q)
                and self.cfg.group_of(q) >= self.groups_dispatched
            ):
                # Scores delivered but the payload (the worker's stored
                # batch) died with it before the group went out: invalidate
                # the entry so the group completes only after a recompute.
                del self.received[q][f]
                requeued += self._requeue(key)
            # Otherwise the bytes are safe: master-buffered (MW) or
            # written-and-acknowledged (WW).
        if requeued:
            self._count("tasks_reassigned", requeued)

    def _requeue(self, key: Tuple[int, int]) -> int:
        """Insert (q, f) at the head of the unassigned queue (idempotent)."""
        q, f = key
        for task in self.tasks[self.next_task :]:
            if task.query_id == q and task.fragment_id == f:
                return 0
        # Front insertion keeps the recompute inside the currently-gated
        # write group — appending would deadlock WW-Coll, whose gate never
        # opens past a group with a missing batch.
        self.tasks.insert(self.next_task, TaskAssignment(q, f))
        return 1

    def _unqueue(self, key: Tuple[int, int]) -> None:
        """Drop a not-yet-assigned requeued task again."""
        q, f = key
        for i in range(self.next_task, len(self.tasks)):
            task = self.tasks[i]
            if task.query_id == q and task.fragment_id == f:
                del self.tasks[i]
                return

    def _wakeup(self) -> None:
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()
