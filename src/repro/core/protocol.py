"""Wire protocol between the S3aSim master and workers.

Message kinds and their (simulated) wire sizes.  The paper's Algorithms 1
and 2 exchange: work requests, task assignments / termination notices,
score (+result) messages, offset lists, and — for master-writing with the
query-sync option — write-completion notices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

MASTER_RANK = 0

TAG_REQUEST = 1  # worker -> master: "give me work"
TAG_ASSIGN = 2  # master -> worker: TaskAssignment or NoMoreWork (None)
TAG_SCORES = 3  # worker -> master: ScoreMessage
TAG_OFFSETS = 4  # master -> worker: OffsetMessage (parallel-I/O modes)
TAG_WRITTEN = 5  # master -> worker: WrittenNotice (MW + query sync)
TAG_HEARTBEAT = 6  # worker -> master: Heartbeat (fault tolerance only)
TAG_REJOIN = 7  # worker -> master: Rejoin after a crash reboot
TAG_WRITE_ACK = 8  # worker -> master: WriteAck (WW results on disk)
TAG_STEAL = 9  # master -> master: Steal probe (sharded runs only)
TAG_DONATE = 10  # master -> master: Donate reply (sharded runs only)

REQUEST_BYTES = 16
ASSIGN_BYTES = 16
NOTICE_BYTES = 16
HEARTBEAT_BYTES = 16
STEAL_BYTES = 16
_HEADER_BYTES = 32


@dataclass(frozen=True)
class TaskAssignment:
    """One unit of work: search ``query_id`` against ``fragment_id``.

    ``strategy`` is stamped by the master under hybrid-auto (the worker
    must know whether to ship the payload — MW — or store the batch for a
    later offset list — WW) and stays ``None`` under static strategies."""

    query_id: int
    fragment_id: int
    strategy: Optional[str] = None


@dataclass(frozen=True)
class ScoreMessage:
    """Worker → master after finishing a task.

    Under worker-writing strategies only the sorted scores and sizes
    travel; under master-writing the result payload rides along (its bytes
    are charged on the wire even when content generation is disabled).
    """

    query_id: int
    fragment_id: int
    worker: int
    scores: np.ndarray
    sizes: np.ndarray
    payload_bytes: int = 0
    payloads: Optional[List[bytes]] = None
    #: Sender's reboot count (fault-tolerant runs); lets the master drop
    #: messages that raced a crash the sender already recovered from.
    incarnation: int = 0

    @property
    def count(self) -> int:
        return len(self.scores)

    def wire_bytes(self) -> int:
        return _HEADER_BYTES + 16 * self.count + self.payload_bytes


@dataclass(frozen=True)
class OffsetEntry:
    """File offsets for one (query, fragment) batch, in batch order."""

    query_id: int
    fragment_id: int
    offsets: np.ndarray


@dataclass(frozen=True)
class OffsetMessage:
    """Master → worker: where to write the worker's results of one write
    group.  ``entries`` may be empty — the worker still needs the message
    as a group boundary for collective writes and query-sync barriers.

    Two out-of-band variants exist only under fault tolerance:
    ``repair=True`` carries previously-issued offsets for a recomputed
    batch (written individually, never part of a group collective);
    ``discard=True`` tells the worker to drop stranded stored batches
    whose (query, fragment) was already delivered by another worker."""

    group: int
    entries: Tuple[OffsetEntry, ...]
    repair: bool = False
    discard: bool = False

    def wire_bytes(self) -> int:
        return _HEADER_BYTES + sum(16 + 8 * len(e.offsets) for e in self.entries)

    @property
    def count(self) -> int:
        return sum(len(e.offsets) for e in self.entries)


@dataclass(frozen=True)
class Release:
    """Master → worker: "no more work" in serve mode.

    The batch protocol terminates workers with a bare ``None``; under
    open-loop arrivals the worker also needs the *dynamic* final group
    count (the number of admitted queries, unknowable from the config) so
    its I/O termination condition can close over the right bound."""

    final_groups: int


@dataclass(frozen=True)
class WrittenNotice:
    """Master → worker: group's results are on disk (MW + query sync)."""

    group: int


@dataclass(frozen=True)
class Heartbeat:
    """Worker → master liveness ping (fault-tolerant runs only)."""

    worker: int
    incarnation: int


@dataclass(frozen=True)
class Rejoin:
    """Worker → master: "I crashed, lost my state, and am back".

    ``incarnation`` counts reboots; the master uses the rejoin (or a
    heartbeat timeout, whichever comes first) to trigger recovery of the
    worker's lost work exactly once per crash."""

    worker: int
    incarnation: int


@dataclass(frozen=True)
class Steal:
    """Master → master: "my pending queue drained — share some work".

    Sent out-of-band between shard masters in multi-master runs.
    ``capacity`` bounds the reply: the thief's free query slots (its
    ledger can hold at most ``nqueries`` per shard), so a donation can
    never overflow the thief's offset ledger."""

    shard: int
    capacity: int


@dataclass(frozen=True)
class DonatedQuery:
    """One transferred query: its content id and original arrival stamp.

    The arrival time rides along so the thief's completion latency stays
    honest end-to-end (arrival at the donor → durable at the thief)."""

    content: int
    arrival_t: float


@dataclass(frozen=True)
class Donate:
    """Master → master: reply to a :class:`Steal` (possibly empty).

    Carries up to half of the donor's unstarted, non-priority pending
    queries.  An empty reply doubles as the "I have nothing" signal the
    thief's termination protocol counts."""

    shard: int
    queries: Tuple[DonatedQuery, ...]

    def wire_bytes(self) -> int:
        return _HEADER_BYTES + 16 * len(self.queries)


@dataclass(frozen=True)
class WriteAck:
    """Worker → master: these (query, fragment) batches are on disk.

    Only sent under fault tolerance in worker-writing strategies; the
    master holds a batch's offsets as reissueable until the ack lands."""

    worker: int
    keys: Tuple[Tuple[int, int], ...]

    def wire_bytes(self) -> int:
        return _HEADER_BYTES + 8 * len(self.keys)
