"""S3aSim core: the simulator of parallel sequence-search I/O strategies."""

from .app import S3aSim, run_simulation
from .hybrid import HybridResult, HybridS3aSim, run_hybrid
from .validate import (
    build_reference_bytestore,
    reference_layout,
    verify_against_reference,
)
from .config import PAPER_SEED, SimulationConfig, Workload
from .master import Master
from .offsets import OffsetLedger, ScoredBatchMeta, merge_query, validate_assignment
from .phases import Phase, PhaseReport, PhaseTimer
from .queryseg import (
    DEFAULT_WORKER_MEMORY_B,
    QuerySegS3aSim,
    run_query_segmentation,
)
from .protocol import (
    MASTER_RANK,
    Heartbeat,
    OffsetEntry,
    OffsetMessage,
    Rejoin,
    ScoreMessage,
    TaskAssignment,
    WriteAck,
    WrittenNotice,
)
from .report import FileStats, RunResult
from .scenarios import SCENARIOS, get_scenario
from .strategies import (
    LABELS,
    MASTER_WRITING,
    STRATEGIES,
    WORKER_COLLECTIVE,
    WORKER_LIST,
    WORKER_POSIX,
    IOStrategy,
    get_strategy,
)
from .worker import Worker

__all__ = [
    "FileStats",
    "Heartbeat",
    "HybridResult",
    "HybridS3aSim",
    "IOStrategy",
    "LABELS",
    "MASTER_RANK",
    "MASTER_WRITING",
    "Master",
    "OffsetEntry",
    "OffsetLedger",
    "OffsetMessage",
    "PAPER_SEED",
    "Phase",
    "PhaseReport",
    "PhaseTimer",
    "QuerySegS3aSim",
    "Rejoin",
    "RunResult",
    "SCENARIOS",
    "S3aSim",
    "STRATEGIES",
    "ScoreMessage",
    "ScoredBatchMeta",
    "SimulationConfig",
    "TaskAssignment",
    "WORKER_COLLECTIVE",
    "WORKER_LIST",
    "WORKER_POSIX",
    "Worker",
    "WriteAck",
    "Workload",
    "WrittenNotice",
    "build_reference_bytestore",
    "get_scenario",
    "get_strategy",
    "merge_query",
    "reference_layout",
    "DEFAULT_WORKER_MEMORY_B",
    "run_hybrid",
    "run_query_segmentation",
    "run_simulation",
    "validate_assignment",
    "verify_against_reference",
]
