"""Exporters for metrics snapshots: JSON (machine) and CSV (spreadsheet)."""

from __future__ import annotations

import csv
import json
from typing import TextIO

from .metrics import MetricsSnapshot

FORMAT = "s3asim-metrics-1"


def export_metrics_json(snapshot: MetricsSnapshot, stream: TextIO) -> None:
    """One self-describing JSON document per snapshot."""
    doc = {"format": FORMAT, **snapshot.as_dict()}
    json.dump(doc, stream, indent=1, sort_keys=False)
    stream.write("\n")


def load_metrics_json(stream: TextIO) -> dict:
    """Parse an exported snapshot back to its dict form (for tooling/tests)."""
    doc = json.load(stream)
    found = doc.get("format") if isinstance(doc, dict) else doc
    if not isinstance(doc, dict) or doc.get("format") != FORMAT:
        raise ValueError(f"not an s3asim metrics document: format={found!r}")
    return doc


def export_metrics_csv(snapshot: MetricsSnapshot, stream: TextIO) -> None:
    """Flat CSV: one row per metric entry.

    Histograms flatten to their summary statistics (count/total/min/max);
    bucket vectors are JSON-only.
    """
    writer = csv.writer(stream)
    writer.writerow(["kind", "name", "labels", "value", "count", "min", "max"])
    for name, labels, value in snapshot.counters:
        writer.writerow(["counter", name, json.dumps(dict(labels)), value, "", "", ""])
    for name, labels, value in snapshot.gauges:
        writer.writerow(["gauge", name, json.dumps(dict(labels)), value, "", "", ""])
    for name, labels, summary in snapshot.histograms:
        writer.writerow(
            [
                "histogram",
                name,
                json.dumps(dict(labels)),
                summary.total,
                summary.count,
                summary.min,
                summary.max,
            ]
        )
