"""Observability: the cross-layer metrics subsystem.

A :class:`MetricsRegistry` rides on the simulation
:class:`~repro.sim.environment.Environment` (``env.metrics``); every layer
of the stack — MPI, PVFS2 servers, MPI-IO, master/worker — emits labeled
counters and histograms into it.  The registry is disabled by default
(:data:`NULL_METRICS`), in which case instrumentation is a no-op and runs
are bit-identical to an uninstrumented build.

Enable per run with ``SimulationConfig(collect_metrics=True)``; the
snapshot lands on ``RunResult.metrics`` and the ``s3asim stats`` CLI
renders it.  See docs/MODELING.md ("Observability") for the metric name
catalogue.
"""

from .export import export_metrics_csv, export_metrics_json, load_metrics_json
from .metrics import (
    Counter,
    DurationHistogram,
    Gauge,
    HistogramSummary,
    MetricsRegistry,
    MetricsSnapshot,
    NULL_METRICS,
    NullMetrics,
)

__all__ = [
    "Counter",
    "DurationHistogram",
    "Gauge",
    "HistogramSummary",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_METRICS",
    "NullMetrics",
    "export_metrics_csv",
    "export_metrics_json",
    "load_metrics_json",
]
