"""The metrics registry: counters, gauges, and duration histograms.

The paper's Section 2.1 argument — *why* master-writing beats worker-
writing at low compute speeds and loses at high ones — is made entirely in
terms of per-layer counters: how many requests each I/O server saw, how
many regions each request carried, how often the disk head had to seek,
how much data the two-phase exchange moved.  This module provides the
registry those counters live in.

Design constraints, in priority order:

1. **Zero perturbation.**  Metrics must never change event ordering.  All
   primitives are pure Python bookkeeping — they schedule nothing, draw no
   random numbers, and read no wall clock — so an enabled registry yields
   bit-identical simulated timings to a disabled one (tested).
2. **Near-zero disabled cost.**  The default registry on every
   :class:`~repro.sim.environment.Environment` is :data:`NULL_METRICS`;
   instrumentation guards with ``if metrics.enabled`` (one attribute load
   and a branch) and bound null instruments are shared no-op singletons.
3. **Cheap enabled hot path.**  Call sites that fire per disk request bind
   their instruments once (:meth:`MetricsRegistry.counter` returns a live
   handle) so the steady-state cost is one float add, prometheus-client
   style.

Snapshots are immutable, picklable (they cross the sweep engine's process
pool), and mergeable — :meth:`MetricsSnapshot.aggregate` sums counters and
merges histograms across sweep points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import zip_longest
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Canonical label form: sorted ``(key, value)`` pairs.
LabelItems = Tuple[Tuple[str, Any], ...]

#: Histogram bucket geometry: powers of two over seconds, starting at 1 µs.
#: Bucket ``i`` holds observations with value <= ``_BUCKET_BASE * 2**i``;
#: the last bucket is the +inf overflow.
_BUCKET_BASE = 1e-6
_NBUCKETS = 40


def _label_key(labels: Dict[str, Any]) -> LabelItems:
    if not labels:
        return ()
    return tuple(sorted(labels.items()))


def bucket_bound(index: int) -> float:
    """Upper bound of histogram bucket ``index`` (inf for the last)."""
    if index >= _NBUCKETS - 1:
        return math.inf
    return _BUCKET_BASE * (2.0**index)


def _bucket_index(value: float) -> int:
    if value <= _BUCKET_BASE:
        return 0
    index = int(math.log2(value / _BUCKET_BASE)) + 1
    # Float-edge correction: log2 can land one off at exact powers of two.
    if value <= bucket_bound(index - 1):
        index -= 1
    return min(index, _NBUCKETS - 1)


class Counter:
    """A monotonically increasing float, bound to one (name, labels) pair."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}{dict(self.labels)} = {self.value:g}>"


class Gauge:
    """A last-write-wins value (e.g. queue depth, elapsed time)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"<Gauge {self.name}{dict(self.labels)} = {self.value:g}>"


class DurationHistogram:
    """Log2-bucketed histogram of non-negative values (seconds, counts).

    Tracks count/total/min/max exactly; the bucket vector gives the shape
    (e.g. "most list requests carried 64 regions, a few carried 3").
    """

    __slots__ = ("name", "labels", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets = [0] * _NBUCKETS

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.buckets[_bucket_index(value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:
        return (
            f"<DurationHistogram {self.name}{dict(self.labels)} "
            f"n={self.count} mean={self.mean:g}>"
        )


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for the disabled registry."""

    __slots__ = ()

    def add(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """The disabled registry: every operation is a no-op.

    Instrumented code paths test ``metrics.enabled`` before building label
    dicts, so a disabled run pays one attribute load and branch per site.
    """

    enabled = False

    def counter(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def inc(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        pass

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        pass

    def observe(self, name: str, value: float, **labels: Any) -> None:
        pass

    def snapshot(self) -> Optional["MetricsSnapshot"]:
        return None

    def __repr__(self) -> str:
        return "<NullMetrics>"


#: The process-wide disabled registry (default on every Environment).
NULL_METRICS = NullMetrics()


class MetricsRegistry:
    """A live registry of labeled counters, gauges, and histograms.

    ``constant_labels`` (e.g. ``strategy="mw"``) are folded into every
    entry at snapshot time, so aggregated sweeps can still slice per run.
    """

    enabled = True

    def __init__(self, constant_labels: Optional[Dict[str, Any]] = None) -> None:
        self.constant_labels: LabelItems = _label_key(constant_labels or {})
        self._counters: Dict[Tuple[str, LabelItems], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelItems], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelItems], DurationHistogram] = {}

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry {dict(self.constant_labels)} "
            f"counters={len(self._counters)} gauges={len(self._gauges)} "
            f"histograms={len(self._histograms)}>"
        )

    # -- instrument handles (bind once, update cheaply) ---------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(name, key[1])
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(name, key[1])
        return instrument

    def histogram(self, name: str, **labels: Any) -> DurationHistogram:
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = DurationHistogram(name, key[1])
        return instrument

    # -- one-shot convenience (cold paths) ----------------------------------
    def inc(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        self.counter(name, **labels).add(amount)

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        self.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        self.histogram(name, **labels).observe(value)

    # -- snapshotting -------------------------------------------------------
    def snapshot(self) -> "MetricsSnapshot":
        """An immutable, picklable copy of everything recorded so far."""
        const = self.constant_labels

        def full(labels: LabelItems) -> LabelItems:
            return tuple(sorted(dict(const, **dict(labels)).items())) if const else labels

        counters = tuple(
            sorted(
                (c.name, full(c.labels), c.value) for c in self._counters.values()
            )
        )
        gauges = tuple(
            sorted((g.name, full(g.labels), g.value) for g in self._gauges.values())
        )
        histograms = tuple(
            sorted(
                (
                    h.name,
                    full(h.labels),
                    HistogramSummary(
                        count=h.count,
                        total=h.total,
                        min=h.min if h.count else 0.0,
                        max=h.max if h.count else 0.0,
                        buckets=tuple(h.buckets),
                    ),
                )
                for h in self._histograms.values()
            )
        )
        return MetricsSnapshot(
            constant_labels=const,
            counters=counters,
            gauges=gauges,
            histograms=histograms,
        )


@dataclass(frozen=True)
class HistogramSummary:
    """Frozen histogram state (mergeable across snapshots)."""

    count: int
    total: float
    min: float
    max: float
    buckets: Tuple[int, ...]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the log2 bucket vector.

        The rank is located by a cumulative walk over the buckets, then
        linearly interpolated within the bucket's ``(lower, upper]`` span
        (clamped to the exact observed ``min``/``max``, which also bounds
        the overflow bucket).  Because bucket edges grow by powers of two,
        the estimate is within a factor of 2 of the true order statistic;
        see MODELING.md for the error bound.
        """
        if not self.count:
            return 0.0
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        target = q * self.count
        cumulative = 0
        for index, n in enumerate(self.buckets):
            if not n:
                continue
            lower = bucket_bound(index - 1) if index else 0.0
            lower = max(lower, self.min)
            upper = min(bucket_bound(index), self.max)
            if cumulative + n >= target:
                fraction = (target - cumulative) / n
                estimate = lower + fraction * (upper - lower)
                # Hard [min, max] guarantee, whatever the bucket edges say:
                # a single sample in a wide log2 bucket (or a merged
                # histogram's foreign min/max) must never interpolate past
                # the observed extremes.
                return min(max(estimate, self.min), self.max)
            cumulative += n
        return self.max

    def merged(self, other: "HistogramSummary") -> "HistogramSummary":
        if not self.count:
            return other
        if not other.count:
            return self
        return HistogramSummary(
            count=self.count + other.count,
            total=self.total + other.total,
            min=min(self.min, other.min),
            max=max(self.max, other.max),
            # Bucket vectors only extend as far as each histogram's largest
            # observation, so two summaries can legitimately disagree on
            # length — pad the shorter one instead of truncating the tail.
            buckets=tuple(
                a + b
                for a, b in zip_longest(self.buckets, other.buckets, fillvalue=0)
            ),
        )

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": list(self.buckets),
        }


def _match(labels: LabelItems, wanted: Dict[str, Any]) -> bool:
    if not wanted:
        return True
    have = dict(labels)
    return all(have.get(k) == v for k, v in wanted.items())


@dataclass(frozen=True)
class MetricsSnapshot:
    """One run's (or one aggregated sweep's) frozen metric state.

    Entries are sorted tuples, so two snapshots of identical runs compare
    equal with ``==`` — the property the determinism tests lean on.
    """

    constant_labels: LabelItems = ()
    counters: Tuple[Tuple[str, LabelItems, float], ...] = ()
    gauges: Tuple[Tuple[str, LabelItems, float], ...] = ()
    histograms: Tuple[Tuple[str, LabelItems, "HistogramSummary"], ...] = ()

    # -- queries ------------------------------------------------------------
    def counter_total(self, name: str, **labels: Any) -> float:
        """Sum of every counter entry matching ``name`` and the label subset."""
        return sum(
            value
            for n, lbls, value in self.counters
            if n == name and _match(lbls, labels)
        )

    def counter_names(self) -> List[str]:
        seen: List[str] = []
        for name, _, _ in self.counters:
            if name not in seen:
                seen.append(name)
        return seen

    def label_values(self, name: str, label: str) -> List[Any]:
        """Distinct values of ``label`` across entries of counter ``name``."""
        values: List[Any] = []
        for n, lbls, _ in self.counters:
            if n != name:
                continue
            for k, v in lbls:
                if k == label and v not in values:
                    values.append(v)
        # Same-typed values sort naturally (ints numerically, not by repr);
        # mixed types group by type name first to stay orderable.
        return sorted(values, key=lambda v: (type(v).__name__, v))

    def histogram_summary(
        self, name: str, **labels: Any
    ) -> Optional[HistogramSummary]:
        merged: Optional[HistogramSummary] = None
        for n, lbls, summary in self.histograms:
            if n == name and _match(lbls, labels):
                merged = summary if merged is None else merged.merged(summary)
        return merged

    # -- merging ------------------------------------------------------------
    @staticmethod
    def aggregate(snapshots: Sequence["MetricsSnapshot"]) -> "MetricsSnapshot":
        """Merge many snapshots: counters/gauges sum, histograms merge.

        Entries are keyed by (name, full labels) — snapshots taken with
        different constant labels (e.g. different strategies) stay
        distinguishable after aggregation.  The merge is commutative, so
        parallel sweeps aggregate identically to serial ones.
        """
        counters: Dict[Tuple[str, LabelItems], float] = {}
        gauges: Dict[Tuple[str, LabelItems], float] = {}
        histograms: Dict[Tuple[str, LabelItems], HistogramSummary] = {}
        for snap in snapshots:
            for name, lbls, value in snap.counters:
                counters[(name, lbls)] = counters.get((name, lbls), 0.0) + value
            for name, lbls, value in snap.gauges:
                gauges[(name, lbls)] = gauges.get((name, lbls), 0.0) + value
            for name, lbls, summary in snap.histograms:
                prior = histograms.get((name, lbls))
                histograms[(name, lbls)] = (
                    summary if prior is None else prior.merged(summary)
                )
        return MetricsSnapshot(
            constant_labels=(),
            counters=tuple(
                sorted((n, l, v) for (n, l), v in counters.items())
            ),
            gauges=tuple(sorted((n, l, v) for (n, l), v in gauges.items())),
            histograms=tuple(
                sorted((n, l, h) for (n, l), h in histograms.items())
            ),
        )

    # -- serialization ------------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "labels": dict(self.constant_labels),
            "counters": [
                {"name": n, "labels": dict(l), "value": v}
                for n, l, v in self.counters
            ],
            "gauges": [
                {"name": n, "labels": dict(l), "value": v}
                for n, l, v in self.gauges
            ],
            "histograms": [
                {"name": n, "labels": dict(l), **h.as_dict()}
                for n, l, h in self.histograms
            ],
        }
