"""Discrete-event simulation kernel.

A from-scratch process-interaction DES engine: generator-based processes,
events, conditions, interrupts, and shared-resource primitives.  Everything
above this package (MPI, PVFS2, MPI-IO, S3aSim) is expressed in terms of
these primitives.
"""

from .calendar import CalendarQueue
from .environment import Environment, SCHEDULERS
from .errors import EmptySchedule, Interrupt, SimulationError, StopSimulation
from .events import AllOf, AnyOf, Condition, ConditionValue, Event, Timeout
from .process import Process
from .resources import (
    Container,
    PriorityRequest,
    PriorityResource,
    Request,
    Resource,
    Store,
)
from .rng import RandomStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarQueue",
    "SCHEDULERS",
    "Condition",
    "ConditionValue",
    "Container",
    "EmptySchedule",
    "Environment",
    "Event",
    "Interrupt",
    "PriorityRequest",
    "PriorityResource",
    "Process",
    "RandomStreams",
    "Request",
    "Resource",
    "SimulationError",
    "StopSimulation",
    "Store",
    "Timeout",
]
