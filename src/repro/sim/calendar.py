"""Calendar-queue event scheduler (Brown 1988) for the DES kernel.

The default kernel keeps pending events in a binary heap: O(log n)
per operation with constant factors dominated by tuple comparisons.  At
the scale the roadmap targets (1000+ ranks, 128+ servers) the pending set
holds tens of thousands of events and the heap becomes the hot spot.  A
calendar queue buckets events by timestamp — like a desk calendar, bucket
``i`` holds every event whose time falls on "day" ``i`` of some "year" —
giving O(1) expected enqueue and dequeue when the bucket width tracks the
average inter-event gap.  The structure resizes itself (doubling/halving
the number of buckets and re-estimating the width from a sample of the
earliest events) as the event population grows and shrinks.

Two properties matter for correctness:

* **Total order.**  Entries are the same ``(time, priority, eid)`` tuples
  the heap uses, and dequeues return them in exactly that order, so a
  calendar-scheduled run is event-for-event identical to a heap-scheduled
  one (``benchmarks/scheduler_diff.py`` and the equivalence property
  tests pin this).
* **Batched dequeue.**  :meth:`pop_batch` removes *every* entry sharing
  the minimum timestamp in one operation (they necessarily share a
  bucket), sorted by ``(priority, eid)``.  The environment drains the
  batch through a plain list — one clock advance and zero queue
  operations per same-timestamp event, which is the common case at scale
  (synchronized phases schedule thousands of events at identical times).

An event's "day" is ``int(time / width)``; day ``d`` lives in bucket
``d % nbuckets``.  The dequeue scan tracks the integer day rather than a
floating-point bucket boundary so the due test (``int(t / width) <= day``)
is exactly the computation enqueue used — no accumulated float drift can
ever pop a next-year event ahead of a this-year one.
"""

from __future__ import annotations

from typing import List

_INF = float("inf")

#: Smallest bucket count; resizing never shrinks below this.
MIN_BUCKETS = 8

#: Number of earliest-event gaps sampled when re-estimating bucket width.
_WIDTH_SAMPLE = 32


class CalendarQueue:
    """An auto-resizing calendar queue over ``(time, priority, eid, event)``
    entries.

    The caller (the :class:`~repro.sim.environment.Environment`) guarantees
    times are finite, non-negative, and never less than the last popped
    batch's timestamp — the simulation clock only moves forward.
    """

    __slots__ = (
        "_buckets",
        "_nbuckets",
        "_width",
        "_size",
        "_day",
        "_floor",
        "resizes",
    )

    def __init__(self, width: float = 1.0, nbuckets: int = MIN_BUCKETS) -> None:
        if width <= 0:
            raise ValueError("width must be positive")
        if nbuckets < 1:
            raise ValueError("nbuckets must be positive")
        self._nbuckets = nbuckets
        self._width = width
        self._buckets: List[List[tuple]] = [[] for _ in range(nbuckets)]
        self._size = 0
        # Scan position: the integer "day" of the last popped batch.
        self._day = 0
        # Largest timestamp ever popped: the caller may still push any time
        # ABOVE this, so it — not the current pending minimum — is the only
        # safe re-anchor point for ``_day`` after a resize.  Anchoring to
        # the pending minimum once left ``_day`` ahead of a later push into
        # the gap between the clock and that minimum, and the scan then
        # returned batches out of order.
        self._floor = 0.0
        #: Number of automatic resizes (exported as ``sim.calendar_resizes``).
        self.resizes = 0

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:
        return (
            f"<CalendarQueue size={self._size} buckets={self._nbuckets} "
            f"width={self._width:.3g} resizes={self.resizes}>"
        )

    # -- enqueue -----------------------------------------------------------
    def push(self, entry: tuple) -> None:
        """Insert an ``(time, priority, eid, event)`` entry."""
        self._buckets[int(entry[0] / self._width) % self._nbuckets].append(entry)
        self._size += 1
        if self._size > 2 * self._nbuckets:
            self._resize(2 * self._nbuckets)

    # -- dequeue -----------------------------------------------------------
    def pop_batch(self) -> List[tuple]:
        """Remove and return all entries sharing the minimum time.

        The batch is sorted by the full entry tuple (time is equal within
        a batch, so effectively by ``(priority, eid)``).  Returns an empty
        list when the queue is empty.
        """
        size = self._size
        if not size:
            return []
        buckets = self._buckets
        n = self._nbuckets
        width = self._width
        day = self._day
        best = None
        # Scan forward from the current day; an event is due at the scan
        # position only if its own day has been reached (later events in
        # the same bucket belong to future years and are skipped).
        for _ in range(n):
            bucket = buckets[day % n]
            if bucket:
                for entry in bucket:
                    if int(entry[0] / width) <= day and (
                        best is None or entry < best
                    ):
                        best = entry
                if best is not None:
                    break
            day += 1
        else:
            # A full year scanned without a hit: the events are sparse and
            # far away.  Fall back to a direct min search, then re-anchor
            # the scan at the winner's day.
            for bucket in buckets:
                for entry in bucket:
                    if best is None or entry < best:
                        best = entry
            assert best is not None
            day = int(best[0] / width)

        t = best[0]
        bucket = buckets[day % n]
        if len(bucket) == 1:
            batch = [best]
            bucket.clear()
        else:
            batch = [entry for entry in bucket if entry[0] == t]
            if len(batch) == len(bucket):
                bucket.clear()
                batch.sort()
            else:
                bucket[:] = [entry for entry in bucket if entry[0] != t]
                batch.sort()
        self._size = size - len(batch)
        self._day = day
        self._floor = t
        if self._size < self._nbuckets // 2 and self._nbuckets > MIN_BUCKETS:
            self._resize(max(MIN_BUCKETS, self._nbuckets // 2))
        return batch

    def peek_time(self) -> float:
        """Minimum pending timestamp, or +inf when empty (read-only)."""
        if not self._size:
            return _INF
        best = _INF
        for bucket in self._buckets:
            for entry in bucket:
                if entry[0] < best:
                    best = entry[0]
        return best

    # -- resizing ----------------------------------------------------------
    def _estimate_width(self, entries: List[tuple]) -> float:
        """Bucket width from the spread of the earliest pending events.

        Brown's rule: width ≈ 3× the mean gap between consecutive events
        near the head, so a bucket holds a handful of events and the scan
        rarely crosses empty buckets.  Deterministic — it reads only the
        queue contents.
        """
        if len(entries) < 2:
            return self._width
        sample = sorted(entry[0] for entry in entries)[:_WIDTH_SAMPLE]
        span = sample[-1] - sample[0]
        if span <= 0.0:
            # Everything coincides: keep the current width.
            return self._width
        return 3.0 * span / (len(sample) - 1)

    def _resize(self, nbuckets: int) -> None:
        entries = [entry for bucket in self._buckets for entry in bucket]
        width = self._estimate_width(entries)
        self._width = width
        self._nbuckets = nbuckets
        self._buckets = [[] for _ in range(nbuckets)]
        for entry in entries:
            self._buckets[int(entry[0] / width) % nbuckets].append(entry)
        # Re-anchor the scan at the last popped timestamp's day under the
        # NEW width.  The caller may still push any time above that floor,
        # so anchoring to the (possibly later) pending minimum would let a
        # subsequent push land behind the scan and dequeue out of order.
        self._day = int(self._floor / width)
        self.resizes += 1
