"""Core event types for the discrete-event simulation kernel.

The kernel follows the familiar process-interaction style (as popularised by
SimPy, re-implemented here from scratch): simulation logic lives in generator
functions that ``yield`` :class:`Event` objects; the
:class:`~repro.sim.environment.Environment` advances virtual time and resumes
processes when the events they wait on are processed.

Events move through three states:

``untriggered`` → ``triggered`` (scheduled, has a value) → ``processed``
(callbacks ran).
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

from .errors import SimulationError

_INF = float("inf")

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .environment import Environment

# Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
_PENDING = object()

# Scheduling priorities: URGENT events at the same timestamp are processed
# before NORMAL ones.  Used internally (e.g. process initialisation).
URGENT = 0
NORMAL = 1


class Event:
    """An event that may happen at some point in simulated time.

    Callbacks are callables of one argument (the event).  They run when the
    environment processes the event.  After processing, adding a callback is
    an error — tests rely on this to catch misuse early.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._defused: bool = False

    def __repr__(self) -> str:
        return f"<{self.__class__.__name__} {self._desc()}>"

    def _desc(self) -> str:
        if not self.triggered:
            return "pending"
        state = "processed" if self.processed else "triggered"
        return f"{state} ok={self._ok}"

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been invoked."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if not self.triggered:
            raise SimulationError("Event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._value is _PENDING:
            raise SimulationError("Event value not yet available")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Schedule the event as successful with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Schedule the event as failed with ``exception``.

        If no waiter "defuses" the failure by the time it is processed, the
        environment re-raises it to surface programming errors instead of
        silently swallowing them.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy state from ``event`` and schedule.  Usable as a callback."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    # -- composition -------------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_event, [self, other])


class Timeout(Event):
    """An event that fires ``delay`` units of simulated time after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        # One comparison rejects NaN (all comparisons false), negatives,
        # and +inf — any of which would corrupt the heap or hang the run.
        if not 0.0 <= delay < _INF:
            raise ValueError(f"Timeout delay must be finite and >= 0, got {delay!r}")
        # Timeouts are the kernel's hottest allocation (one per modeled
        # latency), so Event.__init__ and Environment.schedule are inlined
        # here: _ok/_value are written once instead of twice and the
        # already-validated delay skips schedule()'s re-check.
        self.env = env
        self.callbacks = []
        self._defused = False
        self.delay = delay
        self._ok = True
        self._value = value
        cal = env._cal
        if cal is None:
            heappush(env._queue, (env._now + delay, NORMAL, next(env._eid), self))
        else:
            # Calendar scheduler: entries at the current batch timestamp
            # join the pending list (O(1), in eid order); later ones go to
            # the calendar.  Compare times, not ``delay == 0`` — a delay
            # below one ulp of ``now`` lands on the current timestamp.
            t = env._now + delay
            if t == env._batch_time:
                env._pending.append((t, NORMAL, next(env._eid), self))
            else:
                cal.push((t, NORMAL, next(env._eid), self))

    def _desc(self) -> str:
        return f"delay={self.delay}"


class Initialize(Event):
    """Initialises a process.  Internal; processed before same-time events."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Event") -> None:
        super().__init__(env)
        self.callbacks = [process._resume]  # type: ignore[attr-defined]
        self._ok = True
        self._value = None
        env.schedule(self, priority=URGENT)


class ConditionValue:
    """Result of a condition: ordered mapping of triggered events to values."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[Event] = []

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(repr(key))
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()}>"

    def __iter__(self):
        return iter(self.events)

    def keys(self) -> List[Event]:
        return list(self.events)

    def values(self) -> List[Any]:
        return [e._value for e in self.events]

    def items(self):
        return [(e, e._value) for e in self.events]

    def todict(self) -> dict:
        return {e: e._value for e in self.events}


class Condition(Event):
    """Waits for a boolean combination of events (``&`` / ``|``).

    ``evaluate`` receives the list of sub-events and the count of processed
    ones and returns True when the condition holds.  Failed sub-events
    propagate their exception to the condition.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("Events from different environments cannot be mixed")

        for event in self._events:
            if event.processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)  # type: ignore[union-attr]

        # Register a callback that collects the values of triggered
        # sub-events (in declaration order) once the condition fires.
        if not self.triggered and self._evaluate(self._events, self._count):
            self.succeed(ConditionValue())
        if self.triggered and self._build_value not in self.callbacks:
            # Must run before any waiter's callback so the waiter sees a
            # populated ConditionValue.
            self.callbacks.insert(0, self._build_value)  # type: ignore[union-attr]

    def _desc(self) -> str:
        return f"{self._evaluate.__name__}({len(self._events)} events)"

    def _check(self, event: Event) -> None:
        if self.triggered:
            # The condition already fired (e.g. an AnyOf satisfied by a
            # sibling at this same timestamp).  A *failed* straggler still
            # needs defusing: the condition is the event's waiter, and
            # without this the environment re-raises the failure as
            # unhandled and kills the whole run.
            if not event._ok:
                event._defused = True
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            self.callbacks.insert(0, self._build_value)  # type: ignore[union-attr]
        elif self._evaluate(self._events, self._count):
            self.succeed(ConditionValue())
            self.callbacks.insert(0, self._build_value)  # type: ignore[union-attr]

    def _build_value(self, event: Event) -> None:
        self._remove_callbacks()
        if event._ok:
            value: ConditionValue = event._value
            for sub in self._events:
                if sub.triggered and sub._ok and sub not in value.events:
                    value.events.append(sub)

    def _remove_callbacks(self) -> None:
        for sub in self._events:
            if not sub.processed and sub.callbacks is not None:
                try:
                    sub.callbacks.remove(self._check)
                except ValueError:
                    pass

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_event(events: List[Event], count: int) -> bool:
        return count > 0 or not events


class AllOf(Condition):
    """Fires when every given event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Fires as soon as any given event fires (immediately if empty)."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.any_event, events)
