"""Process abstraction: a generator-driven actor in simulated time."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from .errors import Interrupt, SimulationError
from .events import Event, Initialize, NORMAL, URGENT, _PENDING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .environment import Environment

ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """Wraps a generator so it can run as a simulated process.

    A process is itself an :class:`Event` that succeeds with the generator's
    return value (or fails with its uncaught exception), so processes can
    wait on each other by yielding the :class:`Process` object.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: ProcessGenerator,
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = Initialize(env, self)
        self.name = name or getattr(generator, "__name__", "process")

    def _desc(self) -> str:
        return f"{self.name} {super()._desc()}"

    @property
    def target(self) -> Optional[Event]:
        """The event this process currently waits for (None if running)."""
        return self._target

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The process must be alive and must not interrupt itself.
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise SimulationError("A process is not allowed to interrupt itself")

        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks = [self._resume]
        self.env.schedule(interrupt_event, priority=URGENT)

        # Detach from the event we were waiting on so it does not resume us
        # a second time.  (The event itself stays scheduled for any other
        # waiters.)
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None

    def _resume(self, event: Event) -> None:
        """Advance the generator with the value/exception of ``event``."""
        env = self.env
        env._active_proc = self

        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    # The waiter takes responsibility for the failure.
                    event._defused = True
                    exc = event._value
                    if isinstance(exc, BaseException):
                        next_event = self._generator.throw(exc)
                    else:  # pragma: no cover - defensive
                        next_event = self._generator.throw(
                            SimulationError(repr(exc))
                        )
            except StopIteration as stop:
                # Process finished normally.
                self._ok = True
                self._value = stop.value
                env.schedule(self, priority=NORMAL)
                break
            except BaseException as error:
                # Process died; propagate through the process event.
                self._ok = False
                self._value = error
                env.schedule(self, priority=NORMAL)
                break

            if next_event is None:
                # Allow "yield None" as a cooperative no-op scheduling point.
                event = Event(env)
                event._ok = True
                event._value = None
                env.schedule(event, priority=URGENT)
                event.callbacks.append(self._resume)  # type: ignore[union-attr]
                self._target = event
                break

            if not isinstance(next_event, Event):
                raise SimulationError(
                    f"Process {self.name!r} yielded non-event {next_event!r}"
                )

            if next_event.env is not env:
                raise SimulationError(
                    "Process yielded an event from a different environment"
                )

            if next_event.callbacks is not None:
                # Event not yet processed: register for resumption and stop.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break

            # Event already processed: loop and feed its value immediately.
            event = next_event

        env._active_proc = None
