"""Shared-resource primitives: Resource, PriorityResource, Container, Store.

These model contention points in the simulated system — NICs, disk heads,
server request queues — in the classic request/release style.  Request and
get/put operations are events, so processes simply ``yield`` them; requests
also work as context managers for exception-safe release.
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import count
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Deque,
    Generic,
    List,
    Optional,
    TypeVar,
)

from .errors import SimulationError
from .events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .environment import Environment

T = TypeVar("T")


class Request(Event):
    """A pending claim on a :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw an unfulfilled request (no-op if already granted)."""
        self.resource._cancel(self)


class Resource:
    """A resource with ``capacity`` identical slots and a FIFO wait queue.

    The wait queue is a deque: at scale a single contention point (the
    master's NIC RX channel with a thousand senders queued on it) grants
    thousands of times from the queue head, and ``list.pop(0)`` there is
    O(waiters) per grant — quadratic over a run.
    """

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: List[Request] = []
        self.queue: Deque[Request] = deque()

    def __repr__(self) -> str:
        return (
            f"<{self.__class__.__name__} capacity={self.capacity} "
            f"users={len(self.users)} queued={len(self.queue)}>"
        )

    @property
    def in_use(self) -> int:
        return len(self.users)

    @property
    def available(self) -> int:
        return self.capacity - len(self.users)

    def request(self) -> Request:
        """Claim a slot; the returned event fires when granted."""
        return Request(self)

    def release(self, request: Request) -> None:
        """Return a slot claimed by ``request`` and wake the next waiter."""
        try:
            self.users.remove(request)
        except ValueError:
            # Releasing an unfulfilled request equals cancelling it.
            self._cancel(request)
            return
        self._grant_next()

    # -- internals ----------------------------------------------------------
    def _do_request(self, request: Request) -> None:
        if len(self.users) < self.capacity:
            self.users.append(request)
            request.succeed()
        else:
            self.queue.append(request)

    def _cancel(self, request: Request) -> None:
        try:
            self.queue.remove(request)
        except ValueError:
            pass

    def _grant_next(self) -> None:
        if self.queue and len(self.users) < self.capacity:
            nxt = self.queue.popleft()
            self.users.append(nxt)
            nxt.succeed()


class PriorityRequest(Request):
    """A claim with a priority (lower value = more important)."""

    __slots__ = ("priority", "_order")

    def __init__(self, resource: "PriorityResource", priority: int = 0) -> None:
        self.priority = priority
        self._order = next(resource._counter)
        super().__init__(resource)

    def _key(self):
        return (self.priority, self._order)


class PriorityResource(Resource):
    """A :class:`Resource` whose wait queue is ordered by priority."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        self._counter = count()
        super().__init__(env, capacity)
        self._heap: List[tuple] = []

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        return PriorityRequest(self, priority)

    def _do_request(self, request: Request) -> None:
        if len(self.users) < self.capacity:
            self.users.append(request)
            request.succeed()
        else:
            heapq.heappush(self._heap, (*request._key(), request))  # type: ignore[attr-defined]
            self.queue.append(request)

    def _cancel(self, request: Request) -> None:
        try:
            self.queue.remove(request)
        except ValueError:
            return
        self._heap = [entry for entry in self._heap if entry[2] is not request]
        heapq.heapify(self._heap)

    def _grant_next(self) -> None:
        while self._heap and len(self.users) < self.capacity:
            _, _, nxt = heapq.heappop(self._heap)
            if nxt not in self.queue:
                continue
            self.queue.remove(nxt)
            self.users.append(nxt)
            nxt.succeed()
            return


class ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(container.env)
        self.amount = amount
        container._get_waiters.append(self)
        container._update()


class ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(container.env)
        self.amount = amount
        container._put_waiters.append(self)
        container._update()


class Container:
    """A homogeneous bulk quantity (bytes of buffer space, credits, ...)."""

    def __init__(
        self, env: "Environment", capacity: float = float("inf"), init: float = 0.0
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not (0 <= init <= capacity):
            raise ValueError("init must lie in [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = init
        self._get_waiters: List[ContainerGet] = []
        self._put_waiters: List[ContainerPut] = []

    @property
    def level(self) -> float:
        return self._level

    def get(self, amount: float) -> ContainerGet:
        return ContainerGet(self, amount)

    def put(self, amount: float) -> ContainerPut:
        return ContainerPut(self, amount)

    def _update(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._put_waiters:
                put = self._put_waiters[0]
                if self._level + put.amount <= self.capacity:
                    self._put_waiters.pop(0)
                    self._level += put.amount
                    put.succeed()
                    progressed = True
            if self._get_waiters:
                get = self._get_waiters[0]
                if self._level >= get.amount:
                    self._get_waiters.pop(0)
                    self._level -= get.amount
                    get.succeed()
                    progressed = True


class StoreGet(Event):
    __slots__ = ("filter",)

    def __init__(self, store: "Store", filter: Optional[Callable[[Any], bool]] = None) -> None:
        super().__init__(store.env)
        self.filter = filter
        store._get_arrived(self)


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item
        store._putters.append(self)
        store._rebalance()


class Store(Generic[T]):
    """An unordered buffer of Python objects with optional capacity.

    ``get`` may take a filter predicate; the first matching item is removed
    (FilterStore semantics folded in — the simulated MPI matching queues
    rely on this).
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: List[T] = []
        self._getters: List[StoreGet] = []
        self._putters: Deque[StorePut] = deque()

    def __repr__(self) -> str:
        return f"<Store items={len(self.items)} getters={len(self._getters)}>"

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: T) -> StorePut:
        return StorePut(self, item)

    def get(self, filter: Optional[Callable[[T], bool]] = None) -> StoreGet:
        return StoreGet(self, filter)

    def peek(self, filter: Optional[Callable[[T], bool]] = None) -> Optional[T]:
        """Non-destructively find the first matching item (or None)."""
        for item in self.items:
            if filter is None or filter(item):
                return item
        return None

    # Dispatch maintains the invariant that no waiting getter matches any
    # stored item, so the old fixpoint loop's full getters × items rescan
    # on *every* operation collapses to targeted work: a new getter scans
    # the items once, and newly admitted items are offered only to the
    # waiting getters (which by the invariant cannot match older items).
    # The grant order — FIFO putter admission, then getters in FIFO order
    # each taking their first match by item position — is unchanged
    # (property-tested against the reference fixpoint implementation).

    def _get_arrived(self, getter: StoreGet) -> None:
        flt = getter.filter
        items = self.items
        for idx, item in enumerate(items):
            if flt is None or flt(item):
                items.pop(idx)
                getter.succeed(item)
                # The freed slot may admit a queued putter.
                if self._putters:
                    self._rebalance()
                return
        self._getters.append(getter)

    def _rebalance(self) -> None:
        items = self.items
        putters = self._putters
        capacity = self.capacity
        while putters and len(items) < capacity:
            # Admit as many queued putters as capacity allows (FIFO) ...
            new_lo = len(items)
            while putters and len(items) < capacity:
                put = putters.popleft()
                items.append(put.item)
                put.succeed()
            # ... then offer only the new items to the waiting getters.
            if len(items) > new_lo and self._getters:
                getters = self._getters
                remaining: List[StoreGet] = []
                for gi, getter in enumerate(getters):
                    if new_lo >= len(items):
                        # No new items left; the rest keep waiting.
                        remaining.extend(getters[gi:])
                        break
                    flt = getter.filter
                    for idx in range(new_lo, len(items)):
                        if flt is None or flt(items[idx]):
                            getter.succeed(items.pop(idx))
                            break
                    else:
                        remaining.append(getter)
                self._getters = remaining
