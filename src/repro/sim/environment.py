"""The simulation environment: event queue, virtual clock, run loop."""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count
from typing import Any, Iterable, List, Optional, Tuple, Union

from ..check.invariants import NULL_CHECKER
from ..obs.metrics import NULL_METRICS
from .errors import EmptySchedule, SimulationError, StopSimulation
from .events import AllOf, AnyOf, Event, NORMAL, Timeout
from .process import Process, ProcessGenerator

_INF = float("inf")


class Environment:
    """Execution environment for a discrete-event simulation.

    Time is a float in *seconds* throughout this project.  Events scheduled
    at the same timestamp are ordered by priority, then FIFO by insertion.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_proc: Optional[Process] = None
        # Observability hook: layers emit counters/histograms here.  The
        # null registry makes every metric call a no-op; the kernel itself
        # never reads it, so metrics cannot perturb event ordering.
        self.metrics = NULL_METRICS
        # Invariant-checking hook (``--check``): same null-object pattern —
        # pure bookkeeping when enabled, so the event order is untouched.
        self.check = NULL_CHECKER

    def __repr__(self) -> str:
        return f"<Environment now={self._now:.9g} queued={len(self._queue)}>"

    # -- clock & introspection ----------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None between events)."""
        return self._active_proc

    @property
    def queue_size(self) -> int:
        return len(self._queue)

    # -- factories -----------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: Optional[str] = None) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Insert ``event`` into the queue ``delay`` seconds from now.

        ``delay`` must be finite and non-negative: a NaN timestamp breaks
        heapq's ordering invariant and silently corrupts the queue, and an
        infinite one can never be reached.  Zero (the overwhelmingly common
        case — every succeed/fail/trigger) takes the comparison-free path.
        """
        if delay:
            # Truthy delay: NaN and negatives fail the left comparison,
            # +inf fails the right one.
            if not 0.0 < delay < _INF:
                raise SimulationError(
                    f"Cannot schedule with non-finite or negative delay {delay!r}"
                )
            heappush(self._queue, (self._now + delay, priority, next(self._eid), event))
        else:
            heappush(self._queue, (self._now, priority, next(self._eid), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._queue[0][0] if self._queue else _INF

    def step(self) -> None:
        """Process the next event: advance the clock, run callbacks."""
        queue = self._queue
        if not queue:
            raise EmptySchedule()
        self._now, _, _, event = heappop(queue)

        callbacks = event.callbacks
        if callbacks is None:  # pragma: no cover - defensive
            raise SimulationError(f"{event!r} processed twice")
        event.callbacks = None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # Nobody handled this failure; crash the simulation loudly.
            exc = event._value
            raise exc if isinstance(exc, BaseException) else SimulationError(repr(exc))

    # -- run loop ---------------------------------------------------------------
    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run until the queue drains, a time is reached, or an event fires.

        * ``until is None`` — run to exhaustion, return None.
        * ``until`` is a number — run to that time, return None.
        * ``until`` is an :class:`Event` — run until it is processed and
          return its value (raising if it failed).
        """
        if until is not None:
            if isinstance(until, Event):
                if until.callbacks is None:
                    # Already processed.
                    if until._ok:
                        return until._value
                    raise until._value  # type: ignore[misc]
                until.callbacks.append(_stop_simulation)
            else:
                at = float(until)
                # Inverted comparison so a NaN ``until`` is rejected too.
                if not at >= self._now:
                    raise ValueError(f"until ({at}) must not be before now ({self._now})")
                stopper = Event(self)
                stopper._ok = True
                stopper._value = None
                stopper.callbacks = [_stop_simulation]
                heappush(self._queue, (at, NORMAL, next(self._eid), stopper))

        step = self.step
        try:
            while True:
                step()
        except StopSimulation as stop:
            return stop.value
        except EmptySchedule:
            if isinstance(until, Event) and not until.triggered:
                raise SimulationError(
                    "Simulation ended before the awaited event was triggered"
                ) from None
            return None


def _stop_simulation(event: Event) -> None:
    if event._ok:
        raise StopSimulation(event._value)
    event._defused = True
    raise event._value  # type: ignore[misc]
