"""The simulation environment: event queue, virtual clock, run loop."""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count
from typing import Any, Iterable, List, Optional, Tuple, Union

from ..check.invariants import NULL_CHECKER
from ..obs.metrics import NULL_METRICS
from .calendar import CalendarQueue
from .errors import EmptySchedule, SimulationError, StopSimulation
from .events import AllOf, AnyOf, Event, NORMAL, Timeout
from .process import Process, ProcessGenerator

_INF = float("inf")

#: Valid ``Environment(scheduler=...)`` names.
SCHEDULERS = ("heap", "calendar")


class Environment:
    """Execution environment for a discrete-event simulation.

    Time is a float in *seconds* throughout this project.  Events scheduled
    at the same timestamp are ordered by priority, then FIFO by insertion.

    Two scheduler backends implement that contract:

    * ``"heap"`` (default) — a binary heap, the seed behaviour, O(log n)
      per operation.
    * ``"calendar"`` — a :class:`~repro.sim.calendar.CalendarQueue` with
      O(1) expected operations plus a same-timestamp *ready batch*: all
      events sharing the current timestamp drain through a plain list, so
      zero-delay cascades (succeed/grant/mailbox traffic, the bulk of a
      real run) never touch the queue structure at all.

    Both backends use the identical ``(time, priority, eid)`` tie-break,
    so they process events in exactly the same order; the choice affects
    wall-clock speed only, never simulated results.
    """

    def __init__(self, initial_time: float = 0.0, scheduler: str = "heap") -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_proc: Optional[Process] = None
        if scheduler == "heap":
            self._cal: Optional[CalendarQueue] = None
        elif scheduler == "calendar":
            self._cal = CalendarQueue()
        else:
            raise ValueError(
                f"unknown scheduler {scheduler!r} (choose from {SCHEDULERS})"
            )
        self.scheduler = scheduler
        # Calendar mode only.  Three same-timestamp staging areas, all
        # holding entries with time == ``_batch_time`` (the calendar holds
        # only strictly later ones):
        #
        # * ``_ready`` — the batch being drained, sorted DESCENDING so the
        #   next event is a C-speed ``list.pop()`` off the end;
        # * ``_pending`` — NORMAL entries scheduled *during* the drain
        #   (zero-delay cascades).  Their eids all exceed every eid in
        #   ``_ready``, so they run after it: promoted wholesale (one
        #   ``reverse()``) when ``_ready`` empties — O(1) amortized per
        #   event, no per-entry ordering work;
        # * ``_urgent`` — URGENT entries (process inits, interrupts).
        #   ``(t, URGENT, eid)`` sorts before every NORMAL entry at t, so
        #   they drain first, FIFO among themselves.
        self._ready: List[tuple] = []
        self._pending: List[tuple] = []
        self._urgent: List[tuple] = []
        self._batch_time = self._now
        #: Calendar mode: count of batches pulled (one clock advance each);
        #: published as ``sim.calendar_batches`` at end of run — a plain
        #: int increment keeps the metrics hook out of the hot loop.
        self.batches = 0
        # Observability hook: layers emit counters/histograms here.  The
        # null registry makes every metric call a no-op; the kernel itself
        # never reads it, so metrics cannot perturb event ordering.
        self.metrics = NULL_METRICS
        # Invariant-checking hook (``--check``): same null-object pattern —
        # pure bookkeeping when enabled, so the event order is untouched.
        self.check = NULL_CHECKER

    def __repr__(self) -> str:
        return (
            f"<Environment now={self._now:.9g} queued={self.queue_size} "
            f"scheduler={self.scheduler}>"
        )

    # -- clock & introspection ----------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None between events)."""
        return self._active_proc

    @property
    def queue_size(self) -> int:
        if self._cal is None:
            return len(self._queue)
        return (
            len(self._cal)
            + len(self._ready)
            + len(self._pending)
            + len(self._urgent)
        )

    # -- factories -----------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: Optional[str] = None) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Insert ``event`` into the queue ``delay`` seconds from now.

        ``delay`` must be finite and non-negative: a NaN timestamp breaks
        the queue's ordering invariant and silently corrupts it, and an
        infinite one can never be reached.  Zero (the overwhelmingly common
        case — every succeed/fail/trigger) takes the comparison-free path.
        """
        if delay:
            # Truthy delay: NaN and negatives fail the left comparison,
            # +inf fails the right one.
            if not 0.0 < delay < _INF:
                raise SimulationError(
                    f"Cannot schedule with non-finite or negative delay {delay!r}"
                )
            t = self._now + delay
        else:
            t = self._now
        if self._cal is None:
            heappush(self._queue, (t, priority, next(self._eid), event))
        else:
            self._insert(t, priority, event)

    def _insert(self, t: float, priority: int, event: Event) -> None:
        """Route an entry to the active scheduler backend."""
        if self._cal is None:
            heappush(self._queue, (t, priority, next(self._eid), event))
        elif t == self._batch_time:
            # Same timestamp as the batch being drained: NORMAL entries
            # (monotonically increasing eid) append to the pending list in
            # O(1); URGENT ones (rare) join their own FIFO lane, drained
            # ahead of every NORMAL entry.
            if priority == NORMAL:
                self._pending.append((t, priority, next(self._eid), event))
            else:
                self._urgent.append((t, priority, next(self._eid), event))
        else:
            self._cal.push((t, priority, next(self._eid), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        if self._cal is None:
            return self._queue[0][0] if self._queue else _INF
        if self._urgent or self._ready or self._pending:
            return self._batch_time
        return self._cal.peek_time()

    def step(self) -> None:
        """Process the next event: advance the clock, run callbacks."""
        if self._cal is None:
            queue = self._queue
            if not queue:
                raise EmptySchedule()
            self._now, _, _, event = heappop(queue)
        else:
            entry = None
            urgent = self._urgent
            if urgent:
                entry = urgent.pop(0)
            else:
                ready = self._ready
                if not ready:
                    pending = self._pending
                    if pending:
                        # Same-time cascade continues: promote wholesale.
                        pending.reverse()
                        self._ready = ready = pending
                        self._pending = []
                    else:
                        batch = self._cal.pop_batch()
                        if not batch:
                            raise EmptySchedule()
                        self.batches += 1
                        self._batch_time = batch[0][0]
                        if len(batch) == 1:
                            # Singleton batch (isolated timestamp): run it
                            # directly, skip the ready-list bookkeeping.
                            entry = batch[0]
                        else:
                            if batch[0][1] != NORMAL:
                                # Rare: URGENT entries scheduled with a
                                # real delay.  The sorted batch's URGENT
                                # prefix moves to the urgent lane.
                                k = 1
                                while k < len(batch) and batch[k][1] != NORMAL:
                                    k += 1
                                urgent.extend(batch[:k])
                                del batch[:k]
                                entry = urgent.pop(0)
                            batch.reverse()
                            self._ready = ready = batch
                if entry is None:
                    entry = ready.pop()
            self._now = entry[0]
            event = entry[3]

        callbacks = event.callbacks
        if callbacks is None:  # pragma: no cover - defensive
            raise SimulationError(f"{event!r} processed twice")
        event.callbacks = None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # Nobody handled this failure; crash the simulation loudly.
            exc = event._value
            raise exc if isinstance(exc, BaseException) else SimulationError(repr(exc))

    # -- run loop ---------------------------------------------------------------
    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run until the queue drains, a time is reached, or an event fires.

        * ``until is None`` — run to exhaustion, return None.
        * ``until`` is a number — run to that time, return None.
        * ``until`` is an :class:`Event` — run until it is processed and
          return its value (raising if it failed).
        """
        if until is not None:
            if isinstance(until, Event):
                if until.callbacks is None:
                    # Already processed: return/raise exactly as the
                    # waiter path would.  A failed event is defused here
                    # for the same reason _stop_simulation defuses it —
                    # the caller of run() took responsibility for the
                    # failure by receiving the raised exception.
                    if until._ok:
                        return until._value
                    until._defused = True
                    raise until._value  # type: ignore[misc]
                until.callbacks.append(_stop_simulation)
            else:
                at = float(until)
                # Inverted comparison so a NaN ``until`` is rejected too.
                if not at >= self._now:
                    raise ValueError(f"until ({at}) must not be before now ({self._now})")
                stopper = Event(self)
                stopper._ok = True
                stopper._value = None
                stopper.callbacks = [_stop_simulation]
                self._insert(at, NORMAL, stopper)

        step = self.step
        try:
            while True:
                step()
        except StopSimulation as stop:
            return stop.value
        except EmptySchedule:
            if isinstance(until, Event) and not until.triggered:
                raise SimulationError(
                    "Simulation ended before the awaited event was triggered"
                ) from None
            return None


def _stop_simulation(event: Event) -> None:
    if event._ok:
        raise StopSimulation(event._value)
    event._defused = True
    raise event._value  # type: ignore[misc]
