"""Deterministic, path-addressed random streams.

Every stochastic quantity in the simulation (result counts, sequence sizes,
service-time jitter, ...) draws from a stream addressed by a tuple path such
as ``("result", query_id, fragment_id)``.  Streams derived from the same root
seed and path are identical regardless of process count, strategy, or the
order in which they are created — the property the paper relies on when it
states "the results are always identical since they are pseudo-randomly
generated".
"""

from __future__ import annotations

import hashlib
from typing import Tuple, Union

import numpy as np

PathElement = Union[int, str]


def _path_entropy(path: Tuple[PathElement, ...]) -> Tuple[int, ...]:
    """Map a heterogeneous path to stable 32-bit words via BLAKE2."""
    words = []
    for element in path:
        digest = hashlib.blake2b(repr(element).encode(), digest_size=8).digest()
        words.append(int.from_bytes(digest[:4], "little"))
        words.append(int.from_bytes(digest[4:], "little"))
    return tuple(words)


class RandomStreams:
    """Factory of independent :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed

    def __repr__(self) -> str:
        return f"RandomStreams(seed={self.seed})"

    def stream(self, *path: PathElement) -> np.random.Generator:
        """A generator whose state depends only on (seed, path)."""
        entropy = (self.seed,) + _path_entropy(tuple(path))
        return np.random.default_rng(np.random.SeedSequence(entropy))

    def spawn(self, *path: PathElement) -> "RandomStreams":
        """A sub-factory rooted at ``path`` (for nested components)."""
        entropy = (self.seed,) + _path_entropy(tuple(path))
        digest = hashlib.blake2b(
            repr(entropy).encode(), digest_size=8
        ).digest()
        return RandomStreams(int.from_bytes(digest, "little"))
