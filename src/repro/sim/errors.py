"""Exception types for the discrete-event simulation kernel."""

from __future__ import annotations

from typing import Any


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class EmptySchedule(SimulationError):
    """Raised by :meth:`Environment.step` when no events remain."""


class StopSimulation(Exception):
    """Internal control-flow exception used by ``Environment.run(until=...)``.

    Carries the value of the event that terminated the run.
    """

    def __init__(self, value: Any) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` carries arbitrary user context (e.g. why the wait was
    cancelled).  An interrupted process may catch this and continue.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    def __repr__(self) -> str:
        return f"Interrupt({self.cause!r})"

    def __str__(self) -> str:
        return repr(self)

    @property
    def cause(self) -> Any:
        return self.args[0]
