"""Two-phase collective I/O (ROMIO's generic collective method).

The default collective method in ROMIO and the engine behind the paper's
WW-Coll strategy.  Phase 1 exchanges data so that each of the ``cb_nodes``
aggregators holds a contiguous *file domain*; phase 2 has aggregators issue
large (near-)contiguous writes.  The exchange is an ``alltoallv`` among all
participants — this is the *inherent synchronization* whose cost the paper
sets out to expose: every rank blocks in the exchange until the slowest
participant arrives, whether or not it has data to contribute.

The domain is processed in ``cb_buffer_size`` windows ("ntimes" rounds in
ROMIO), each round being a fresh exchange + write.

``two_phase_read_all`` is the read-side mirror (Thakur et al., "Optimizing
Noncontiguous Accesses in MPI-IO"): per round the consumers ship
header-only region *requests* to the aggregators, each aggregator issues
one large read over the union of the requested pieces in its window, and a
second exchange shuffles the file-domain data back to the consumers.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .. import mpi
from ..pvfs.filesystem import FileSystem, PVFSFile
from .hints import MPIIOHints

Region = Tuple[int, int]
_PIECE_HEADER_B = 16  # wire overhead per (offset, length) pair exchanged


def two_phase_write_all(
    comm,
    fs: FileSystem,
    file: PVFSFile,
    regions: Sequence[Region],
    datas: Optional[Sequence[Optional[bytes]]] = None,
    hints: Optional[MPIIOHints] = None,
):
    """Process fragment: collective write; every rank of ``comm`` must call.

    ``regions`` may be empty on ranks with nothing to write — they still
    participate in every exchange round (the synchronization the paper
    measures).
    """
    hints = hints if hints is not None else MPIIOHints()
    regions = list(regions)
    if datas is not None and len(datas) != len(regions):
        raise ValueError("datas must align with regions")

    # --- Step 1: allgather per-rank span metadata (small messages). ---------
    my_span = None
    if regions:
        my_span = (
            min(offset for offset, _ in regions),
            max(offset + length for offset, length in regions),
        )
    spans = yield from mpi.allgather(comm, 32, my_span)

    live = [s for s in spans if s is not None]
    if not live:
        if hints.collective_final_barrier:
            yield from mpi.barrier(comm)
        return

    global_lo = min(s[0] for s in live)
    global_hi = max(s[1] for s in live)

    # --- Step 2: partition [lo, hi) into per-aggregator file domains. -------
    naggs = hints.effective_cb_nodes(comm.size, len(fs.servers))
    fd_size = -(-(global_hi - global_lo) // naggs)  # ceil
    # Aggregators are the first naggs ranks of the communicator (ROMIO uses
    # the cb_config_list selection; first-N is its flat default).
    domains = [
        (global_lo + k * fd_size, min(global_lo + (k + 1) * fd_size, global_hi))
        for k in range(naggs)
    ]
    ntimes = max(1, -(-fd_size // hints.cb_buffer_size))

    my_pieces = _indexed_pieces(regions, datas)

    # --- Step 3+4: rounds of exchange + aggregator write. -------------------
    for round_idx in range(ntimes):
        sizes = [0] * comm.size
        payloads: List[Optional[List]] = [None] * comm.size
        for agg in range(naggs):
            d_lo, d_hi = domains[agg]
            w_lo = d_lo + round_idx * hints.cb_buffer_size
            w_hi = min(w_lo + hints.cb_buffer_size, d_hi)
            if w_lo >= w_hi:
                continue
            chunk = _clip_pieces(my_pieces, w_lo, w_hi)
            if chunk:
                nbytes = sum(length for _, length, _ in chunk)
                sizes[agg] = nbytes + _PIECE_HEADER_B * len(chunk)
                payloads[agg] = chunk

        m = comm.env.metrics
        if m.enabled:
            m.inc(
                "mpiio.twophase_exchange_bytes",
                float(sum(sizes)),
                rank=comm.global_rank,
            )
            if comm.rank == 0:
                m.inc("mpiio.twophase_rounds", 1.0)

        received = yield from mpi.alltoallv(comm, sizes, payloads)

        if comm.rank < naggs:
            incoming: List[Tuple[int, int, Optional[bytes]]] = []
            for item in received:
                if item:
                    incoming.extend(item)
            if incoming:
                runs, run_datas = _coalesce_pieces(incoming)
                yield from fs.write_list(
                    comm.global_rank, file, runs, run_datas
                )

    if hints.collective_final_barrier:
        yield from mpi.barrier(comm)


def two_phase_read_all(
    comm,
    fs: FileSystem,
    file: PVFSFile,
    regions: Sequence[Region],
    hints: Optional[MPIIOHints] = None,
):
    """Process fragment: collective read; every rank of ``comm`` must call.

    ``regions`` may be empty on ranks with nothing to read — they still
    participate in every exchange round.  Returns the per-region bytes in
    input order when the store keeps data, else ``None``.
    """
    hints = hints if hints is not None else MPIIOHints()
    regions = list(regions)

    # --- Step 1: allgather per-rank span metadata (small messages). ---------
    my_span = None
    if regions:
        my_span = (
            min(offset for offset, _ in regions),
            max(offset + length for offset, length in regions),
        )
    spans = yield from mpi.allgather(comm, 32, my_span)

    results: List[bytearray] = [bytearray(length) for _, length in regions]
    have_data = True

    live = [s for s in spans if s is not None]
    if not live:
        if hints.collective_final_barrier:
            yield from mpi.barrier(comm)
        return [bytes(buf) for buf in results]

    global_lo = min(s[0] for s in live)
    global_hi = max(s[1] for s in live)

    # --- Step 2: the same aggregator file domains as the write side. --------
    naggs = hints.effective_cb_nodes(comm.size, len(fs.servers))
    fd_size = -(-(global_hi - global_lo) // naggs)  # ceil
    domains = [
        (global_lo + k * fd_size, min(global_lo + (k + 1) * fd_size, global_hi))
        for k in range(naggs)
    ]
    ntimes = max(1, -(-fd_size // hints.cb_buffer_size))

    # Requests carry no payload, only (offset, length, region index).
    my_pieces = [
        (offset, length, idx) for idx, (offset, length) in enumerate(regions)
    ]

    # --- Step 3+4: rounds of request exchange + aggregator read + reply. ----
    for round_idx in range(ntimes):
        sizes = [0] * comm.size
        payloads: List[Optional[List]] = [None] * comm.size
        for agg in range(naggs):
            d_lo, d_hi = domains[agg]
            w_lo = d_lo + round_idx * hints.cb_buffer_size
            w_hi = min(w_lo + hints.cb_buffer_size, d_hi)
            if w_lo >= w_hi:
                continue
            chunk = []
            for offset, length, idx in my_pieces:
                c_lo = max(offset, w_lo)
                c_hi = min(offset + length, w_hi)
                if c_lo >= c_hi:
                    continue
                chunk.append((c_lo, c_hi - c_lo, idx))
            if chunk:
                sizes[agg] = _PIECE_HEADER_B * len(chunk)
                payloads[agg] = chunk

        m = comm.env.metrics
        if m.enabled:
            m.inc(
                "mpiio.twophase_read_exchange_bytes",
                float(sum(sizes)),
                rank=comm.global_rank,
            )
            if comm.rank == 0:
                m.inc("mpiio.twophase_read_rounds", 1.0)

        requests = yield from mpi.alltoallv(comm, sizes, payloads)

        reply_sizes = [0] * comm.size
        reply_payloads: List[Optional[List]] = [None] * comm.size
        if comm.rank < naggs:
            wanted: List[Tuple[int, int, int, int]] = []
            for src, items in enumerate(requests):
                if items:
                    for offset, length, idx in items:
                        wanted.append((offset, length, src, idx))
            if wanted:
                # One large read over the union of the requested pieces —
                # the whole point of aggregation (holes between pieces are
                # *not* read; the union runs are already near-contiguous).
                runs = _union_runs((o, l) for o, l, _, _ in wanted)
                run_datas = yield from fs.read_list(
                    comm.global_rank,
                    file,
                    [(lo, hi - lo) for lo, hi in runs],
                )
                replies: dict = {}
                for offset, length, src, idx in wanted:
                    data = None
                    if run_datas is not None:
                        data = _slice_runs(runs, run_datas, offset, length)
                    replies.setdefault(src, []).append((offset, length, idx, data))
                for src, items in replies.items():
                    nbytes = sum(length for _, length, _, _ in items)
                    reply_sizes[src] = nbytes + _PIECE_HEADER_B * len(items)
                    reply_payloads[src] = items

        if m.enabled:
            m.inc(
                "mpiio.twophase_read_exchange_bytes",
                float(sum(reply_sizes)),
                rank=comm.global_rank,
            )

        delivered = yield from mpi.alltoallv(comm, reply_sizes, reply_payloads)

        for items in delivered:
            if not items:
                continue
            for offset, length, idx, data in items:
                if data is None:
                    have_data = False
                    continue
                base = regions[idx][0]
                results[idx][offset - base : offset - base + length] = data

    if hints.collective_final_barrier:
        yield from mpi.barrier(comm)
    if not have_data:
        return None
    return [bytes(buf) for buf in results]


def _union_runs(pieces) -> List[Tuple[int, int]]:
    """Disjoint [lo, hi) runs covering the union of (offset, length) pieces
    (adjacent and overlapping pieces fuse — this is a read, extent
    bookkeeping doesn't apply)."""
    runs: List[List[int]] = []
    for lo, hi in sorted((o, o + l) for o, l in pieces if l > 0):
        if runs and lo <= runs[-1][1]:
            runs[-1][1] = max(runs[-1][1], hi)
        else:
            runs.append([lo, hi])
    return [(lo, hi) for lo, hi in runs]


def _slice_runs(
    runs: List[Tuple[int, int]],
    run_datas: Sequence[bytes],
    offset: int,
    length: int,
) -> bytes:
    """The bytes for [offset, offset+length) out of disjoint sorted runs
    (the requested piece always lies inside exactly one union run)."""
    for (lo, hi), data in zip(runs, run_datas):
        if lo <= offset and offset + length <= hi:
            return bytes(data[offset - lo : offset - lo + length])
    raise ValueError(  # pragma: no cover - runs cover every requested piece
        f"piece ({offset}, {length}) not covered by union runs"
    )


def _indexed_pieces(
    regions: Sequence[Region], datas: Optional[Sequence[Optional[bytes]]]
) -> List[Tuple[int, int, Optional[bytes]]]:
    out = []
    for idx, (offset, length) in enumerate(regions):
        data = datas[idx] if datas is not None else None
        if data is not None and len(data) != length:
            raise ValueError("data length mismatch")
        out.append((offset, length, data))
    return out


def _clip_pieces(
    pieces: List[Tuple[int, int, Optional[bytes]]], lo: int, hi: int
) -> List[Tuple[int, int, Optional[bytes]]]:
    """Pieces intersected with the window [lo, hi)."""
    out = []
    for offset, length, data in pieces:
        c_lo = max(offset, lo)
        c_hi = min(offset + length, hi)
        if c_lo >= c_hi:
            continue
        c_data = data[c_lo - offset : c_hi - offset] if data is not None else None
        out.append((c_lo, c_hi - c_lo, c_data))
    return out


def _coalesce_pieces(
    pieces: List[Tuple[int, int, Optional[bytes]]],
) -> Tuple[List[Region], Optional[List[Optional[bytes]]]]:
    """Sort by offset and merge adjacent pieces into contiguous runs."""
    pieces = sorted(pieces, key=lambda p: p[0])
    runs: List[List] = []
    have_data = any(p[2] is not None for p in pieces)
    for offset, length, data in pieces:
        if runs and runs[-1][0] + runs[-1][1] == offset:
            runs[-1][1] += length
            if have_data:
                runs[-1][2] = (runs[-1][2] or b"") + (data or bytes(length))
        else:
            runs.append([offset, length, data if data is not None else (bytes(length) if have_data else None)])
    regions = [(r[0], r[1]) for r in runs]
    datas = [r[2] for r in runs] if have_data else None
    return regions, datas
