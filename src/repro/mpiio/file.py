"""The MPI-IO file object: open, independent & collective writes, sync.

Mirrors the MPI_File_* subset the paper's strategies need:

* ``write_at`` — independent contiguous write (master-writing).
* ``write_at_list`` — independent noncontiguous write; the method (POSIX /
  list I/O / data sieving) is chosen per hints (WW-POSIX, WW-List).
* ``write_at_all`` — collective two-phase write (WW-Coll).
* ``write_view`` — write through a derived-datatype file view (flattened
  with :mod:`repro.mpiio.datatypes` then routed like ``write_at_list``).
* ``sync`` / ``sync_collective`` — flush to PVFS2 servers, called after
  every write in the paper's setup.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from .. import mpi
from ..pvfs.filesystem import FileSystem, PVFSFile
from .datatypes import Datatype, tile_view
from .hints import IND_LIST, IND_POSIX, IND_SIEVE, MPIIOHints
from .noncontig import (
    datasieve_read,
    datasieve_write,
    list_read,
    listio_write,
    posix_read,
    posix_write,
)
from .twophase import two_phase_read_all, two_phase_write_all

Region = Tuple[int, int]


class MPIIOFile:
    """An MPI-IO file handle shared by the ranks that opened it."""

    def __init__(self, fs: FileSystem, file: PVFSFile, hints: MPIIOHints) -> None:
        self.fs = fs
        self.file = file
        self.hints = hints

    def __repr__(self) -> str:
        return f"<MPIIOFile {self.file.name!r} hints={self.hints}>"

    # -- opening ------------------------------------------------------------
    @classmethod
    def open(cls, comm, fs: FileSystem, path: str, hints: Optional[MPIIOHints] = None):
        """Process fragment: collective open; every rank of ``comm`` calls.

        Rank 0 performs the metadata traffic and broadcasts the handle,
        which is how ROMIO amortizes opens (``MPI_File_open`` is
        collective).
        """
        hints = hints if hints is not None else MPIIOHints()
        handle = None
        if comm.rank == 0:
            file = yield from fs.open(comm.global_rank, path, create=True)
            handle = cls(fs, file, hints)
        handle = yield from mpi.bcast(comm, 0, 128, handle)
        return handle

    @classmethod
    def open_independent(
        cls, client: int, fs: FileSystem, path: str, hints: Optional[MPIIOHints] = None
    ):
        """Process fragment: open from a single process (COMM_SELF style)."""
        hints = hints if hints is not None else MPIIOHints()
        file = yield from fs.open(client, path, create=True)
        return cls(fs, file, hints)

    # -- independent writes ----------------------------------------------------
    def write_at(self, client: int, offset: int, nbytes: int, data: Optional[bytes] = None):
        """Process fragment: contiguous write + optional sync."""
        yield from self.fs.write(client, self.file, offset, nbytes, data)
        if self.hints.sync_after_write:
            yield from self.fs.sync(client, self.file)

    def write_at_list(
        self,
        client: int,
        regions: Sequence[Region],
        datas: Optional[Sequence[Optional[bytes]]] = None,
        method: Optional[str] = None,
    ):
        """Process fragment: independent noncontiguous write + optional sync.

        ``method`` overrides the hinted individual method for this one call
        (per-query adaptive runs mix methods within a write group).
        """
        if regions:
            method = method if method is not None else self.hints.ind_wr_method
            if method == IND_POSIX:
                yield from posix_write(self.fs, client, self.file, regions, datas)
            elif method == IND_LIST:
                yield from listio_write(self.fs, client, self.file, regions, datas)
            elif method == IND_SIEVE:
                yield from datasieve_write(
                    self.fs, client, self.file, regions, datas,
                    buffer_size=self.hints.cb_buffer_size,
                )
            else:  # pragma: no cover - guarded by MPIIOHints validation
                raise ValueError(f"unknown ind_wr_method {method!r}")
        if self.hints.sync_after_write:
            yield from self.fs.sync(client, self.file)

    def write_view(
        self,
        client: int,
        view: Datatype,
        view_offset: int,
        nbytes: int,
        data: Optional[bytes] = None,
    ):
        """Process fragment: independent write through a file view."""
        regions = tile_view(view, view_offset, nbytes)
        datas = None
        if data is not None:
            datas = []
            cursor = 0
            for _, length in regions:
                datas.append(data[cursor : cursor + length])
                cursor += length
        yield from self.write_at_list(client, regions, datas)

    # -- collective write ----------------------------------------------------------
    def write_at_all(
        self,
        comm,
        regions: Sequence[Region],
        datas: Optional[Sequence[Optional[bytes]]] = None,
    ):
        """Process fragment: collective two-phase write + optional sync.

        Must be entered by every rank of ``comm`` (pass empty ``regions``
        on ranks with no data).
        """
        yield from two_phase_write_all(
            comm, self.fs, self.file, regions, datas, self.hints
        )
        if self.hints.sync_after_write:
            yield from self.sync_collective(comm)

    # -- independent reads ---------------------------------------------------
    def read_at(self, client: int, offset: int, nbytes: int):
        """Process fragment: contiguous read; returns bytes when stored."""
        data = yield from self.fs.read(client, self.file, offset, nbytes)
        return data

    def read_at_list(
        self,
        client: int,
        regions: Sequence[Region],
        method: Optional[str] = None,
    ):
        """Process fragment: independent noncontiguous read.

        The method (POSIX / list I/O / data sieving) follows the write-side
        hint unless overridden per call.  No sync: reads leave no dirty
        state behind.  Returns the per-region bytes when the store keeps
        data, else ``None``.
        """
        if not regions:
            return []
        method = method if method is not None else self.hints.ind_wr_method
        if method == IND_POSIX:
            result = yield from posix_read(self.fs, client, self.file, regions)
        elif method == IND_LIST:
            result = yield from list_read(self.fs, client, self.file, regions)
        elif method == IND_SIEVE:
            result = yield from datasieve_read(
                self.fs, client, self.file, regions,
                buffer_size=self.hints.cb_buffer_size,
            )
        else:  # pragma: no cover - guarded by MPIIOHints validation
            raise ValueError(f"unknown ind_wr_method {method!r}")
        return result

    # -- collective read -----------------------------------------------------
    def read_at_all(
        self,
        comm,
        regions: Sequence[Region],
    ):
        """Process fragment: collective two-phase read.

        Must be entered by every rank of ``comm`` (pass empty ``regions``
        on ranks with no data to fetch).
        """
        result = yield from two_phase_read_all(
            comm, self.fs, self.file, regions, self.hints
        )
        return result

    # -- flushing ----------------------------------------------------------------
    def sync(self, client: int):
        """Process fragment: independent flush (every server, in parallel)."""
        yield from self.fs.sync(client, self.file)

    def sync_collective(self, comm):
        """Process fragment: collective flush.

        ROMIO's generic flush has *every* process issue a server-side
        flush (``ADIOI_GEN_Flush`` calls the file-system flush from each
        rank); with N ranks over S servers that is N flush requests queued
        at every server — one of the hidden costs of the collective path
        the paper's WW-Coll measurements absorb.  A barrier closes the
        operation so no rank returns before the data is stable.
        """
        yield from self.fs.sync(comm.global_rank, self.file)
        yield from mpi.barrier(comm)
