"""MPI derived datatypes with flattening (ROMIO's ADIOI_Flatten analogue).

A datatype describes a byte-access pattern.  Flattening turns any type tree
into an ordered list of ``(displacement, length)`` pairs — the representation
both the list-I/O path and file views consume.  ROMIO implements exactly this
"datatype flattening system ... used to support list I/O for PVFS2"
(paper Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

FlatRegion = Tuple[int, int]  # (displacement, length)


class Datatype:
    """Base class; subclasses implement ``flatten`` / ``extent`` / ``size``."""

    def flatten(self) -> List[FlatRegion]:
        """Ordered (displacement, length) pairs; adjacent pairs coalesced."""
        raise NotImplementedError

    @property
    def extent(self) -> int:
        """Span from first to last byte (incl. trailing holes for vectors)."""
        raise NotImplementedError

    @property
    def size(self) -> int:
        """Number of significant bytes."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{self.__class__.__name__} size={self.size} extent={self.extent}>"


def _coalesce(regions: Sequence[FlatRegion]) -> List[FlatRegion]:
    """Merge adjacent regions; drop zero-length ones."""
    out: List[FlatRegion] = []
    for disp, length in regions:
        if length == 0:
            continue
        if length < 0:
            raise ValueError("region length must be non-negative")
        if out and out[-1][0] + out[-1][1] == disp:
            out[-1] = (out[-1][0], out[-1][1] + length)
        else:
            out.append((disp, length))
    return out


@dataclass(frozen=True)
class Bytes(Datatype):
    """A contiguous run of ``count`` bytes (the elementary type)."""

    count: int

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("count must be non-negative")

    def flatten(self) -> List[FlatRegion]:
        return [(0, self.count)] if self.count else []

    @property
    def extent(self) -> int:
        return self.count

    @property
    def size(self) -> int:
        return self.count


@dataclass(frozen=True)
class Contiguous(Datatype):
    """``count`` back-to-back copies of ``base``."""

    count: int
    base: Datatype

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("count must be non-negative")

    def flatten(self) -> List[FlatRegion]:
        base_flat = self.base.flatten()
        stride = self.base.extent
        return _coalesce(
            (disp + i * stride, length)
            for i in range(self.count)
            for disp, length in base_flat
        )

    @property
    def extent(self) -> int:
        return self.count * self.base.extent

    @property
    def size(self) -> int:
        return self.count * self.base.size


@dataclass(frozen=True)
class Vector(Datatype):
    """``count`` blocks of ``blocklength`` base items, ``stride`` apart.

    ``stride`` is in units of the base extent (like ``MPI_Type_vector``).
    """

    count: int
    blocklength: int
    stride: int
    base: Datatype

    def __post_init__(self) -> None:
        if self.count < 0 or self.blocklength < 0:
            raise ValueError("count and blocklength must be non-negative")

    def flatten(self) -> List[FlatRegion]:
        unit = self.base.extent
        block = Contiguous(self.blocklength, self.base).flatten()
        return _coalesce(
            (disp + i * self.stride * unit, length)
            for i in range(self.count)
            for disp, length in block
        )

    @property
    def extent(self) -> int:
        if self.count == 0:
            return 0
        unit = self.base.extent
        return ((self.count - 1) * self.stride + self.blocklength) * unit

    @property
    def size(self) -> int:
        return self.count * self.blocklength * self.base.size


@dataclass(frozen=True)
class Hindexed(Datatype):
    """Blocks at explicit byte displacements (``MPI_Type_create_hindexed``)."""

    blocklengths: Tuple[int, ...]
    displacements: Tuple[int, ...]
    base: Datatype

    def __post_init__(self) -> None:
        if len(self.blocklengths) != len(self.displacements):
            raise ValueError("blocklengths and displacements must align")

    @classmethod
    def of_bytes(
        cls, regions: Sequence[FlatRegion]
    ) -> "Hindexed":
        """Convenience: an hindexed-of-bytes type from (offset, length)s."""
        lengths = tuple(length for _, length in regions)
        disps = tuple(offset for offset, _ in regions)
        return cls(lengths, disps, Bytes(1))

    def flatten(self) -> List[FlatRegion]:
        base_flat = self.base.flatten()
        unit = self.base.extent
        regions: List[FlatRegion] = []
        for blocklen, disp in zip(self.blocklengths, self.displacements):
            for i in range(blocklen):
                for bdisp, blen in base_flat:
                    regions.append((disp + i * unit + bdisp, blen))
        # Displacements may be unsorted; preserve order (MPI does) but
        # coalesce adjacency.
        return _coalesce(regions)

    @property
    def extent(self) -> int:
        if not self.blocklengths:
            return 0
        unit = self.base.extent
        return max(
            disp + blocklen * unit
            for blocklen, disp in zip(self.blocklengths, self.displacements)
        ) - min(self.displacements)

    @property
    def size(self) -> int:
        return sum(self.blocklengths) * self.base.size


@dataclass(frozen=True)
class Struct(Datatype):
    """Heterogeneous fields at byte displacements (``MPI_Type_create_struct``)."""

    fields: Tuple[Tuple[int, Datatype], ...]  # (displacement, type)

    def flatten(self) -> List[FlatRegion]:
        regions: List[FlatRegion] = []
        for disp, dtype in self.fields:
            for fdisp, flen in dtype.flatten():
                regions.append((disp + fdisp, flen))
        return _coalesce(regions)

    @property
    def extent(self) -> int:
        if not self.fields:
            return 0
        return max(disp + t.extent for disp, t in self.fields) - min(
            disp for disp, _ in self.fields
        )

    @property
    def size(self) -> int:
        return sum(t.size for _, t in self.fields)


def tile_view(
    view: Datatype, view_offset: int, nbytes: int
) -> List[FlatRegion]:
    """Absolute file regions for writing ``nbytes`` through a file view.

    The view's flattened pattern repeats every ``extent`` bytes starting at
    ``view_offset`` (the MPI-IO displacement); successive significant bytes
    of the write land in successive significant bytes of the tiled pattern.
    """
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    pattern = view.flatten()
    if not pattern:
        if nbytes:
            raise ValueError("cannot write through an empty view")
        return []
    extent = view.extent
    out: List[FlatRegion] = []
    remaining = nbytes
    tile = 0
    while remaining > 0:
        base = view_offset + tile * extent
        for disp, length in pattern:
            take = min(length, remaining)
            out.append((base + disp, take))
            remaining -= take
            if remaining == 0:
                break
        tile += 1
    return _coalesce(out)
