"""Independent (non-collective) noncontiguous write methods.

Three ways to push an (offset, length) list to the file system from a single
process, mirroring the paper's Section 2.3:

* **POSIX** — ROMIO's unoptimized generic path: every contiguous region is
  its own client→server round trip (lseek+write equivalent), issued
  sequentially.  "The POSIX I/O method is the MPI_Write() call without
  optimization."
* **List I/O** — PVFS2-native: regions are shipped in batched offset/length
  lists (up to 64 per wire request), amortizing per-request overhead
  (Ching et al., "Noncontiguous I/O through PVFS", Cluster 2002).
* **Data sieving** — read-modify-write of the covering extent in buffer-size
  chunks (ROMIO's generic fallback; included for ablations — it needs
  atomicity and is a poor fit for interleaved writers, which is why the
  paper's strategies don't use it).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..pvfs.filesystem import FileSystem, PVFSFile

Region = Tuple[int, int]


def posix_write(
    fs: FileSystem,
    client: int,
    file: PVFSFile,
    regions: Sequence[Region],
    datas: Optional[Sequence[Optional[bytes]]] = None,
):
    """Process fragment: one independent contiguous write per region."""
    for idx, (offset, length) in enumerate(regions):
        data = datas[idx] if datas is not None else None
        yield from fs.write(client, file, offset, length, data)


def listio_write(
    fs: FileSystem,
    client: int,
    file: PVFSFile,
    regions: Sequence[Region],
    datas: Optional[Sequence[Optional[bytes]]] = None,
):
    """Process fragment: a single list-I/O request batch for all regions."""
    yield from fs.write_list(client, file, regions, datas)


def datasieve_write(
    fs: FileSystem,
    client: int,
    file: PVFSFile,
    regions: Sequence[Region],
    datas: Optional[Sequence[Optional[bytes]]] = None,
    buffer_size: int = 4 * 1024 * 1024,
):
    """Process fragment: data-sieving write (read window, merge, write back).

    Only safe when no other process writes the covering extent concurrently;
    the caller is responsible for that (as ROMIO is, via file locking on
    file systems that support it — PVFS2 does not, which is why this method
    exists here only for ablation experiments).
    """
    if not regions:
        return
    ordered = sorted(regions)
    datamap = dict()
    if datas is not None:
        datamap = {region: datas[i] for i, region in enumerate(regions)}

    lo = ordered[0][0]
    hi = max(offset + length for offset, length in ordered)
    window_start = lo
    while window_start < hi:
        window_end = min(window_start + buffer_size, hi)
        inside = [
            (offset, length)
            for offset, length in ordered
            if offset < window_end and offset + length > window_start
        ]
        if inside:
            run_lo = max(min(o for o, _ in inside), window_start)
            run_hi = min(max(o + l for o, l in inside), window_end)
            # Read-modify-write of the covering run.  The read is skipped on
            # a write-once store when the run has no previously written
            # bytes; we model the worst case (ROMIO always reads unless the
            # regions tile the window exactly).
            covered = sum(
                min(o + l, run_hi) - max(o, window_start)
                for o, l in inside
                if max(o, window_start) < min(o + l, run_hi)
            )
            if covered < run_hi - run_lo:
                yield from fs.read(client, file, run_lo, run_hi - run_lo)
            # The merged buffer goes back as one contiguous write; without
            # stored data we only account for timing and extents, so issue
            # the regions as separately recorded writes grouped in one wire
            # request (no read-back content to merge).
            chunk_regions: List[Region] = []
            chunk_datas: List[Optional[bytes]] = []
            for offset, length in inside:
                clipped_lo = max(offset, window_start)
                clipped_hi = min(offset + length, window_end)
                chunk_regions.append((clipped_lo, clipped_hi - clipped_lo))
                data = datamap.get((offset, length))
                if data is not None:
                    data = data[clipped_lo - offset : clipped_hi - offset]
                chunk_datas.append(data)
            yield from fs.write_list(client, file, chunk_regions, chunk_datas)
        window_start = window_end
