"""Independent (non-collective) noncontiguous access methods.

Three ways to push an (offset, length) list to the file system from a single
process, mirroring the paper's Section 2.3:

* **POSIX** — ROMIO's unoptimized generic path: every contiguous region is
  its own client→server round trip (lseek+write equivalent), issued
  sequentially.  "The POSIX I/O method is the MPI_Write() call without
  optimization."
* **List I/O** — PVFS2-native: regions are shipped in batched offset/length
  lists (up to 64 per wire request), amortizing per-request overhead
  (Ching et al., "Noncontiguous I/O through PVFS", Cluster 2002).
* **Data sieving** — read-modify-write of the covering extent in buffer-size
  chunks (ROMIO's generic fallback; included for ablations — it needs
  atomicity and is a poor fit for interleaved writers, which is why the
  paper's strategies don't use it).

Each write method has a read twin (``posix_read`` / ``list_read`` /
``datasieve_read``) following Thakur et al.'s read-side algorithms: sieving
reads the covering extent once and slices the requested regions out of it —
no atomicity concern, so for reads it is the *recommended* ROMIO path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..pvfs.filesystem import FileSystem, PVFSFile

Region = Tuple[int, int]

# One staged piece: (clipped offset, clipped end, input position, payload).
_Piece = Tuple[int, int, int, Optional[bytes]]


def posix_write(
    fs: FileSystem,
    client: int,
    file: PVFSFile,
    regions: Sequence[Region],
    datas: Optional[Sequence[Optional[bytes]]] = None,
):
    """Process fragment: one independent contiguous write per region."""
    m = fs.env.metrics
    if m.enabled:
        m.inc("mpiio.posix_writes", float(len(regions)), rank=client)
    for idx, (offset, length) in enumerate(regions):
        data = datas[idx] if datas is not None else None
        yield from fs.write(client, file, offset, length, data)


def listio_write(
    fs: FileSystem,
    client: int,
    file: PVFSFile,
    regions: Sequence[Region],
    datas: Optional[Sequence[Optional[bytes]]] = None,
):
    """Process fragment: a single list-I/O request batch for all regions."""
    m = fs.env.metrics
    if m.enabled:
        m.inc("mpiio.list_writes", 1.0, rank=client)
        m.inc("mpiio.list_regions", float(len(regions)), rank=client)
    yield from fs.write_list(client, file, regions, datas)


def datasieve_write(
    fs: FileSystem,
    client: int,
    file: PVFSFile,
    regions: Sequence[Region],
    datas: Optional[Sequence[Optional[bytes]]] = None,
    buffer_size: int = 4 * 1024 * 1024,
):
    """Process fragment: data-sieving write (read window, merge, write back).

    Only safe when no other process writes the covering extent concurrently;
    the caller is responsible for that (as ROMIO is, via file locking on
    file systems that support it — PVFS2 does not, which is why this method
    exists here only for ablation experiments).
    """
    if not regions:
        return
    # Pair each region with its payload *by position* before sorting:
    # duplicate (offset, length) regions are legal and may carry different
    # data, so a region-keyed dict would replay the wrong payload.  The
    # input position doubles as the sieve buffer's merge order — like
    # ROMIO's staging buffer, a later region overwrites an earlier one
    # where they overlap.
    ordered = sorted(
        (
            (offset, length, i, datas[i] if datas is not None else None)
            for i, (offset, length) in enumerate(regions)
        ),
        key=lambda piece: (piece[0], piece[1], piece[2]),
    )

    lo = ordered[0][0]
    hi = max(offset + length for offset, length, _, _ in ordered)
    window_start = lo
    while window_start < hi:
        window_end = min(window_start + buffer_size, hi)
        pieces: List[_Piece] = []
        for offset, length, idx, data in ordered:
            c_lo = max(offset, window_start)
            c_hi = min(offset + length, window_end)
            if c_lo >= c_hi:
                continue
            if data is not None:
                data = data[c_lo - offset : c_hi - offset]
            pieces.append((c_lo, c_hi, idx, data))
        if pieces:
            runs = _merge_into_runs(pieces)
            run_lo = runs[0][0]
            run_hi = runs[-1][1]
            # Read-modify-write of the covering run.  The read is skipped on
            # a write-once store when the run has no previously written
            # bytes; we model the worst case (ROMIO always reads unless the
            # regions tile the window exactly).  ``covered`` sums the
            # *merged* runs — summing raw region lengths double-counts
            # overlaps and wrongly skips the pre-read.
            covered = sum(r_hi - r_lo for r_lo, r_hi, _ in runs)
            if covered < run_hi - run_lo:
                m = fs.env.metrics
                if m.enabled:
                    m.inc(
                        "mpiio.sieve_preread_bytes",
                        float(run_hi - run_lo),
                        rank=client,
                    )
                yield from fs.read(client, file, run_lo, run_hi - run_lo)
            # Write back the merged staging buffer: one region per disjoint
            # run (overlapping pieces were already merged in input order),
            # so the write-once store sees each byte exactly once.
            chunk_regions: List[Region] = [(r_lo, r_hi - r_lo) for r_lo, r_hi, _ in runs]
            chunk_datas: Optional[List[Optional[bytes]]] = None
            if datas is not None:
                chunk_datas = [
                    bytes(content) if content is not None else None
                    for _, _, content in runs
                ]
            yield from fs.write_list(client, file, chunk_regions, chunk_datas)
        window_start = window_end


def posix_read(
    fs: FileSystem,
    client: int,
    file: PVFSFile,
    regions: Sequence[Region],
):
    """Process fragment: one independent contiguous read per region.

    Returns the per-region bytes (zero-filled over holes) when the store
    keeps data, else ``None``.
    """
    m = fs.env.metrics
    if m.enabled:
        m.inc("mpiio.posix_reads", float(len(regions)), rank=client)
    out: List[Optional[bytes]] = []
    for offset, length in regions:
        data = yield from fs.read(client, file, offset, length)
        out.append(data)
    if any(data is None for data in out):
        return None
    return out


def list_read(
    fs: FileSystem,
    client: int,
    file: PVFSFile,
    regions: Sequence[Region],
):
    """Process fragment: a single list-I/O read batch for all regions."""
    m = fs.env.metrics
    if m.enabled:
        m.inc("mpiio.list_reads", 1.0, rank=client)
        m.inc("mpiio.list_read_regions", float(len(regions)), rank=client)
    result = yield from fs.read_list(client, file, regions)
    return result


def datasieve_read(
    fs: FileSystem,
    client: int,
    file: PVFSFile,
    regions: Sequence[Region],
    buffer_size: int = 4 * 1024 * 1024,
):
    """Process fragment: data-sieving read (read covering extent, slice).

    One large contiguous read per ``buffer_size`` window covers every
    requested region inside it; the per-region bytes are sliced out of the
    staging buffer.  Holes between regions are read too (the sieving cost
    the method trades for fewer requests) and counted in
    ``mpiio.sieve_read_bytes``.  Duplicate and overlapping regions are
    legal — each just slices its own view of the buffer.
    """
    if not regions:
        return []
    # Sort by (offset, length, input position); the input position keys the
    # result list so duplicates land back in their own slots.
    ordered = sorted(
        ((offset, length, i) for i, (offset, length) in enumerate(regions)),
        key=lambda piece: (piece[0], piece[1], piece[2]),
    )
    lo = ordered[0][0]
    hi = max(offset + length for offset, length, _ in ordered)
    parts: Dict[int, List[bytes]] = {i: [] for i in range(len(regions))}
    have_data = True
    window_start = lo
    while window_start < hi:
        window_end = min(window_start + buffer_size, hi)
        pieces: List[Tuple[int, int, int]] = []
        for offset, length, idx in ordered:
            c_lo = max(offset, window_start)
            c_hi = min(offset + length, window_end)
            if c_lo >= c_hi:
                continue
            pieces.append((c_lo, c_hi, idx))
        if pieces:
            span_lo = pieces[0][0]
            span_hi = max(c_hi for _, c_hi, _ in pieces)
            m = fs.env.metrics
            if m.enabled:
                m.inc(
                    "mpiio.sieve_read_bytes",
                    float(span_hi - span_lo),
                    rank=client,
                )
            buf = yield from fs.read(client, file, span_lo, span_hi - span_lo)
            if buf is None:
                have_data = False
            else:
                for c_lo, c_hi, idx in pieces:
                    parts[idx].append(bytes(buf[c_lo - span_lo : c_hi - span_lo]))
        window_start = window_end
    if not have_data:
        return None
    return [b"".join(parts[i]) for i in range(len(regions))]


def _merge_into_runs(
    pieces: Sequence[_Piece],
) -> List[Tuple[int, int, Optional[bytearray]]]:
    """Merge offset-sorted clipped pieces into disjoint contiguous runs.

    Strictly-overlapping pieces join one run; merely-adjacent pieces stay
    separate so extent bookkeeping matches the individual methods.  Within
    a run, payloads apply in input order (highest input index wins), the
    way successive writes land in a data-sieving staging buffer.
    """
    runs: List[Tuple[int, int, List[_Piece]]] = []
    for piece in pieces:
        c_lo, c_hi = piece[0], piece[1]
        if runs and c_lo < runs[-1][1]:
            last_lo, last_hi, members = runs[-1]
            runs[-1] = (last_lo, max(last_hi, c_hi), members)
            members.append(piece)
        else:
            runs.append((c_lo, c_hi, [piece]))

    out: List[Tuple[int, int, Optional[bytearray]]] = []
    for r_lo, r_hi, members in runs:
        content: Optional[bytearray] = None
        if any(m[3] is not None for m in members):
            content = bytearray(r_hi - r_lo)
            for c_lo, c_hi, _, data in sorted(members, key=lambda m: m[2]):
                content[c_lo - r_lo : c_hi - r_lo] = (
                    data if data is not None else bytes(c_hi - c_lo)
                )
        out.append((r_lo, r_hi, content))
    return out
