"""MPI-IO hints (the ``MPI_Info`` knobs ROMIO understands, plus ours).

S3aSim exposes "MPI-IO hints" as one of its input parameters; these control
the collective-buffering geometry and which individual noncontiguous method
``write_at_list`` uses.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

KIB = 1024
MIB = 1024 * 1024

# Individual (independent) noncontiguous write methods.
IND_POSIX = "posix"  # one OS write per contiguous region (unoptimized)
IND_LIST = "list"  # PVFS2-native list I/O
IND_SIEVE = "sieve"  # data sieving read-modify-write

_VALID_IND = (IND_POSIX, IND_LIST, IND_SIEVE)


@dataclass(frozen=True)
class MPIIOHints:
    """Hint set attached to an open MPI-IO file.

    Attributes
    ----------
    cb_nodes:
        Number of collective-buffering aggregators (``cb_nodes``); ``None``
        means one per communicator rank up to the server count — ROMIO's
        default on PVFS.
    cb_buffer_size:
        Per-aggregator staging buffer per two-phase round (ROMIO default
        4 MiB).
    ind_wr_method:
        Which method independent noncontiguous writes use.
    sync_after_write:
        Call file sync after every write, as the paper's experiments do
        ("MPI_File_sync() was always called immediately after every
        MPI_File_write() or MPI_File_write_all()").
    collective_final_barrier:
        Whether write_at_all ends with a barrier so every rank returns only
        once all data is on disk (matching pioBLAST's usage).
    """

    cb_nodes: Optional[int] = None
    cb_buffer_size: int = 4 * MIB
    ind_wr_method: str = IND_LIST
    sync_after_write: bool = True
    collective_final_barrier: bool = True

    def __post_init__(self) -> None:
        if self.cb_nodes is not None and self.cb_nodes <= 0:
            raise ValueError("cb_nodes must be positive or None")
        if self.cb_buffer_size <= 0:
            raise ValueError("cb_buffer_size must be positive")
        if self.ind_wr_method not in _VALID_IND:
            raise ValueError(
                f"ind_wr_method must be one of {_VALID_IND}, got {self.ind_wr_method!r}"
            )

    def with_(self, **kwargs) -> "MPIIOHints":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)

    def effective_cb_nodes(self, comm_size: int, nservers: int) -> int:
        """Resolve ``cb_nodes`` against the communicator and server farm."""
        if self.cb_nodes is not None:
            return min(self.cb_nodes, comm_size)
        return max(1, min(comm_size, nservers))
