"""Simulated MPI-IO (ROMIO analogue): file views, independent noncontiguous
reads and writes (POSIX / list I/O / data sieving), and two-phase collective
reads and writes."""

from .datatypes import (
    Bytes,
    Contiguous,
    Datatype,
    FlatRegion,
    Hindexed,
    Struct,
    Vector,
    tile_view,
)
from .file import MPIIOFile
from .hints import IND_LIST, IND_POSIX, IND_SIEVE, MPIIOHints
from .noncontig import (
    datasieve_read,
    datasieve_write,
    list_read,
    listio_write,
    posix_read,
    posix_write,
)
from .twophase import two_phase_read_all, two_phase_write_all

__all__ = [
    "Bytes",
    "Contiguous",
    "Datatype",
    "FlatRegion",
    "Hindexed",
    "IND_LIST",
    "IND_POSIX",
    "IND_SIEVE",
    "MPIIOFile",
    "MPIIOHints",
    "Struct",
    "Vector",
    "datasieve_read",
    "datasieve_write",
    "list_read",
    "listio_write",
    "posix_read",
    "posix_write",
    "tile_view",
    "two_phase_read_all",
    "two_phase_write_all",
]
