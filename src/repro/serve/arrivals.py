"""Seeded open-loop arrival generators and the kernel injection process.

Three presets cover the service regimes the I/O strategies compete in:

* ``poisson`` — memoryless arrivals at ``rate`` queries/second, the
  classic open-loop baseline.
* ``bursty`` — a two-state Markov-modulated Poisson process: exponential
  on/off phases (mean ``burst_on_s`` / ``burst_off_s``); while *on*, the
  instantaneous rate is scaled so the long-run mean stays ``rate``.
* ``diurnal`` — a sinusoidally modulated rate
  ``rate * (1 + amplitude * sin(2*pi*t / period_s))``, sampled exactly via
  Lewis-Shedler thinning against the peak rate.

Arrival times are produced lazily (one draw per arrival, never a
pre-materialized schedule), so a run can offer ~1M queries without holding
them; all draws come from the path-addressed stream factory under
``("arrivals",)`` so batch runs — which never touch that path — stay
bit-identical to the seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from ..sim.rng import RandomStreams

#: The supported arrival processes, in documentation order.
ARRIVAL_PROCESSES: Tuple[str, ...] = ("poisson", "bursty", "diurnal")

#: What to do with an arrival that finds the pending queue full:
#: ``reject`` turns it away; ``shed`` drops the youngest not-yet-started
#: non-priority query in its favour (falling back to reject when every
#: pending query is already running or priority).
ADMISSION_POLICIES: Tuple[str, ...] = ("reject", "shed")


@dataclass(frozen=True)
class ArrivalConfig:
    """One run's open-loop arrival model and admission policy."""

    #: Arrival process preset (see :data:`ARRIVAL_PROCESSES`).
    process: str = "poisson"
    #: Long-run mean offered load, queries per (simulated) second.
    rate: float = 20.0
    #: Stop offering new arrivals after this much simulated time; ``None``
    #: offers until ``nqueries`` arrivals have been generated.
    horizon_s: Optional[float] = None

    #: Bursty preset: mean lengths of the on and off phases.
    burst_on_s: float = 4.0
    burst_off_s: float = 4.0

    #: Diurnal preset: modulation period and relative amplitude (0..1).
    period_s: float = 120.0
    amplitude: float = 0.8

    #: Admission control: maximum admitted-but-not-yet-durable queries.
    max_pending: int = 64
    #: Over-limit behaviour (see :data:`ADMISSION_POLICIES`).
    policy: str = "reject"
    #: Fraction of arrivals flagged priority: they jump the unassigned
    #: task queue (except under WW-Coll, whose group gate requires FIFO
    #: query order) and are never shed.
    priority_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.process not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"arrival process must be one of {ARRIVAL_PROCESSES}, "
                f"got {self.process!r}"
            )
        if not self.rate > 0:
            raise ValueError(f"arrival rate must be positive, got {self.rate}")
        if self.horizon_s is not None and self.horizon_s < 0:
            raise ValueError(f"horizon_s must be >= 0, got {self.horizon_s}")
        if not self.burst_on_s > 0:
            raise ValueError(f"burst_on_s must be positive, got {self.burst_on_s}")
        if self.burst_off_s < 0:
            raise ValueError(f"burst_off_s must be >= 0, got {self.burst_off_s}")
        if not self.period_s > 0:
            raise ValueError(f"period_s must be positive, got {self.period_s}")
        if not 0.0 <= self.amplitude <= 1.0:
            raise ValueError(f"amplitude must be in [0, 1], got {self.amplitude}")
        if self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {self.max_pending}")
        if self.policy not in ADMISSION_POLICIES:
            raise ValueError(
                f"admission policy must be one of {ADMISSION_POLICIES}, "
                f"got {self.policy!r}"
            )
        if not 0.0 <= self.priority_fraction <= 1.0:
            raise ValueError(
                f"priority_fraction must be in [0, 1], "
                f"got {self.priority_fraction}"
            )


def _poisson_times(cfg: ArrivalConfig, rng) -> Iterator[float]:
    scale = 1.0 / cfg.rate
    t = 0.0
    while True:
        t += rng.exponential(scale)
        yield t


def _bursty_times(cfg: ArrivalConfig, rng) -> Iterator[float]:
    # The on-phase rate is inflated by the duty cycle so the long-run mean
    # over on+off phases is exactly ``rate``.
    on_rate = cfg.rate * (cfg.burst_on_s + cfg.burst_off_s) / cfg.burst_on_s
    scale = 1.0 / on_rate
    t = 0.0
    while True:
        on_end = t + rng.exponential(cfg.burst_on_s)
        nxt = t + rng.exponential(scale)
        while nxt < on_end:
            yield nxt
            nxt += rng.exponential(scale)
        t = on_end + rng.exponential(cfg.burst_off_s)


def _diurnal_times(cfg: ArrivalConfig, rng) -> Iterator[float]:
    # Lewis-Shedler thinning: candidates at the peak rate, each kept with
    # probability lambda(t) / lambda_max.  Exact for any bounded rate.
    lam_max = cfg.rate * (1.0 + cfg.amplitude)
    scale = 1.0 / lam_max
    two_pi = 2.0 * math.pi
    t = 0.0
    while True:
        t += rng.exponential(scale)
        lam = cfg.rate * (
            1.0 + cfg.amplitude * math.sin(two_pi * t / cfg.period_s)
        )
        if rng.random() * lam_max <= lam:
            yield t


_GENERATORS = {
    "poisson": _poisson_times,
    "bursty": _bursty_times,
    "diurnal": _diurnal_times,
}


def arrival_times(
    cfg: ArrivalConfig, streams: RandomStreams, limit: int
) -> Iterator[Tuple[float, bool]]:
    """Lazily yield ``(time, priority)`` pairs for at most ``limit`` arrivals.

    Deterministic in (seed, config): the times come from the
    ``("arrivals", process)`` stream, the priority coin from
    ``("arrivals", "priority")`` — one draw per arrival, in arrival order.
    Stops at ``cfg.horizon_s`` (when set) or after ``limit`` arrivals,
    whichever comes first.
    """
    spawn = streams.spawn("arrivals")
    rng = spawn.stream(cfg.process)
    priority_rng = (
        spawn.stream("priority") if cfg.priority_fraction > 0 else None
    )
    produced = 0
    for t in _GENERATORS[cfg.process](cfg, rng):
        if cfg.horizon_s is not None and t > cfg.horizon_s:
            return
        if produced >= limit:
            return
        produced += 1
        priority = (
            priority_rng is not None
            and float(priority_rng.random()) < cfg.priority_fraction
        )
        yield float(t), priority


def arrival_process(env, master, cfg, streams: RandomStreams, limit: int):
    """Kernel process: inject arrivals into the running master.

    ``master`` needs ``on_arrival(priority)`` and ``arrivals_finished()``;
    both are synchronous admission decisions taken at the arrival instant
    (open loop: a rejected arrival never retries).
    """
    for t, priority in arrival_times(cfg, streams, limit):
        if t > env.now:
            yield env.timeout(t - env.now)
        master.on_arrival(priority)
    master.arrivals_finished()
