"""Serve-mode bookkeeping shared by the master and the app runner.

:class:`ServeState` holds everything the open-loop service layer adds on
top of the batch master: admission counters, per-query arrival stamps, the
priority set, the outstanding-write map (worker-writing durability), and
the completion-latency histogram.  It is pure bookkeeping — it schedules
nothing — so the master's event sequence with ``arrival=None`` is
untouched.

Sharded (multi-master) runs add two transfer counters: ``donated`` counts
queries this shard handed to a thief, ``stolen`` counts queries admitted
here on behalf of another shard.  A donated slot stays allocated in the
donor's offset ledger (as a zero-size block) but leaves its pending count,
so admission capacity is freed the moment the query ships.
"""

from __future__ import annotations

import math
from typing import Dict, Set

from ..obs.metrics import DurationHistogram, HistogramSummary
from .arrivals import ArrivalConfig


class ServeState:
    """Mutable service-layer state of one run's master."""

    __slots__ = (
        "cfg",
        "arrival_t",
        "priority",
        "started",
        "outstanding",
        "offered",
        "admitted",
        "rejected",
        "shed",
        "completed",
        "donated",
        "stolen",
        "donated_q",
        "content",
        "arrivals_done",
        "latency",
    )

    def __init__(self, cfg: ArrivalConfig) -> None:
        self.cfg = cfg
        #: query id -> arrival time of its current owner (shed slots are
        #: re-stamped when a new arrival takes them over).
        self.arrival_t: Dict[int, float] = {}
        self.priority: Set[int] = set()
        #: Queries with at least one task already assigned (unsheddable).
        self.started: Set[int] = set()
        #: query id -> fragments issued but not yet acknowledged durable
        #: (worker-writing strategies only).
        self.outstanding: Dict[int, int] = {}
        self.offered = 0
        self.admitted = 0  # == next query id; slots, not admission events
        self.rejected = 0
        self.shed = 0
        self.completed = 0
        #: Sharded runs: queries shipped to / received from peer masters.
        self.donated = 0
        self.stolen = 0
        #: Local slots whose query was donated away (ledger placeholders).
        self.donated_q: Set[int] = set()
        #: Local slot -> global content id (sharded runs; the workload is a
        #: pure function of the content id, which survives a donation).
        self.content: Dict[int, int] = {}
        self.arrivals_done = False
        self.latency = DurationHistogram("serve.latency_seconds", ())

    @property
    def pending(self) -> int:
        """Admitted queries not yet durable (the admission-bounded count)."""
        return self.admitted - self.completed - self.donated

    def latency_summary(self) -> HistogramSummary:
        h = self.latency
        return HistogramSummary(
            count=h.count,
            total=h.total,
            min=h.min if h.count else 0.0,
            max=h.max if h.count else 0.0,
            buckets=tuple(h.buckets),
        )

    def stats(self) -> Dict[str, float]:
        """The ``RunResult.serve_stats`` dictionary.

        With zero completions the latency fields are NaN, not 0.0 — a run
        cut off before its first durable query has *unknown* latency, and
        0.0 would be indistinguishable from a genuinely instant service.
        """
        summary = self.latency_summary()
        no_data = float("nan")
        stats = {
            "offered": float(self.offered),
            "admitted": float(self.admitted),
            "rejected": float(self.rejected),
            "shed": float(self.shed),
            "completed": float(self.completed),
            "pending": float(self.pending),
            "latency_mean_s": summary.mean if self.completed else no_data,
            "latency_p50_s": summary.quantile(0.50) if self.completed else no_data,
            "latency_p95_s": summary.quantile(0.95) if self.completed else no_data,
            "latency_p99_s": summary.quantile(0.99) if self.completed else no_data,
            "latency_max_s": summary.max if self.completed else no_data,
        }
        if self.donated or self.stolen:
            stats["donated"] = float(self.donated)
            stats["stolen"] = float(self.stolen)
        return stats


def format_latency(value: float) -> str:
    """CLI rendering of a latency stat: ``-`` when there is no data."""
    if isinstance(value, float) and math.isnan(value):
        return "-"
    return f"{value:.3f}"
