"""Serve-mode bookkeeping shared by the master and the app runner.

:class:`ServeState` holds everything the open-loop service layer adds on
top of the batch master: admission counters, per-query arrival stamps, the
priority set, the outstanding-write map (worker-writing durability), and
the completion-latency histogram.  It is pure bookkeeping — it schedules
nothing — so the master's event sequence with ``arrival=None`` is
untouched.
"""

from __future__ import annotations

from typing import Dict, Set

from ..obs.metrics import DurationHistogram, HistogramSummary
from .arrivals import ArrivalConfig


class ServeState:
    """Mutable service-layer state of one run's master."""

    __slots__ = (
        "cfg",
        "arrival_t",
        "priority",
        "started",
        "outstanding",
        "offered",
        "admitted",
        "rejected",
        "shed",
        "completed",
        "arrivals_done",
        "latency",
    )

    def __init__(self, cfg: ArrivalConfig) -> None:
        self.cfg = cfg
        #: query id -> arrival time of its current owner (shed slots are
        #: re-stamped when a new arrival takes them over).
        self.arrival_t: Dict[int, float] = {}
        self.priority: Set[int] = set()
        #: Queries with at least one task already assigned (unsheddable).
        self.started: Set[int] = set()
        #: query id -> fragments issued but not yet acknowledged durable
        #: (worker-writing strategies only).
        self.outstanding: Dict[int, int] = {}
        self.offered = 0
        self.admitted = 0  # == next query id; slots, not admission events
        self.rejected = 0
        self.shed = 0
        self.completed = 0
        self.arrivals_done = False
        self.latency = DurationHistogram("serve.latency_seconds", ())

    @property
    def pending(self) -> int:
        """Admitted queries not yet durable (the admission-bounded count)."""
        return self.admitted - self.completed

    def latency_summary(self) -> HistogramSummary:
        h = self.latency
        return HistogramSummary(
            count=h.count,
            total=h.total,
            min=h.min if h.count else 0.0,
            max=h.max if h.count else 0.0,
            buckets=tuple(h.buckets),
        )

    def stats(self) -> Dict[str, float]:
        """The ``RunResult.serve_stats`` dictionary."""
        summary = self.latency_summary()
        return {
            "offered": float(self.offered),
            "admitted": float(self.admitted),
            "rejected": float(self.rejected),
            "shed": float(self.shed),
            "completed": float(self.completed),
            "pending": float(self.pending),
            "latency_mean_s": summary.mean,
            "latency_p50_s": summary.quantile(0.50),
            "latency_p95_s": summary.quantile(0.95),
            "latency_p99_s": summary.quantile(0.99),
            "latency_max_s": summary.max,
        }
