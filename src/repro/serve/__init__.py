"""Online service mode: open-loop query arrivals (ROADMAP item 1).

Instead of the paper's closed batch (a fixed query list drained to
completion), :mod:`repro.serve` streams queries *into* a running master
from a seeded arrival process — Poisson, bursty (Markov-modulated on/off),
or diurnal — with admission control (bounded pending queue, reject/shed
policies, a priority lane) and per-query completion-latency tracking
(arrival → result durable on the PVFS volume).
"""

from .arrivals import (
    ADMISSION_POLICIES,
    ARRIVAL_PROCESSES,
    ArrivalConfig,
    arrival_process,
    arrival_times,
)
from .state import ServeState, format_latency

__all__ = [
    "ADMISSION_POLICIES",
    "ARRIVAL_PROCESSES",
    "ArrivalConfig",
    "ServeState",
    "arrival_process",
    "arrival_times",
    "format_latency",
]
