"""Machine presets: the paper's test environment and variations.

The paper ran on Sandia's Feynman cluster (Section 3.2): dual 2.0 GHz
Pentium-4 Xeon Europa nodes with 1 GB RDRAM, Myrinet-2000, RedHat
Enterprise Linux, and a 16-computer PVFS2 volume with 64 KiB strips
(1 MiB full stripe) where one server doubled as metadata server.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..mpi.network import KIB, MIB, NetworkConfig
from ..pvfs.disk import DiskModel
from ..pvfs.filesystem import PVFSConfig


@dataclass(frozen=True)
class ClusterPreset:
    """A named machine configuration."""

    name: str
    description: str
    network: NetworkConfig
    pvfs: PVFSConfig
    procs_per_node: int = 2

    def with_pvfs(self, **kwargs) -> "ClusterPreset":
        return replace(self, pvfs=replace(self.pvfs, **kwargs))

    def with_network(self, **kwargs) -> "ClusterPreset":
        return replace(self, network=replace(self.network, **kwargs))


def feynman() -> ClusterPreset:
    """The paper's environment (our calibrated stand-in)."""
    return ClusterPreset(
        name="feynman",
        description=(
            "Sandia Feynman / Europa nodes: dual 2.0 GHz Xeon, Myrinet-2000, "
            "16-server PVFS2 with 64 KiB strips"
        ),
        network=NetworkConfig.myrinet2000(),
        pvfs=PVFSConfig.feynman(),
        procs_per_node=2,
    )


def bigger_filesystem(nservers: int = 32) -> ClusterPreset:
    """The paper's conjecture: "A larger file system configuration with
    more I/O bandwidth may have provided more scalable I/O performance."
    """
    base = feynman()
    return replace(
        base,
        name=f"feynman-{nservers}srv",
        description=f"Feynman variant with {nservers} PVFS2 servers",
        pvfs=replace(base.pvfs, nservers=nservers),
    )


def cached_feynman() -> ClusterPreset:
    """Feynman with the server-side I/O stack a 2006 daemon actually ran:
    elevator disk scheduling plus a 4 MiB write-back buffer cache per I/O
    server — the configuration the scheduler × cache sweeps compare the
    bare-disk model against."""
    base = feynman()
    return replace(
        base,
        name="feynman-cached",
        description=(
            "Feynman with elevator disk scheduling and 4 MiB server "
            "write-back caches"
        ),
        pvfs=replace(base.pvfs, disk_sched="elevator", server_cache_B=4 * MIB),
    )


def replicated_feynman(replicas: int = 2) -> ClusterPreset:
    """Feynman with per-stripe replication on the PVFS2 volume.

    Every strip lives on ``replicas`` consecutive servers (rotated
    placement), writes complete when all live replicas ack, and a server
    outage degrades the volume instead of stalling it — the configuration
    the robustness benchmarks run ROADMAP's replication scale study on.
    """
    base = feynman()
    return replace(
        base,
        name="feynman-replicated",
        description=(
            f"Feynman with {replicas}-way per-stripe replication "
            "(degraded-mode I/O + background rebuild)"
        ),
        pvfs=replace(base.pvfs, replicas=replicas),
    )


def gigabit_ethernet_cluster() -> ClusterPreset:
    """A contemporary commodity alternative: GigE instead of Myrinet."""
    return ClusterPreset(
        name="gige",
        description="commodity cluster on gigabit ethernet",
        network=NetworkConfig(
            latency_s=50e-6, bandwidth_Bps=110 * MIB, eager_threshold_B=64 * KIB
        ),
        pvfs=replace(
            PVFSConfig.feynman(),
            network=NetworkConfig(latency_s=50e-6, bandwidth_Bps=110 * MIB),
        ),
        procs_per_node=2,
    )


def modern_nvme_cluster() -> ClusterPreset:
    """A forward-looking variant: fast network + low-latency storage — the
    future the paper argues I/O strategy will matter for."""
    return ClusterPreset(
        name="modern",
        description="fast-network, NVMe-like storage variant",
        network=NetworkConfig(latency_s=1.5e-6, bandwidth_Bps=3000 * MIB),
        pvfs=replace(
            PVFSConfig.feynman(),
            network=NetworkConfig(latency_s=1.5e-6, bandwidth_Bps=3000 * MIB),
            disk=DiskModel(
                op_overhead_s=3e-5,
                region_overhead_s=2e-6,
                seek_penalty_s=1e-5,
                bandwidth_Bps=2000 * MIB,
                sync_s=5e-5,
            ),
            client_pipeline_Bps=1500 * MIB,
        ),
        procs_per_node=8,
    )


PRESETS = {
    "feynman": feynman,
    "feynman-cached": cached_feynman,
    "feynman-replicated": replicated_feynman,
    "gige": gigabit_ethernet_cluster,
    "modern": modern_nvme_cluster,
}


def get_preset(name: str) -> ClusterPreset:
    try:
        return PRESETS[name]()
    except KeyError:
        raise ValueError(
            f"unknown cluster preset {name!r}; choose from {sorted(PRESETS)}"
        ) from None
