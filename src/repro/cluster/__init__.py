"""Cluster presets (Feynman and variants)."""

from .presets import (
    PRESETS,
    ClusterPreset,
    bigger_filesystem,
    cached_feynman,
    feynman,
    get_preset,
    gigabit_ethernet_cluster,
    modern_nvme_cluster,
)

__all__ = [
    "PRESETS",
    "ClusterPreset",
    "bigger_filesystem",
    "cached_feynman",
    "feynman",
    "get_preset",
    "gigabit_ethernet_cluster",
    "modern_nvme_cluster",
]
