"""Runtime cross-layer invariant checking (the ``--check`` machinery).

The simulation's correctness argument rests on a handful of conservation
and layout laws that every layer must uphold on every run:

* **MPI conservation** — every payload byte serialized onto a NIC is
  either received or accounted to a drop (the retransmission model resends
  it, paying TX again); every non-out-of-band message sent is delivered.
* **PVFS accounting** — per server, the bytes entering :class:`~repro.
  pvfs.server.IOServer` as writes equal the bytes the disk landed plus the
  write-back cache's remaining dirty extents plus the bytes the cache
  merged away (overlapping/duplicate regions fusing into one run), and the
  dirty-byte gauge matches the extent sum at every absorb and flush.
* **Offset-layout laws** — the placements :func:`~repro.core.offsets.
  merge_query` hands out tile ``[base, base + block)`` densely with no
  overlap, and consecutive query blocks abut exactly (the ledger law).
* **Trace well-formedness** — every interval closes, lies within the run,
  and no two intervals of one ``(rank, state)`` row overlap.

This module follows the :mod:`repro.obs` pattern exactly: the
:class:`~repro.sim.environment.Environment` carries :data:`NULL_CHECKER`
by default (every hook a no-op behind an ``enabled`` guard), and an
attached :class:`InvariantChecker` does pure-Python bookkeeping only — it
schedules no events, draws no random numbers, and reads no wall clock, so
a checked run is bit-identical in virtual time to an unchecked one
(golden-tested).  A broken law raises a structured
:class:`InvariantViolation` carrying layer, invariant name, simulated
time, and context.

Import discipline: this module must stay dependency-free within the
package (the :class:`Environment` itself imports it), so the offset-tiling
validation is restated here rather than imported from ``repro.core``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Injector-written trace rows that echo a fault plan's *windows* rather
#: than measured activity: a plan may legally schedule overlapping windows
#: on one server, and a window may outlive the run.
_PLAN_WINDOW_STATES = frozenset(
    {"server_degraded", "server_outage", "server_killed"}
)


class InvariantViolation(Exception):
    """A cross-layer law was broken; structured for post-mortem tooling."""

    def __init__(
        self,
        layer: str,
        invariant: str,
        message: str,
        time: Optional[float] = None,
        context: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.layer = layer
        self.invariant = invariant
        self.message = message
        self.time = time
        self.context = dict(context or {})
        when = f" at t={time:.9g}" if time is not None else ""
        ctx = f" {self.context}" if self.context else ""
        super().__init__(f"[{layer}/{invariant}]{when}: {message}{ctx}")


class NullChecker:
    """The disabled checker: every hook is a no-op.

    Instrumented sites guard with ``if check.enabled`` (one attribute load
    and a branch), mirroring :class:`~repro.obs.metrics.NullMetrics`.
    """

    enabled = False

    def nic_tx(self, nbytes: int) -> None:
        pass

    def nic_rx(self, nbytes: int) -> None:
        pass

    def wire_drop(self, nbytes: int) -> None:
        pass

    def msg_sent(self, kind: str, nbytes: int) -> None:
        pass

    def msg_delivered(self, kind: str, nbytes: int) -> None:
        pass

    def server_write_in(self, server_id: int, nbytes: int) -> None:
        pass

    def server_disk_write(self, server_id: int, nbytes: int) -> None:
        pass

    def cache_absorb(self, server_id: int, nbytes: int, merged_away: int) -> None:
        pass

    def cache_state(
        self, server_id: int, runs: Sequence[Tuple[int, int]], dirty_bytes: int
    ) -> None:
        pass

    def cache_flush(
        self, server_id: int, runs: Sequence[Tuple[int, int]], nbytes: int
    ) -> None:
        pass

    def cache_lost(self, server_id: int, nbytes: int) -> None:
        pass

    def replica_write(
        self, primary: int, nbytes: int, nlive: int, nmissed: int, ndead: int
    ) -> None:
        pass

    def replica_missed(self, server_id: int, nbytes: int) -> None:
        pass

    def replica_rebuilt(self, server_id: int, nbytes: int) -> None:
        pass

    def server_dead(self, server_id: int, abandoned_bytes: int) -> None:
        pass

    def layout_mapped(self, logical_bytes: int, physical_bytes: int) -> None:
        pass

    def offsets_assigned(
        self,
        query_id,
        base,
        block_size,
        offsets_by_fragment,
        sizes_by_fragment,
        shard: int = 0,
    ) -> None:
        pass

    def entry_alignment(
        self, query_id: int, fragment_id: int, noffsets: int, nsizes: int
    ) -> None:
        pass

    def arrival(self, outcome: str, shard: int = 0) -> None:
        pass

    def arrival_completed(self, shard: int = 0) -> None:
        pass

    def strategy_chosen(self, query_id: int, name: str, shard: int = 0) -> None:
        pass

    def strategy_executed(self, query_id: int, name: str, shard: int = 0) -> None:
        pass

    def strategy_traced(self, query_id: int, name: str, shard: int = 0) -> None:
        pass

    def finalize(
        self,
        now: float,
        recorder=None,
        fault_free: bool = True,
        open_queries=None,
    ) -> None:
        pass

    def __repr__(self) -> str:
        return "<NullChecker>"


#: The process-wide disabled checker (default on every Environment).
NULL_CHECKER = NullChecker()

#: Admission-ledger shape (global and per shard).  ``donated``/``stolen``
#: only move in sharded runs: a donated query leaves its shard's pending
#: set without completing; the same query re-enters the thief's ledger as
#: one ``stolen`` plus one ``admitted`` event.
_EMPTY_ARRIVALS: Dict[str, int] = {
    "offered": 0,
    "admitted": 0,
    "rejected": 0,
    "shed": 0,
    "completed": 0,
    "donated": 0,
    "stolen": 0,
}


class _ServerLedger:
    """Byte accounting of one I/O server's write path.

    Replication/recovery fields: ``lost`` is dirty cache data dropped by a
    failing daemon (volatile buffer), ``missed`` is bytes acked to clients
    while this server was down (degraded writes + re-drive targets),
    ``rebuilt`` is the portion the background rebuild has landed, and
    ``abandoned`` is the portion discarded because the server was killed
    permanently.  ``missed - rebuilt - abandoned`` is the server's open
    durability gap and must never go negative.
    """

    __slots__ = (
        "write_in",
        "disk_written",
        "absorbed",
        "merged",
        "dirty",
        "lost",
        "missed",
        "rebuilt",
        "abandoned",
        "dead",
    )

    def __init__(self) -> None:
        self.write_in = 0
        self.disk_written = 0
        self.absorbed = 0
        self.merged = 0
        self.dirty = 0
        self.lost = 0
        self.missed = 0
        self.rebuilt = 0
        self.abandoned = 0
        self.dead = False


class InvariantChecker:
    """The live checker: accumulates per-layer ledgers and raises on breakage.

    Continuous laws (per hook call) fail at the offending simulated
    instant; global conservation laws run in :meth:`finalize`, after the
    run's results are captured (the event queue is *not* drained — pending
    background work like idle cache flushes stays pending, exactly as in
    an unchecked run).
    """

    enabled = True

    def __init__(self, env=None) -> None:
        self.env = env
        self.checks = 0  # hook invocations (reporting only)
        # MPI wire ledger (NIC-serialized payload bytes; OOB pays neither).
        self.tx_bytes = 0
        self.rx_bytes = 0
        self.dropped_bytes = 0
        # MPI message ledger: kind -> [sent, sent_B, delivered, delivered_B].
        self.messages: Dict[str, List[int]] = {}
        # PVFS per-server ledgers.
        self.servers: Dict[int, _ServerLedger] = {}
        # Replicated-write ledger: every replicated request's chain must be
        # the same width, and no write may ever be acked with zero live
        # replicas.
        self._chain_width: Optional[int] = None
        self.replica_writes = 0
        self.replica_acked_bytes = 0
        # Offset-layout cursor per output file (one per shard; single-file
        # runs only ever use shard 0): None until the first block (supports
        # resumed runs, whose first base is nonzero).
        self._offset_cursor: Dict[int, Optional[int]] = {}
        # Serve-mode arrival ledgers: one global, one per shard.
        # "admitted" counts admission *events* (a shed slot's takeover is a
        # fresh admission of the new arrival, and a stolen query is a fresh
        # admission at the thief), so every offered-or-stolen arrival lands
        # in exactly one of admitted or rejected, and every admission event
        # ends as completed, shed, donated, or still-open at run end.
        self.arrivals: Dict[str, int] = dict(_EMPTY_ARRIVALS)
        self.shard_arrivals: Dict[int, Dict[str, int]] = {}
        # Per-query strategy ledgers (hybrid-auto runs only): the name the
        # selector chose, the name the write path actually executed, and
        # the name stamped into the trace, keyed by (shard, query).  All
        # three must agree — checked incrementally (a second record with a
        # different name fails on the spot) and again at finalize.
        self.strategy_chosen_by: Dict[Tuple[int, int], str] = {}
        self.strategy_executed_by: Dict[Tuple[int, int], str] = {}
        self.strategy_traced_by: Dict[Tuple[int, int], str] = {}

    def __repr__(self) -> str:
        return f"<InvariantChecker checks={self.checks}>"

    # -- violation plumbing -------------------------------------------------
    def _now(self) -> Optional[float]:
        return self.env.now if self.env is not None else None

    def _fail(self, layer: str, invariant: str, message: str, **context) -> None:
        raise InvariantViolation(
            layer=layer,
            invariant=invariant,
            message=message,
            time=self._now(),
            context=context,
        )

    def _server(self, server_id: int) -> _ServerLedger:
        ledger = self.servers.get(server_id)
        if ledger is None:
            ledger = self.servers[server_id] = _ServerLedger()
        return ledger

    # -- MPI layer ----------------------------------------------------------
    def nic_tx(self, nbytes: int) -> None:
        self.checks += 1
        self.tx_bytes += nbytes

    def nic_rx(self, nbytes: int) -> None:
        self.checks += 1
        self.rx_bytes += nbytes
        if self.rx_bytes + self.dropped_bytes > self.tx_bytes:
            self._fail(
                "mpi",
                "wire-conservation",
                "received+dropped bytes exceed transmitted bytes",
                tx=self.tx_bytes,
                rx=self.rx_bytes,
                dropped=self.dropped_bytes,
            )

    def wire_drop(self, nbytes: int) -> None:
        self.checks += 1
        self.dropped_bytes += nbytes
        if self.rx_bytes + self.dropped_bytes > self.tx_bytes:
            self._fail(
                "mpi",
                "wire-conservation",
                "received+dropped bytes exceed transmitted bytes",
                tx=self.tx_bytes,
                rx=self.rx_bytes,
                dropped=self.dropped_bytes,
            )

    def msg_sent(self, kind: str, nbytes: int) -> None:
        self.checks += 1
        entry = self.messages.setdefault(kind, [0, 0, 0, 0])
        entry[0] += 1
        entry[1] += nbytes

    def msg_delivered(self, kind: str, nbytes: int) -> None:
        self.checks += 1
        entry = self.messages.setdefault(kind, [0, 0, 0, 0])
        entry[2] += 1
        entry[3] += nbytes
        if entry[2] > entry[0]:
            self._fail(
                "mpi",
                "message-conservation",
                f"more {kind} messages delivered than sent",
                kind=kind,
                sent=entry[0],
                delivered=entry[2],
            )

    # -- PVFS layer ---------------------------------------------------------
    def server_write_in(self, server_id: int, nbytes: int) -> None:
        self.checks += 1
        self._server(server_id).write_in += nbytes

    def server_disk_write(self, server_id: int, nbytes: int) -> None:
        self.checks += 1
        ledger = self._server(server_id)
        ledger.disk_written += nbytes
        if ledger.disk_written > ledger.write_in:
            self._fail(
                "pvfs",
                "server-conservation",
                f"server {server_id} wrote more bytes to disk than it received",
                server=server_id,
                write_in=ledger.write_in,
                disk_written=ledger.disk_written,
            )

    def cache_absorb(self, server_id: int, nbytes: int, merged_away: int) -> None:
        self.checks += 1
        if not 0 <= merged_away <= nbytes:
            self._fail(
                "pvfs",
                "cache-accounting",
                f"server {server_id} cache absorbed {nbytes} B but the dirty "
                f"set grew by {nbytes - merged_away} B",
                server=server_id,
                absorbed=nbytes,
                merged_away=merged_away,
            )
        ledger = self._server(server_id)
        ledger.absorbed += nbytes
        ledger.merged += merged_away

    def cache_state(
        self, server_id: int, runs: Sequence[Tuple[int, int]], dirty_bytes: int
    ) -> None:
        self.checks += 1
        total = self._validate_runs(server_id, runs)
        if total != dirty_bytes:
            self._fail(
                "pvfs",
                "cache-gauge",
                f"server {server_id} dirty-byte gauge {dirty_bytes} != "
                f"extent sum {total}",
                server=server_id,
                gauge=dirty_bytes,
                extent_sum=total,
            )
        self._server(server_id).dirty = dirty_bytes

    def cache_flush(
        self, server_id: int, runs: Sequence[Tuple[int, int]], nbytes: int
    ) -> None:
        self.checks += 1
        total = self._validate_runs(server_id, runs)
        if total != nbytes:
            self._fail(
                "pvfs",
                "cache-flush",
                f"server {server_id} flushed {nbytes} B but its extents "
                f"sum to {total}",
                server=server_id,
                flushed=nbytes,
                extent_sum=total,
            )

    def _validate_runs(
        self, server_id: int, runs: Sequence[Tuple[int, int]]
    ) -> int:
        """Dirty extents must be sorted, positive, and non-overlapping."""
        total = 0
        prev_end: Optional[int] = None
        for lo, hi in runs:
            if hi <= lo:
                self._fail(
                    "pvfs",
                    "cache-extents",
                    f"server {server_id} holds an empty/inverted extent",
                    server=server_id,
                    extent=(lo, hi),
                )
            if prev_end is not None and lo < prev_end:
                self._fail(
                    "pvfs",
                    "cache-extents",
                    f"server {server_id} dirty extents overlap or are unsorted",
                    server=server_id,
                    prev_end=prev_end,
                    next_start=lo,
                )
            prev_end = hi
            total += hi - lo
        return total

    def cache_lost(self, server_id: int, nbytes: int) -> None:
        self.checks += 1
        ledger = self._server(server_id)
        if nbytes < 0 or nbytes > ledger.dirty:
            self._fail(
                "pvfs",
                "cache-loss",
                f"server {server_id} lost {nbytes} B of dirty data but the "
                f"gauge held {ledger.dirty} B",
                server=server_id,
                lost=nbytes,
                dirty=ledger.dirty,
            )
        ledger.lost += nbytes

    def replica_write(
        self, primary: int, nbytes: int, nlive: int, nmissed: int, ndead: int
    ) -> None:
        self.checks += 1
        if nlive < 1:
            self._fail(
                "pvfs",
                "replica-liveness",
                f"write on chain of primary {primary} acked with zero live "
                f"replicas",
                primary=primary,
                nbytes=nbytes,
                nmissed=nmissed,
                ndead=ndead,
            )
        width = nlive + nmissed + ndead
        if self._chain_width is None:
            self._chain_width = width
        elif width != self._chain_width:
            self._fail(
                "pvfs",
                "replica-chain-width",
                f"chain of primary {primary} has {width} members, "
                f"expected {self._chain_width}",
                primary=primary,
                width=width,
                expected=self._chain_width,
            )
        self.replica_writes += 1
        self.replica_acked_bytes += nbytes * nlive

    def replica_missed(self, server_id: int, nbytes: int) -> None:
        self.checks += 1
        if nbytes <= 0:
            self._fail(
                "pvfs",
                "replica-ledger",
                f"server {server_id} recorded a non-positive miss",
                server=server_id,
                nbytes=nbytes,
            )
        self._server(server_id).missed += nbytes

    def replica_rebuilt(self, server_id: int, nbytes: int) -> None:
        self.checks += 1
        ledger = self._server(server_id)
        ledger.rebuilt += nbytes
        if ledger.rebuilt + ledger.abandoned > ledger.missed:
            self._fail(
                "pvfs",
                "rebuild-overrun",
                f"server {server_id} rebuilt more bytes than were ever missed",
                server=server_id,
                missed=ledger.missed,
                rebuilt=ledger.rebuilt,
                abandoned=ledger.abandoned,
            )

    def server_dead(self, server_id: int, abandoned_bytes: int) -> None:
        self.checks += 1
        ledger = self._server(server_id)
        ledger.dead = True
        ledger.abandoned += abandoned_bytes
        if ledger.rebuilt + ledger.abandoned > ledger.missed:
            self._fail(
                "pvfs",
                "replica-ledger",
                f"server {server_id} abandoned more bytes than were ever "
                f"missed",
                server=server_id,
                missed=ledger.missed,
                rebuilt=ledger.rebuilt,
                abandoned=ledger.abandoned,
            )

    def layout_mapped(self, logical_bytes: int, physical_bytes: int) -> None:
        self.checks += 1
        if logical_bytes != physical_bytes:
            self._fail(
                "pvfs",
                "layout-conservation",
                "striping layout lost or duplicated bytes",
                logical=logical_bytes,
                physical=physical_bytes,
            )

    # -- offset layer -------------------------------------------------------
    def offsets_assigned(
        self,
        query_id,
        base,
        block_size,
        offsets_by_fragment,
        sizes_by_fragment,
        shard: int = 0,
    ) -> None:
        self.checks += 1
        base = int(base)
        block_size = int(block_size)
        cursor = self._offset_cursor.get(shard)
        if cursor is not None and base != cursor:
            self._fail(
                "offsets",
                "ledger-continuity",
                f"query {query_id} block starts at {base}, expected "
                f"{cursor} (blocks must abut)",
                query=query_id,
                shard=shard,
                base=base,
                expected=cursor,
            )
        spans: List[Tuple[int, int]] = []
        for frag, offsets in offsets_by_fragment.items():
            sizes = sizes_by_fragment.get(frag)
            if sizes is None or len(offsets) != len(sizes):
                self._fail(
                    "offsets",
                    "fragment-alignment",
                    f"query {query_id} fragment {frag}: offsets/sizes mismatch",
                    query=query_id,
                    fragment=frag,
                    noffsets=len(offsets),
                    nsizes=-1 if sizes is None else len(sizes),
                )
            spans.extend(
                (int(o), int(o) + int(s)) for o, s in zip(offsets, sizes)
            )
        spans.sort()
        cursor = base
        for start, end in spans:
            if start != cursor:
                kind = "overlap" if start < cursor else "gap"
                self._fail(
                    "offsets",
                    "dense-tiling",
                    f"query {query_id}: {kind} at offset {min(start, cursor)}",
                    query=query_id,
                    expected=cursor,
                    got=start,
                )
            cursor = end
        if cursor != base + block_size:
            self._fail(
                "offsets",
                "dense-tiling",
                f"query {query_id}: block ends at {cursor}, expected "
                f"{base + block_size}",
                query=query_id,
                end=cursor,
                expected=base + block_size,
            )
        self._offset_cursor[shard] = base + block_size

    def entry_alignment(
        self, query_id: int, fragment_id: int, noffsets: int, nsizes: int
    ) -> None:
        self.checks += 1
        if noffsets != nsizes:
            self._fail(
                "offsets",
                "entry-alignment",
                f"worker got {noffsets} offsets for {nsizes} stored results "
                f"of query {query_id} fragment {fragment_id}",
                query=query_id,
                fragment=fragment_id,
                noffsets=noffsets,
                nsizes=nsizes,
            )

    # -- serve layer --------------------------------------------------------
    def _shard_ledger(self, shard: int) -> Dict[str, int]:
        ledger = self.shard_arrivals.get(shard)
        if ledger is None:
            ledger = self.shard_arrivals[shard] = dict(_EMPTY_ARRIVALS)
        return ledger

    def arrival(self, outcome: str, shard: int = 0) -> None:
        """One admission event: offered/admitted/rejected/shed/donated/stolen."""
        self.checks += 1
        if outcome not in self.arrivals:
            self._fail(
                "serve",
                "arrival-outcome",
                f"unknown arrival outcome {outcome!r}",
                outcome=outcome,
            )
        self.arrivals[outcome] += 1
        self._shard_ledger(shard)[outcome] += 1
        self._arrival_laws()

    def arrival_completed(self, shard: int = 0) -> None:
        """An admitted query became result-durable."""
        self.checks += 1
        self.arrivals["completed"] += 1
        self._shard_ledger(shard)["completed"] += 1
        self._arrival_laws()

    def _arrival_laws(self) -> None:
        # The global laws, then the same laws per shard: a stolen query is
        # an extra admission source (beyond offered arrivals), a donated
        # query an extra way to leave the admitted set without completing.
        for name, a in [("global", self.arrivals)] + [
            (f"shard {s}", led) for s, led in self.shard_arrivals.items()
        ]:
            if a["admitted"] + a["rejected"] > a["offered"] + a["stolen"]:
                self._fail(
                    "serve",
                    "arrival-conservation",
                    f"{name}: more arrivals decided than offered+stolen",
                    ledger=name,
                    **a,
                )
            if a["completed"] + a["shed"] + a["donated"] > a["admitted"]:
                self._fail(
                    "serve",
                    "arrival-conservation",
                    f"{name}: more queries completed+shed+donated than "
                    "admission events",
                    ledger=name,
                    **a,
                )
        if self.arrivals["stolen"] > self.arrivals["donated"]:
            self._fail(
                "serve",
                "arrival-conservation",
                "more queries stolen than donated",
                **self.arrivals,
            )

    # -- adaptive-strategy ledger (hybrid-auto) ------------------------------
    def _strategy_record(
        self,
        ledger: Dict[Tuple[int, int], str],
        which: str,
        query_id: int,
        name: str,
        shard: int,
    ) -> None:
        self.checks += 1
        key = (shard, query_id)
        prior = ledger.get(key)
        if prior is None:
            ledger[key] = name
        elif prior != name:
            self._fail(
                "adapt",
                "strategy-ledger",
                f"query {query_id} {which} as {name!r} after {prior!r}",
                query=query_id,
                shard=shard,
                prior=prior,
                name=name,
            )

    def strategy_chosen(self, query_id: int, name: str, shard: int = 0) -> None:
        """The selector picked ``name`` for the query (once, at the master)."""
        self._strategy_record(
            self.strategy_chosen_by, "chosen", query_id, name, shard
        )

    def strategy_executed(self, query_id: int, name: str, shard: int = 0) -> None:
        """The write path ran the query under ``name`` (master inline for
        MW; once per offset entry at the owning workers for WW)."""
        self._strategy_record(
            self.strategy_executed_by, "executed", query_id, name, shard
        )
        key = (shard, query_id)
        chosen = self.strategy_chosen_by.get(key)
        if chosen is None or chosen != name:
            self._fail(
                "adapt",
                "strategy-ledger",
                f"query {query_id} executed as {name!r} but chosen as "
                f"{chosen!r}",
                query=query_id,
                shard=shard,
                chosen=chosen,
                executed=name,
            )

    def strategy_traced(self, query_id: int, name: str, shard: int = 0) -> None:
        """The choice was stamped into the trace."""
        self._strategy_record(
            self.strategy_traced_by, "traced", query_id, name, shard
        )

    def _finalize_strategies(self, fault_free: bool) -> None:
        for key, chosen in sorted(self.strategy_chosen_by.items()):
            shard, q = key
            traced = self.strategy_traced_by.get(key)
            if traced != chosen:
                self._fail(
                    "adapt",
                    "strategy-ledger",
                    f"query {q} chosen as {chosen!r} but traced as {traced!r}",
                    query=q,
                    shard=shard,
                    chosen=chosen,
                    traced=traced,
                )
            executed = self.strategy_executed_by.get(key)
            if executed is not None and executed != chosen:
                self._fail(
                    "adapt",
                    "strategy-ledger",
                    f"query {q} chosen as {chosen!r} but executed as "
                    f"{executed!r}",
                    query=q,
                    shard=shard,
                    chosen=chosen,
                    executed=executed,
                )
            if fault_free and executed is None:
                self._fail(
                    "adapt",
                    "strategy-ledger",
                    f"query {q} chosen as {chosen!r} but never executed",
                    query=q,
                    shard=shard,
                    chosen=chosen,
                )
        for key in sorted(self.strategy_executed_by):
            if key not in self.strategy_chosen_by:
                shard, q = key
                self._fail(
                    "adapt",
                    "strategy-ledger",
                    f"query {q} executed without a recorded choice",
                    query=q,
                    shard=shard,
                )

    # -- end-of-run conservation --------------------------------------------
    def finalize(
        self,
        now: float,
        recorder=None,
        fault_free: bool = True,
        open_queries=None,
    ) -> None:
        """Run the global laws once the simulation has stopped.

        ``open_queries`` is the master's count of admitted-but-not-durable
        queries — an int for single-master runs, a ``{shard: count}`` dict
        for sharded runs (the ledger equality then holds per shard too).

        ``fault_free`` selects strict equalities: with an empty fault plan
        every non-OOB message is consumed by its receiver before the ranks
        can terminate, so sent == delivered and TX == RX exactly.  With
        faults, messages a crashed worker stopped waiting for (stale
        scores, retransmissions mid-backoff) may legitimately be in flight
        when the last rank exits, so the laws relax to monotone
        inequalities — already enforced continuously by the hooks.
        """
        self._finalize_mpi(fault_free)
        self._finalize_servers()
        self._finalize_arrivals(open_queries)
        self._finalize_strategies(fault_free)
        if recorder is not None:
            self._finalize_trace(recorder, now)

    def _finalize_arrivals(self, open_queries) -> None:
        if not self.arrivals["offered"]:
            return
        if self.arrivals["stolen"] != self.arrivals["donated"]:
            self._fail(
                "serve",
                "arrival-conservation",
                "donated queries not all re-admitted by a thief at end of run",
                **self.arrivals,
            )
        open_by_shard: Dict[int, Optional[int]] = {}
        if isinstance(open_queries, dict):
            open_by_shard = dict(open_queries)
        ledgers = [("global", self.arrivals, None)] + [
            (f"shard {s}", led, s) for s, led in sorted(self.shard_arrivals.items())
        ]
        for name, a, shard in ledgers:
            if a["admitted"] + a["rejected"] != a["offered"] + a["stolen"]:
                self._fail(
                    "serve",
                    "arrival-conservation",
                    f"{name}: every offered or stolen arrival must be "
                    "admitted or rejected (decisions are synchronous)",
                    ledger=name,
                    **a,
                )
            expected = (
                open_queries
                if shard is None and not isinstance(open_queries, dict)
                else open_by_shard.get(shard)
                if shard is not None
                else (sum(open_by_shard.values()) if open_by_shard else None)
            )
            if expected is not None:
                open_events = (
                    a["admitted"] - a["shed"] - a["donated"] - a["completed"]
                )
                if open_events != expected:
                    self._fail(
                        "serve",
                        "arrival-conservation",
                        f"{name}: admission ledger leaves {open_events} open "
                        f"queries but the master holds {expected}",
                        ledger=name,
                        open_queries=expected,
                        **a,
                    )

    def _finalize_mpi(self, fault_free: bool) -> None:
        if fault_free and self.tx_bytes != self.rx_bytes + self.dropped_bytes:
            self._fail(
                "mpi",
                "wire-conservation",
                "transmitted bytes not fully received at end of run",
                tx=self.tx_bytes,
                rx=self.rx_bytes,
                dropped=self.dropped_bytes,
            )
        for kind, (sent, sent_b, delivered, delivered_b) in sorted(
            self.messages.items()
        ):
            strict = fault_free and kind != "oob"
            if strict and (sent != delivered or sent_b != delivered_b):
                self._fail(
                    "mpi",
                    "message-conservation",
                    f"{kind} messages sent != delivered at end of run",
                    kind=kind,
                    sent=sent,
                    delivered=delivered,
                    sent_bytes=sent_b,
                    delivered_bytes=delivered_b,
                )
            if delivered > sent or delivered_b > sent_b:
                self._fail(
                    "mpi",
                    "message-conservation",
                    f"more {kind} messages delivered than sent",
                    kind=kind,
                    sent=sent,
                    delivered=delivered,
                )

    def _finalize_servers(self) -> None:
        for server_id in sorted(self.servers):
            ledger = self.servers[server_id]
            accounted = (
                ledger.disk_written + ledger.dirty + ledger.merged + ledger.lost
            )
            if ledger.write_in != accounted:
                self._fail(
                    "pvfs",
                    "server-conservation",
                    f"server {server_id}: {ledger.write_in} B entered but "
                    f"{accounted} B accounted "
                    f"(disk {ledger.disk_written} + dirty {ledger.dirty} + "
                    f"merged {ledger.merged} + lost {ledger.lost})",
                    server=server_id,
                    write_in=ledger.write_in,
                    disk_written=ledger.disk_written,
                    dirty=ledger.dirty,
                    merged=ledger.merged,
                    lost=ledger.lost,
                )
            gap = ledger.missed - ledger.rebuilt - ledger.abandoned
            if gap < 0:
                self._fail(
                    "pvfs",
                    "replica-ledger",
                    f"server {server_id}: negative durability gap",
                    server=server_id,
                    missed=ledger.missed,
                    rebuilt=ledger.rebuilt,
                    abandoned=ledger.abandoned,
                )
            if ledger.dead and gap:
                self._fail(
                    "pvfs",
                    "replica-ledger",
                    f"server {server_id} is dead but still carries a "
                    f"{gap} B durability gap (kills must abandon the ledger)",
                    server=server_id,
                    gap=gap,
                )

    def _finalize_trace(self, recorder, now: float) -> None:
        open_intervals = sorted(getattr(recorder, "_open", {}))
        if open_intervals:
            self._fail(
                "trace",
                "intervals-close",
                f"{len(open_intervals)} interval(s) never closed",
                open=open_intervals,
            )
        rows: Dict[Tuple[int, str], List[Tuple[float, float]]] = {}
        for interval in recorder.intervals:
            if interval.start < 0:
                self._fail(
                    "trace",
                    "interval-bounds",
                    "interval starts before t=0",
                    rank=interval.rank,
                    state=interval.state,
                    start=interval.start,
                )
            if interval.state in _PLAN_WINDOW_STATES:
                continue  # plan-window echoes may overlap / outlive the run
            if interval.end > now:
                self._fail(
                    "trace",
                    "interval-bounds",
                    f"interval ends at {interval.end:.9g}, after the run "
                    f"ended at {now:.9g}",
                    rank=interval.rank,
                    state=interval.state,
                    end=interval.end,
                )
            rows.setdefault((interval.rank, interval.state), []).append(
                (interval.start, interval.end)
            )
        for (rank, state), spans in sorted(rows.items()):
            spans.sort()
            prev_end = None
            for start, end in spans:
                if prev_end is not None and start < prev_end:
                    self._fail(
                        "trace",
                        "row-overlap",
                        f"rank {rank} state {state!r} has overlapping "
                        f"intervals",
                        rank=rank,
                        state=state,
                        prev_end=prev_end,
                        next_start=start,
                    )
                prev_end = end

    # -- reporting ----------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """Counters for display (``s3asim run --check``) and tests."""
        return {
            "checks": self.checks,
            "tx_bytes": self.tx_bytes,
            "rx_bytes": self.rx_bytes,
            "dropped_bytes": self.dropped_bytes,
            "messages": {k: list(v) for k, v in sorted(self.messages.items())},
            "servers": {
                sid: {
                    "write_in": led.write_in,
                    "disk_written": led.disk_written,
                    "dirty": led.dirty,
                    "merged": led.merged,
                    "lost": led.lost,
                    "missed": led.missed,
                    "rebuilt": led.rebuilt,
                    "abandoned": led.abandoned,
                    "dead": led.dead,
                }
                for sid, led in sorted(self.servers.items())
            },
            "arrivals": dict(self.arrivals),
            "shard_arrivals": {
                s: dict(led) for s, led in sorted(self.shard_arrivals.items())
            },
            "strategies": {
                f"{shard}:{q}": name
                for (shard, q), name in sorted(self.strategy_chosen_by.items())
            },
            "replica_writes": self.replica_writes,
            "replica_acked_bytes": self.replica_acked_bytes,
            "replica_outstanding_bytes": sum(
                led.missed - led.rebuilt - led.abandoned
                for led in self.servers.values()
            ),
        }
