"""Metamorphic differential testing of the simulator (``s3asim check``).

A simulator has no oracle: nobody knows that 24.301485 seconds is *the*
right answer for a WW-POSIX run.  What we do know are **metamorphic
relations** — pairs of configurations whose outputs must agree exactly
even though no single output is known in advance:

* ``strategies`` — all four I/O strategies write byte-identical files
  (they order the writes differently; the merged content is the same).
* ``query-sync`` — the query synchronization barrier changes timing, not
  file content.
* ``server-stack`` — the server-side elevator and write-back cache change
  timing, not file content.
* ``jobs`` — a sweep fanned out over a process pool is bit-identical to
  the same sweep run serially (elapsed times and all).
* ``empty-faults`` — an explicitly empty fault plan is bit-identical to
  the default no-plan run, and re-running either reproduces it exactly
  (no hidden global state).
* ``arrivals`` — an open-loop arrival process at rate → ∞ with a pending
  bound of ``nqueries`` converges to the closed-batch output file (every
  query offered at t≈0, none rejected).
* ``read-strategies`` — every independent read method (POSIX, list I/O,
  data sieving), the contiguous read, and the collective two-phase read
  return exactly the bytes the write path stored.
* ``hybrid-auto`` — the adaptive per-query strategy writes the same
  bytes as every static strategy (it only re-routes *who* writes them).

Every relation runs with the cross-layer invariant checker enabled
(:mod:`repro.check.invariants`), so a case that breaks a conservation law
fails even when the relation itself holds.

When a relation fails the harness **shrinks** the case greedily (fewer
queries, fragments, workers, servers) while it still fails, then writes a
replayable JSON repro artifact — the debugging loop starts from the
smallest known failing configuration, not the random one.

This module is imported on demand (CLI, tests, harness) — never from the
package ``__init__`` — because it pulls in the whole application stack and
:mod:`repro.check.invariants` must stay importable by the simulation
kernel itself.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
from dataclasses import asdict, dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from ..core.app import S3aSim
from ..core.config import SimulationConfig
from ..core.strategies import STRATEGIES
from ..exec.engine import PointSpec, run_points
from ..faults.plan import FaultPlan
from ..pvfs.filesystem import PVFSConfig
from ..serve.arrivals import ArrivalConfig
from ..workload.results import ResultModel

ARTIFACT_FORMAT = "s3asim-check-repro-1"

#: All four strategies, in the paper's order.
STRATEGY_NAMES = tuple(STRATEGIES)

#: Default number of random cases per harness run; the nightly CI job
#: raises it through the ``S3ASIM_CHECK_CASES`` environment variable.
DEFAULT_CASES = 5
CASES_ENV = "S3ASIM_CHECK_CASES"

MIB = 1024 * 1024


@dataclass(frozen=True)
class CheckCase:
    """One randomly drawn configuration point (small enough to shrink)."""

    seed: int
    nprocs: int
    nqueries: int
    nfragments: int
    nservers: int
    write_every: int
    strategy: str

    def label(self) -> str:
        return (
            f"seed={self.seed} np={self.nprocs} q={self.nqueries} "
            f"f={self.nfragments} s={self.nservers} "
            f"we={self.write_every} {self.strategy}"
        )


def random_case(rng: random.Random) -> CheckCase:
    """Draw one case from the small-but-representative region."""
    return CheckCase(
        seed=rng.randrange(2**31),
        nprocs=rng.randint(3, 6),
        nqueries=rng.randint(1, 4),
        nfragments=rng.randint(1, 6),
        nservers=rng.randint(2, 4),
        write_every=rng.randint(1, 3),
        strategy=rng.choice(STRATEGY_NAMES),
    )


def build_config(case: CheckCase, **overrides) -> SimulationConfig:
    """The runnable config of a case: tiny results, data stored, checked."""
    cfg = SimulationConfig(
        nprocs=case.nprocs,
        strategy=case.strategy,
        nqueries=case.nqueries,
        nfragments=case.nfragments,
        seed=case.seed,
        write_every=case.write_every,
        store_data=True,
        check=True,
        result_model=ResultModel(min_count=20, max_count=60),
        pvfs=replace(PVFSConfig.feynman(), nservers=case.nservers),
    )
    return cfg.with_(**overrides) if overrides else cfg


def output_signature(app: S3aSim) -> Tuple[tuple, str]:
    """What a run wrote: the extent list plus a hash of every byte."""
    bytestore = app.fh.file.bytestore
    digest = hashlib.sha256()
    for start, end in bytestore.extents():
        digest.update(bytestore.read(start, end - start))
    return (tuple(bytestore.extents()), digest.hexdigest())


def _run_signature(config: SimulationConfig) -> Tuple[float, tuple, str]:
    app = S3aSim(config)
    result = app.run()
    extents, digest = output_signature(app)
    return (result.elapsed, extents, digest)


# -- relations ---------------------------------------------------------------
# Each relation maps a case to None (holds) or a failure description.
Relation = Callable[[CheckCase], Optional[str]]


def relation_strategies(case: CheckCase) -> Optional[str]:
    """All four I/O strategies must produce byte-identical output files."""
    signatures = {}
    for strategy in STRATEGY_NAMES:
        elapsed, extents, digest = _run_signature(
            build_config(case, strategy=strategy)
        )
        signatures[strategy] = (extents, digest)
    baseline = signatures[STRATEGY_NAMES[0]]
    for strategy, signature in signatures.items():
        if signature != baseline:
            return (
                f"strategy {strategy} output differs from "
                f"{STRATEGY_NAMES[0]}: {signature[1][:12]} != {baseline[1][:12]}"
            )
    return None


def relation_query_sync(case: CheckCase) -> Optional[str]:
    """The query-sync barrier must not change what lands in the file."""
    _, extents_a, digest_a = _run_signature(build_config(case, query_sync=False))
    _, extents_b, digest_b = _run_signature(build_config(case, query_sync=True))
    if (extents_a, digest_a) != (extents_b, digest_b):
        return (
            f"query_sync changed the output file: "
            f"{digest_a[:12]} != {digest_b[:12]}"
        )
    return None


def relation_server_stack(case: CheckCase) -> Optional[str]:
    """Elevator scheduling + write-back caching must preserve file content."""
    base = build_config(case)
    stacked = base.with_(
        pvfs=replace(base.pvfs, disk_sched="elevator", server_cache_B=4 * MIB)
    )
    _, extents_a, digest_a = _run_signature(base)
    _, extents_b, digest_b = _run_signature(stacked)
    if (extents_a, digest_a) != (extents_b, digest_b):
        return (
            f"elevator+cache changed the output file: "
            f"{digest_a[:12]} != {digest_b[:12]}"
        )
    return None


def relation_jobs(case: CheckCase) -> Optional[str]:
    """A parallel sweep must be bit-identical to the serial sweep."""
    specs = [
        PointSpec(key=(strategy,), config=build_config(case, strategy=strategy))
        for strategy in STRATEGY_NAMES
    ]
    serial = run_points(specs, jobs=1)
    fanned = run_points(specs, jobs=2)
    for one, two in zip(serial, fanned):
        if not one.ok or not two.ok:
            failure = one.failure or two.failure
            return f"sweep point failed: {failure}"
        if one.result.elapsed != two.result.elapsed:
            return (
                f"point {one.key} diverged across jobs: "
                f"{one.result.elapsed!r} != {two.result.elapsed!r}"
            )
    return None


def relation_replicas(case: CheckCase) -> Optional[str]:
    """Replication must change timing only, never what the file holds.

    ``replicas=1`` must further be *bit-identical* to the default config —
    the replicated code paths are gated on ``replicas > 1`` and may not
    construct a single extra event otherwise.
    """
    base = build_config(case)
    base_sig = _run_signature(base)
    explicit_one = _run_signature(
        base.with_(pvfs=replace(base.pvfs, replicas=1))
    )
    if base_sig != explicit_one:
        return (
            f"explicit replicas=1 diverged from the default: "
            f"{base_sig[0]!r} != {explicit_one[0]!r}"
        )
    replicated = _run_signature(
        base.with_(pvfs=replace(base.pvfs, replicas=min(2, case.nservers)))
    )
    if (base_sig[1], base_sig[2]) != (replicated[1], replicated[2]):
        return (
            f"replication changed the output file: "
            f"{base_sig[2][:12]} != {replicated[2][:12]}"
        )
    return None


def relation_arrivals(case: CheckCase) -> Optional[str]:
    """Arrivals at rate → ∞ must converge to the closed-batch output.

    With an effectively infinite Poisson rate and a pending bound of
    ``nqueries``, every query is offered at t≈0 and admitted, so the serve
    run degenerates into the batch run: same admitted count, no
    rejections, and a byte-identical output file.  (Timing differs — the
    arrival machinery exchanges acks — so only content is compared.)
    """
    base = build_config(case, write_every=1)
    _, extents_batch, digest_batch = _run_signature(base)
    serve_cfg = base.with_(
        arrival=ArrivalConfig(
            process="poisson", rate=1e9, max_pending=case.nqueries
        )
    )
    app = S3aSim(serve_cfg)
    result = app.run()
    stats = result.serve_stats
    if stats.get("admitted") != float(case.nqueries):
        return (
            f"rate→∞ serve run admitted {stats.get('admitted')} of "
            f"{case.nqueries} queries"
        )
    if stats.get("rejected") or stats.get("shed"):
        return (
            f"rate→∞ serve run rejected/shed arrivals with "
            f"max_pending == nqueries: {stats}"
        )
    extents_serve, digest_serve = output_signature(app)
    if (extents_batch, digest_batch) != (extents_serve, digest_serve):
        return (
            f"serve output diverged from the closed batch: "
            f"{digest_batch[:12]} != {digest_serve[:12]}"
        )
    return None


def relation_empty_faults(case: CheckCase) -> Optional[str]:
    """No plan, an explicit empty plan, and a re-run must agree exactly."""
    first = _run_signature(build_config(case))
    explicit = _run_signature(build_config(case, fault_plan=FaultPlan.none()))
    again = _run_signature(build_config(case))
    if first != explicit:
        return (
            f"explicit empty fault plan diverged from the default: "
            f"{first[0]!r} != {explicit[0]!r}"
        )
    if first != again:
        return (
            f"re-running the same config diverged (hidden global state): "
            f"{first[0]!r} != {again[0]!r}"
        )
    return None


def relation_read_strategies(case: CheckCase) -> Optional[str]:
    """Every read path must return exactly the bytes the write path stored.

    One checked run writes the file; afterwards the same simulation
    environment drives each read method over a deliberately misaligned
    chunking of the full extent — POSIX, list I/O, data sieving, the
    contiguous ``read_at``, and the collective two-phase read (two ranks
    splitting the regions) — and each must reproduce the stored bytes.
    """
    from ..mpiio.hints import IND_LIST, IND_POSIX, IND_SIEVE

    app = S3aSim(build_config(case))
    app.run()
    bytestore = app.fh.file.bytestore
    extents = bytestore.extents()
    if not extents:
        return None  # nothing written (shrunk to an empty workload)
    if len(extents) != 1:
        return f"write path left a non-dense file: {extents!r}"
    start, end = extents[0]
    expected = bytestore.read(start, end - start)
    env = app.world.env

    # Misaligned chunks: prime-sized regions straddle stripe boundaries.
    chunk = 7919
    regions = [
        (off, min(chunk, end - off)) for off in range(start, end, chunk)
    ]

    def run_read(generator):
        return env.run(env.process(generator))

    def read_list(method):
        datas = yield from app.fh.read_at_list(0, regions, method=method)
        return b"".join(datas)

    for method in (IND_POSIX, IND_LIST, IND_SIEVE):
        got = run_read(read_list(method))
        if got != expected:
            return (
                f"{method} read returned {len(got)} bytes that differ "
                f"from the {len(expected)} stored"
            )

    def read_contig():
        data = yield from app.fh.read_at(0, start, end - start)
        return data

    got = run_read(read_contig())
    if got != expected:
        return "contiguous read_at differs from the stored bytes"

    # Collective read: two ranks split the regions.  A collective must be
    # entered by every rank of its communicator, so build a fresh 2-rank
    # sub-communicator rather than reusing the idle worker comm.
    comm2 = app.world.comm.sub([1, 2])
    mid = len(regions) // 2
    parts: Dict[int, bytes] = {}

    def read_coll(rank, mine):
        datas = yield from app.fh.read_at_all(comm2.view(rank), mine)
        parts[rank] = b"".join(datas)

    p0 = env.process(read_coll(0, regions[:mid]))
    p1 = env.process(read_coll(1, regions[mid:]))
    env.run(env.all_of([p0, p1]))
    if parts[0] + parts[1] != expected:
        return "collective two-phase read differs from the stored bytes"
    return None


def relation_hybrid_auto(case: CheckCase) -> Optional[str]:
    """hybrid-auto must write the same bytes as every static strategy.

    The adaptive selector only re-routes *who* writes each query's
    results; the stored content and the extent map are workload
    properties and may not depend on the per-query choices.
    """
    _, extents_h, digest_h = _run_signature(
        build_config(case, strategy="hybrid-auto", query_sync=False)
    )
    for strategy in STRATEGY_NAMES:
        _, extents_s, digest_s = _run_signature(
            build_config(case, strategy=strategy)
        )
        if (extents_h, digest_h) != (extents_s, digest_s):
            return (
                f"hybrid-auto output diverged from {strategy}: "
                f"{digest_h[:12]} != {digest_s[:12]}"
            )
    return None


RELATIONS: Dict[str, Relation] = {
    "strategies": relation_strategies,
    "query-sync": relation_query_sync,
    "server-stack": relation_server_stack,
    "replicas": relation_replicas,
    "jobs": relation_jobs,
    "empty-faults": relation_empty_faults,
    "arrivals": relation_arrivals,
    "read-strategies": relation_read_strategies,
    "hybrid-auto": relation_hybrid_auto,
}


# -- shrinking ---------------------------------------------------------------
def _shrink_candidates(case: CheckCase) -> List[CheckCase]:
    """Strictly smaller neighbours, most aggressive first per dimension."""
    candidates: List[CheckCase] = []
    for fieldname, floor in (
        ("nqueries", 1),
        ("nfragments", 1),
        ("nprocs", 2),
        ("nservers", 1),
        ("write_every", 1),
    ):
        value = getattr(case, fieldname)
        if value <= floor:
            continue
        steps = {floor, (value + floor) // 2, value - 1}
        for target in sorted(steps):
            if floor <= target < value:
                candidates.append(replace(case, **{fieldname: target}))
    return candidates


def shrink_case(
    case: CheckCase,
    still_fails: Callable[[CheckCase], bool],
    max_attempts: int = 64,
) -> CheckCase:
    """Greedy minimization: accept any smaller neighbour that still fails."""
    current = case
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in _shrink_candidates(current):
            attempts += 1
            if attempts > max_attempts:
                break
            failed = False
            try:
                failed = still_fails(candidate)
            except Exception:
                # A case that errors out still reproduces the problem.
                failed = True
            if failed:
                current = candidate
                improved = True
                break
    return current


# -- repro artifacts ---------------------------------------------------------
def write_artifact(
    path: str,
    relation: str,
    case: CheckCase,
    error: str,
    original: Optional[CheckCase] = None,
) -> None:
    """Persist a failing (shrunk) case so ``--replay`` can re-run it."""
    doc = {
        "format": ARTIFACT_FORMAT,
        "relation": relation,
        "case": asdict(case),
        "error": error,
    }
    if original is not None and original != case:
        doc["original_case"] = asdict(original)
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(doc, stream, indent=1, sort_keys=True)
        stream.write("\n")


def load_artifact(path: str) -> Tuple[str, CheckCase, str]:
    """Parse a repro artifact; returns (relation, case, recorded error)."""
    with open(path, "r", encoding="utf-8") as stream:
        doc = json.load(stream)
    if not isinstance(doc, dict) or doc.get("format") != ARTIFACT_FORMAT:
        raise ValueError(
            f"{path}: not a check artifact "
            f"(format={doc.get('format') if isinstance(doc, dict) else None!r})"
        )
    relation = doc.get("relation")
    if relation not in RELATIONS:
        raise ValueError(f"{path}: unknown relation {relation!r}")
    raw = doc.get("case")
    if not isinstance(raw, dict):
        raise ValueError(f"{path}: 'case' must be an object")
    try:
        case = CheckCase(**raw)
    except TypeError as exc:
        raise ValueError(f"{path}: bad case fields: {exc}") from None
    return relation, case, str(doc.get("error", ""))


def replay_artifact(path: str) -> Optional[str]:
    """Re-run an artifact's relation on its case; None means it now holds."""
    relation, case, _ = load_artifact(path)
    return _evaluate(RELATIONS[relation], case)


# -- the harness -------------------------------------------------------------
@dataclass(frozen=True)
class HarnessFailure:
    """One broken relation, minimized and (optionally) persisted."""

    relation: str
    case: CheckCase
    original: CheckCase
    error: str
    artifact: Optional[str] = None


@dataclass(frozen=True)
class HarnessReport:
    """What one harness run covered and what it found."""

    cases: int
    relations: Tuple[str, ...]
    checks_run: int
    failures: Tuple[HarnessFailure, ...]

    @property
    def ok(self) -> bool:
        return not self.failures


def _evaluate(relation: Relation, case: CheckCase) -> Optional[str]:
    """Run a relation defensively: an exception (e.g. an
    ``InvariantViolation`` surfacing mid-run) is a failure too."""
    try:
        return relation(case)
    except Exception as exc:
        return f"{type(exc).__name__}: {exc}"


def default_cases() -> int:
    """Case count, overridable via ``S3ASIM_CHECK_CASES`` (nightly CI)."""
    raw = os.environ.get(CASES_ENV, "")
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_CASES
    return value if value > 0 else DEFAULT_CASES


def run_harness(
    ncases: Optional[int] = None,
    seed: int = 0,
    relations: Optional[List[str]] = None,
    artifact_dir: Optional[str] = None,
    shrink: bool = True,
    log: Optional[Callable[[str], None]] = None,
) -> HarnessReport:
    """Draw cases, test every relation, shrink and persist any failure."""
    if ncases is None:
        ncases = default_cases()
    names = list(relations) if relations else list(RELATIONS)
    for name in names:
        if name not in RELATIONS:
            raise ValueError(
                f"unknown relation {name!r} (have {sorted(RELATIONS)})"
            )
    rng = random.Random(seed)
    failures: List[HarnessFailure] = []
    checks_run = 0
    for index in range(ncases):
        case = random_case(rng)
        for name in names:
            relation = RELATIONS[name]
            checks_run += 1
            error = _evaluate(relation, case)
            if error is None:
                if log is not None:
                    log(f"case {index} [{name}] ok ({case.label()})")
                continue
            if log is not None:
                log(f"case {index} [{name}] FAILED: {error}")
            shrunk = case
            if shrink:

                def _still_fails(candidate: CheckCase) -> bool:
                    return _evaluate(relation, candidate) is not None

                shrunk = shrink_case(case, _still_fails)
                if shrunk != case:
                    final = _evaluate(relation, shrunk)
                    if final is not None:
                        error = final
                    if log is not None:
                        log(f"  shrunk to {shrunk.label()}")
            artifact_path = None
            if artifact_dir is not None:
                os.makedirs(artifact_dir, exist_ok=True)
                artifact_path = os.path.join(
                    artifact_dir, f"check-{name}-{index}.json"
                )
                write_artifact(
                    artifact_path, name, shrunk, error, original=case
                )
                if log is not None:
                    log(f"  repro artifact: {artifact_path}")
            failures.append(
                HarnessFailure(
                    relation=name,
                    case=shrunk,
                    original=case,
                    error=error,
                    artifact=artifact_path,
                )
            )
    return HarnessReport(
        cases=ncases,
        relations=tuple(names),
        checks_run=checks_run,
        failures=tuple(failures),
    )
