"""Cross-layer correctness tooling: runtime invariants + metamorphic tests.

Only the lightweight invariant layer is exported here — the simulation
:class:`~repro.sim.environment.Environment` imports :data:`NULL_CHECKER`
at module load, so this package must not pull in the rest of the
simulator.  The metamorphic harness lives in
:mod:`repro.check.metamorphic` and is imported explicitly by its users
(CLI, tests).
"""

from .invariants import (
    NULL_CHECKER,
    InvariantChecker,
    InvariantViolation,
    NullChecker,
)

__all__ = [
    "NULL_CHECKER",
    "InvariantChecker",
    "InvariantViolation",
    "NullChecker",
]
