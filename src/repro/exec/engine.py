"""Parallel sweep execution: deterministic fan-out of independent runs.

Every paper figure is a sweep — dozens of :class:`SimulationConfig` points
that share nothing at runtime.  This module fans those points out across a
:class:`concurrent.futures.ProcessPoolExecutor` while keeping three
guarantees the serial loop gave for free:

* **Determinism** — each point rebuilds its :class:`~repro.sim.rng.
  RandomStreams` from the seed carried in its own config, so results are
  bit-identical whether points run serially, in parallel, or in any
  completion order.  :func:`derive_point_seed` additionally offers a
  stable per-point seed (sweep seed + point key) for sweeps that *want*
  independent randomness per point (replication); figure sweeps keep one
  shared seed so every strategy searches the identical workload.
* **Ordering** — outcomes come back in submission order regardless of
  which worker finished first, so tables and exports are reproducible.
* **Failure isolation** — a crashed point becomes a :class:`PointFailure`
  carrying its config summary and traceback instead of killing the sweep;
  the surviving points still complete and report.
"""

from __future__ import annotations

import hashlib
import sys
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Optional, Sequence, TextIO, Tuple

from ..core.app import run_simulation
from ..core.config import SimulationConfig
from ..core.report import RunResult
from ..obs.metrics import MetricsSnapshot

#: Hashable identifier of one sweep point, e.g. ``("mw", False, 8.0)``.
PointKey = Tuple[Any, ...]


def derive_point_seed(sweep_seed: int, key: Sequence[Any]) -> int:
    """A stable 63-bit seed derived from the sweep seed and a point key.

    The derivation is pure (BLAKE2 of the repr) — independent of process,
    platform, and execution order — so a re-run of any single point
    reproduces it exactly without running the rest of the sweep.
    """
    digest = hashlib.blake2b(
        repr((int(sweep_seed), tuple(key))).encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little") >> 1


@dataclass(frozen=True)
class PointSpec:
    """One unit of sweep work: a key naming the point and its full config."""

    key: PointKey
    config: SimulationConfig

    def reseeded(self, sweep_seed: Optional[int] = None) -> "PointSpec":
        """A copy whose config seed is derived from (sweep seed, key)."""
        base = self.config.seed if sweep_seed is None else sweep_seed
        return PointSpec(
            key=self.key,
            config=self.config.with_(seed=derive_point_seed(base, self.key)),
        )


@dataclass(frozen=True)
class PointFailure:
    """A sweep point that raised instead of producing a RunResult."""

    key: PointKey
    config: dict  # compact parameter summary of the failed point
    error: str  # "ExceptionType: message"
    traceback: str  # full formatted traceback from the worker

    def __str__(self) -> str:
        return f"point {self.key!r} ({self.config}): {self.error}"


@dataclass(frozen=True)
class PointOutcome:
    """What one sweep point produced: a result or a structured failure."""

    key: PointKey
    result: Optional[RunResult] = None
    failure: Optional[PointFailure] = None

    @property
    def ok(self) -> bool:
        return self.failure is None


class SweepExecutionError(RuntimeError):
    """Raised after a sweep completes when one or more points failed.

    Every surviving point still ran; ``failures`` carries the structured
    reports (config + traceback) of the ones that did not.
    """

    def __init__(self, failures: Sequence[PointFailure]) -> None:
        self.failures = list(failures)
        lines = [f"{len(self.failures)} sweep point(s) failed:"]
        lines.extend(f"  - {f}" for f in self.failures)
        lines.append("")
        lines.append("First failure traceback:")
        lines.append(self.failures[0].traceback.rstrip())
        super().__init__("\n".join(lines))


def _config_summary(config: SimulationConfig) -> dict:
    """The parameters someone needs to reproduce a failed point by hand."""
    return {
        "strategy": config.strategy,
        "query_sync": config.query_sync,
        "nprocs": config.nprocs,
        "nqueries": config.nqueries,
        "nfragments": config.nfragments,
        "seed": config.seed,
        "compute_speed": config.compute.speed,
        "write_every": config.write_every,
    }


def _run_point(spec: PointSpec) -> PointOutcome:
    """Execute one point; exceptions become structured failures.

    Top-level so it pickles for the process pool; ``jobs=1`` runs the very
    same function inline, keeping the two paths behaviorally identical.
    """
    try:
        result = run_simulation(spec.config)
    except Exception as exc:
        return PointOutcome(
            key=spec.key,
            failure=PointFailure(
                key=spec.key,
                config=_config_summary(spec.config),
                error=f"{type(exc).__name__}: {exc}",
                traceback=traceback.format_exc(),
            ),
        )
    return PointOutcome(key=spec.key, result=result)


def run_points(
    specs: Iterable[PointSpec],
    jobs: int = 1,
    progress: Optional[Callable[[PointOutcome], None]] = None,
) -> List[PointOutcome]:
    """Execute every spec and return outcomes in submission order.

    ``jobs == 1`` runs inline (no pool, no pickling); ``jobs > 1`` fans out
    across a process pool.  ``progress`` is called once per point as it
    completes — in completion order, which under parallel execution need
    not match submission order.
    """
    jobs = int(jobs)
    if jobs < 1:
        raise ValueError(
            f"jobs must be >= 1 (1 = run inline, N = process pool of N), "
            f"got {jobs}"
        )
    specs = list(specs)
    if jobs <= 1 or len(specs) <= 1:
        outcomes = []
        for spec in specs:
            outcome = _run_point(spec)
            outcomes.append(outcome)
            if progress is not None:
                progress(outcome)
        return outcomes

    slots: List[Optional[PointOutcome]] = [None] * len(specs)
    with ProcessPoolExecutor(max_workers=min(jobs, len(specs))) as pool:
        futures = {pool.submit(_run_point, spec): i for i, spec in enumerate(specs)}
        for future in as_completed(futures):
            index = futures[future]
            try:
                outcome = future.result()
            except BaseException as exc:
                # Pool-level failure (worker killed, unpicklable result,
                # broken pool): report it as this point's failure rather
                # than aborting the sweep.
                outcome = PointOutcome(
                    key=specs[index].key,
                    failure=PointFailure(
                        key=specs[index].key,
                        config=_config_summary(specs[index].config),
                        error=f"{type(exc).__name__}: {exc}",
                        traceback=traceback.format_exc(),
                    ),
                )
            slots[index] = outcome
            if progress is not None:
                progress(outcome)
    return [outcome for outcome in slots if outcome is not None]


def aggregate_point_metrics(
    outcomes: Iterable[PointOutcome],
) -> Optional[MetricsSnapshot]:
    """Merge the metrics snapshots of every successful outcome.

    Counters sum and histograms merge across points; entries keep their
    per-run constant labels (e.g. ``strategy``), so the aggregate still
    slices per strategy.  The merge is commutative and snapshots travel
    with their outcomes, so parallel sweeps (``jobs > 1``) aggregate to
    exactly the serial answer.  Returns ``None`` when no outcome carried a
    snapshot (metrics collection was off or every point failed).
    """
    snapshots = [
        o.result.metrics
        for o in outcomes
        if o.ok and o.result is not None and o.result.metrics is not None
    ]
    if not snapshots:
        return None
    return MetricsSnapshot.aggregate(snapshots)


def _format_seconds(seconds: float) -> str:
    if seconds != seconds or seconds == float("inf"):
        return "?"
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(seconds + 0.5), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


@dataclass
class ProgressReporter:
    """Prints completion/ETA lines as sweep points finish.

    Usable directly as the ``progress`` callback of :func:`run_points`.
    ETA is the simple remaining/rate estimate — good enough for sweeps
    whose points have comparable cost, which figure sweeps roughly do.
    """

    total: int
    label: str = "sweep"
    stream: Optional[TextIO] = None
    min_interval_s: float = 0.0
    done: int = 0
    failed: int = 0
    _t0: float = field(default_factory=time.monotonic)
    _last_print: float = 0.0

    def __call__(self, outcome: PointOutcome) -> None:
        self.done += 1
        if not outcome.ok:
            self.failed += 1
        now = time.monotonic()
        finished = self.done >= self.total
        if not finished and now - self._last_print < self.min_interval_s:
            return
        self._last_print = now
        elapsed = now - self._t0
        # Clamp the elapsed divisor: the first completion can land within
        # the clock's resolution of t0, and remaining/rate on an epsilon
        # elapsed prints absurd ETAs ("eta 0.0s" for an hour-long sweep).
        rate = self.done / max(elapsed, 1e-9)
        remaining = max(self.total - self.done, 0)
        eta = remaining / rate
        if elapsed < 1e-3 and not finished:
            eta = float("inf")  # too early to estimate; prints "?"
        failed = f", {self.failed} failed" if self.failed else ""
        line = (
            f"[{self.label}] {self.done}/{self.total} points{failed}  "
            f"elapsed {_format_seconds(elapsed)}  "
            f"eta {'done' if finished else _format_seconds(eta)}"
        )
        print(line, file=self.stream if self.stream is not None else sys.stderr, flush=True)
