"""Parallel sweep execution engine (deterministic fan-out of runs)."""

from .engine import (
    PointFailure,
    PointKey,
    PointOutcome,
    PointSpec,
    ProgressReporter,
    SweepExecutionError,
    aggregate_point_metrics,
    derive_point_seed,
    run_points,
)

__all__ = [
    "PointFailure",
    "PointKey",
    "PointOutcome",
    "PointSpec",
    "ProgressReporter",
    "SweepExecutionError",
    "aggregate_point_metrics",
    "derive_point_seed",
    "run_points",
]
