"""Declarative fault plans: what breaks, when, and for how long.

A :class:`FaultPlan` is an immutable description of the failures one run
should experience — worker crashes, I/O-server outages, degraded-bandwidth
windows, and message-loss windows.  Plans are pure data: the
:class:`~repro.faults.injector.FaultInjector` turns them into simulated
events, and any randomness (message drops) draws from the run's seeded
:class:`~repro.sim.rng.RandomStreams`, so the same (seed, plan) pair always
produces the same timeline.

The crash model is *transient fail-stop*: a worker dies at an instant,
loses all in-memory state (stored result batches, in-flight task), stays
down for ``downtime_s``, then reboots and rejoins the computation.  Master
(rank 0) crashes and permanent worker losses are out of scope — the
WW-Coll strategy's collective writes cannot shrink their membership, which
mirrors real MPI-2 era deployments where a lost rank killed the job unless
it came back.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from typing import IO, Tuple, Union

_INF = float("inf")


def _require_finite(name: str, value: float, positive: bool = False) -> None:
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if positive and value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    if not positive and value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


@dataclass(frozen=True)
class WorkerCrash:
    """One transient worker failure.

    ``rank`` is the world rank (>= 1; rank 0 is the master).  At
    ``at_time`` the worker process is interrupted, loses its volatile
    state, sleeps ``downtime_s``, and rejoins.
    """

    rank: int
    at_time: float
    downtime_s: float = 2.0

    def __post_init__(self) -> None:
        if self.rank < 1:
            raise ValueError(f"crash rank must be >= 1 (rank 0 is the master), got {self.rank}")
        _require_finite("at_time", self.at_time)
        _require_finite("downtime_s", self.downtime_s, positive=True)


@dataclass(frozen=True)
class ServerOutage:
    """An I/O server is unreachable during [start, start + duration)."""

    server_id: int
    start: float
    duration: float

    def __post_init__(self) -> None:
        if self.server_id < 0:
            raise ValueError(f"server_id must be >= 0, got {self.server_id}")
        _require_finite("start", self.start)
        _require_finite("duration", self.duration, positive=True)


@dataclass(frozen=True)
class ServerSlowdown:
    """An I/O server services requests ``factor``× slower in a window."""

    server_id: int
    start: float
    duration: float
    factor: float = 4.0

    def __post_init__(self) -> None:
        if self.server_id < 0:
            raise ValueError(f"server_id must be >= 0, got {self.server_id}")
        _require_finite("start", self.start)
        _require_finite("duration", self.duration, positive=True)
        if not math.isfinite(self.factor) or self.factor <= 0:
            raise ValueError(f"factor must be positive and finite, got {self.factor!r}")


@dataclass(frozen=True)
class ServerKill:
    """An I/O server dies permanently at ``at_time`` (hardware death).

    Unlike :class:`ServerOutage` there is no restore: the server is
    excluded from replica chains from the kill onward and its missed-write
    ledger is abandoned.  Only survivable with ``replicas >= 2`` — the
    config layer rejects plans that kill a replicas=1 volume's server or
    every member of one replica chain.
    """

    server_id: int
    at_time: float

    def __post_init__(self) -> None:
        if self.server_id < 0:
            raise ValueError(f"server_id must be >= 0, got {self.server_id}")
        _require_finite("at_time", self.at_time)


@dataclass(frozen=True)
class MessageLoss:
    """Messages crossing the wire are dropped with ``drop_prob`` in a window.

    Dropped messages are recovered by the network layer's retransmission
    protocol (timeout + exponential backoff); ``max_retries`` bounds the
    retransmissions before the transfer errors out.
    """

    drop_prob: float
    start: float = 0.0
    end: float = _INF
    retransmit_timeout_s: float = 2e-3
    backoff: float = 2.0
    max_retries: int = 12

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_prob < 1.0:
            raise ValueError(f"drop_prob must be in [0, 1), got {self.drop_prob!r}")
        _require_finite("start", self.start)
        if self.end < self.start:
            raise ValueError("end must be >= start")
        _require_finite("retransmit_timeout_s", self.retransmit_timeout_s, positive=True)
        if not math.isfinite(self.backoff) or self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff!r}")
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")


FaultSpec = Union[WorkerCrash, ServerOutage, ServerSlowdown, ServerKill, MessageLoss]


@dataclass(frozen=True)
class FaultToleranceConfig:
    """Knobs of the recovery protocol (master heartbeat/timeout detection).

    ``heartbeat_interval_s``: how often a live worker pings the master.
    ``detection_timeout_s``: silence after which the master declares a
    worker dead and reassigns its uncompleted work.
    ``poll_interval_s``: how often the injector re-checks a worker that is
    inside a critical section (collective, final drain) before delivering
    a crash — crashes are deferred past protocol-atomic regions.
    """

    heartbeat_interval_s: float = 0.25
    detection_timeout_s: float = 1.5
    poll_interval_s: float = 0.05

    def __post_init__(self) -> None:
        _require_finite("heartbeat_interval_s", self.heartbeat_interval_s, positive=True)
        _require_finite("detection_timeout_s", self.detection_timeout_s, positive=True)
        _require_finite("poll_interval_s", self.poll_interval_s, positive=True)
        if self.detection_timeout_s <= self.heartbeat_interval_s:
            raise ValueError(
                "detection_timeout_s must exceed heartbeat_interval_s "
                "(otherwise every worker is declared dead between beats)"
            )


@dataclass(frozen=True)
class FaultPlan:
    """The complete failure schedule of one run."""

    worker_crashes: Tuple[WorkerCrash, ...] = ()
    server_outages: Tuple[ServerOutage, ...] = ()
    server_slowdowns: Tuple[ServerSlowdown, ...] = ()
    server_kills: Tuple[ServerKill, ...] = ()
    message_loss: Tuple[MessageLoss, ...] = ()

    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan — runs must be bit-identical to a fault-free build."""
        return cls()

    @property
    def empty(self) -> bool:
        return not (
            self.worker_crashes
            or self.server_outages
            or self.server_slowdowns
            or self.server_kills
            or self.message_loss
        )

    @property
    def needs_tolerance(self) -> bool:
        """Whether the plan requires the master's recovery protocol.

        Server and link faults are transparent to the application protocol
        (clients retry); only worker crashes need heartbeats/reassignment.
        """
        return bool(self.worker_crashes)

    # -- canned scenario -----------------------------------------------------
    @classmethod
    def standard(
        cls,
        crash_rank: int = 1,
        crash_time: float = 8.0,
        downtime_s: float = 2.0,
        server_id: int = 0,
        slow_start: float = 3.0,
        slow_duration: float = 6.0,
        slow_factor: float = 4.0,
    ) -> "FaultPlan":
        """The benchmark scenario: one worker crash mid-search plus one
        degraded I/O-server window."""
        return cls(
            worker_crashes=(WorkerCrash(crash_rank, crash_time, downtime_s),),
            server_slowdowns=(
                ServerSlowdown(server_id, slow_start, slow_duration, slow_factor),
            ),
        )

    # -- (de)serialization ---------------------------------------------------
    def to_dict(self) -> dict:
        def clean(spec):
            d = asdict(spec)
            # JSON has no Infinity literal in strict parsers; use null.
            if d.get("end") == _INF:
                d["end"] = None
            return d

        return {
            "worker_crashes": [clean(c) for c in self.worker_crashes],
            "server_outages": [clean(o) for o in self.server_outages],
            "server_slowdowns": [clean(s) for s in self.server_slowdowns],
            "server_kills": [clean(k) for k in self.server_kills],
            "message_loss": [clean(m) for m in self.message_loss],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultPlan":
        known = {
            "worker_crashes",
            "server_outages",
            "server_slowdowns",
            "server_kills",
            "message_loss",
        }
        extra = set(doc) - known
        if extra:
            raise ValueError(f"unknown fault plan keys: {sorted(extra)}")

        def loss(d: dict) -> MessageLoss:
            d = dict(d)
            if d.get("end") is None:
                d["end"] = _INF
            return MessageLoss(**d)

        return cls(
            worker_crashes=tuple(
                WorkerCrash(**c) for c in doc.get("worker_crashes", [])
            ),
            server_outages=tuple(
                ServerOutage(**o) for o in doc.get("server_outages", [])
            ),
            server_slowdowns=tuple(
                ServerSlowdown(**s) for s in doc.get("server_slowdowns", [])
            ),
            server_kills=tuple(
                ServerKill(**k) for k in doc.get("server_kills", [])
            ),
            message_loss=tuple(loss(m) for m in doc.get("message_loss", [])),
        )

    def to_json(self, stream: IO[str]) -> None:
        json.dump(self.to_dict(), stream, indent=1)

    @classmethod
    def from_json(cls, stream: IO[str]) -> "FaultPlan":
        return cls.from_dict(json.load(stream))


def load_fault_plan(path: str) -> FaultPlan:
    """Read a :class:`FaultPlan` from a JSON file (CLI ``--fault-plan``)."""
    with open(path) as fh:
        return FaultPlan.from_json(fh)
