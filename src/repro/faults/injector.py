"""Turns a :class:`~repro.faults.plan.FaultPlan` into simulated events.

The injector owns one small process per planned fault:

* worker crashes interrupt the worker's rank process via
  :meth:`~repro.sim.process.Process.interrupt` — deferred while the worker
  is inside a protocol-critical section (setup broadcast, collective
  write, final drain/barrier), because a crash mid-collective would
  desynchronize the reserved-tag sequence that makes simulated collectives
  match up;
* server slowdowns degrade one I/O server's disk for a window and restore
  it exactly afterwards;
* server outages mark a server down (clients back off and retry until it
  returns);
* message loss installs a drop/ARQ model on the network (see
  :class:`~repro.mpi.network.LinkFaults`).

Every delivered fault is appended to :attr:`FaultInjector.events` and, when
a trace recorder is attached, also becomes a timeline interval (state
``crashed`` on the worker's rank row; server windows on synthetic negative
ranks ``-(server_id + 1)``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..sim import Environment, RandomStreams
from .plan import (
    FaultPlan,
    FaultToleranceConfig,
    ServerKill,
    ServerOutage,
    ServerSlowdown,
    WorkerCrash,
)


class WorkerCrashFault:
    """The ``Interrupt.cause`` delivered to a crashing worker."""

    __slots__ = ("rank", "downtime_s")

    def __init__(self, rank: int, downtime_s: float) -> None:
        self.rank = rank
        self.downtime_s = downtime_s

    def __repr__(self) -> str:
        return f"WorkerCrashFault(rank={self.rank}, downtime_s={self.downtime_s})"


class FaultInjector:
    """Schedules one run's planned faults into the simulation."""

    def __init__(
        self,
        env: Environment,
        plan: FaultPlan,
        tolerance: FaultToleranceConfig,
        network=None,
        fs=None,
        streams: Optional[RandomStreams] = None,
        recorder=None,
    ) -> None:
        self.env = env
        self.plan = plan
        self.tolerance = tolerance
        self.network = network
        self.fs = fs
        self.streams = streams
        self.recorder = recorder
        self.events: List[Dict[str, Any]] = []
        self._workers: Dict[int, Tuple[Any, Any]] = {}
        self.crashes_delivered = 0
        self.crashes_skipped = 0

    # -- wiring ---------------------------------------------------------------
    def register_worker(self, rank: int, worker, process) -> None:
        """Associate a world rank with its state machine and DES process."""
        self._workers[rank] = (worker, process)

    def start(self) -> None:
        """Install link faults and spawn one process per planned fault."""
        if self.plan.message_loss and self.network is not None:
            from ..mpi.network import LinkFaults

            rng = (
                self.streams.stream("link")
                if self.streams is not None
                else RandomStreams(0).stream("link")
            )
            self.network.install_faults(LinkFaults(self.plan.message_loss, rng))
            self._log("link-faults-installed", windows=len(self.plan.message_loss))
        for crash in self.plan.worker_crashes:
            self.env.process(self._run_crash(crash), name=f"fault-crash-r{crash.rank}")
        for slow in self.plan.server_slowdowns:
            self.env.process(
                self._run_slowdown(slow), name=f"fault-slow-s{slow.server_id}"
            )
        for outage in self.plan.server_outages:
            self.env.process(
                self._run_outage(outage), name=f"fault-outage-s{outage.server_id}"
            )
        for kill in self.plan.server_kills:
            self.env.process(
                self._run_kill(kill), name=f"fault-kill-s{kill.server_id}"
            )

    # -- fault processes ------------------------------------------------------
    def _run_crash(self, spec: WorkerCrash):
        yield self.env.timeout(spec.at_time)
        entry = self._workers.get(spec.rank)
        if entry is None:
            self.crashes_skipped += 1
            self._log("crash-skipped", rank=spec.rank, reason="no such worker")
            return
        worker, process = entry
        # Defer past critical sections (collectives, setup, final drain)
        # and past an earlier crash's downtime window.
        while process.is_alive and (
            getattr(worker, "in_critical_section", False)
            or getattr(worker, "crashed", False)
        ):
            yield self.env.timeout(self.tolerance.poll_interval_s)
        if not process.is_alive:
            self.crashes_skipped += 1
            self._log("crash-skipped", rank=spec.rank, reason="worker already finished")
            return
        now = self.env.now
        self.crashes_delivered += 1
        self._log("worker-crash", rank=spec.rank, downtime_s=spec.downtime_s)
        if self.recorder is not None:
            self.recorder.record(spec.rank, "crashed", now, now + spec.downtime_s)
        process.interrupt(WorkerCrashFault(spec.rank, spec.downtime_s))

    def _run_slowdown(self, spec: ServerSlowdown):
        yield self.env.timeout(spec.start)
        if self.fs is None:
            return
        self.fs.set_degraded(spec.server_id, spec.factor)
        self._log("server-degraded", server=spec.server_id, factor=spec.factor)
        if self.recorder is not None:
            self.recorder.record(
                -(spec.server_id + 1),
                "server_degraded",
                self.env.now,
                self.env.now + spec.duration,
            )
        yield self.env.timeout(spec.duration)
        self.fs.clear_degraded(spec.server_id)
        self._log("server-restored", server=spec.server_id)

    def _run_outage(self, spec: ServerOutage):
        yield self.env.timeout(spec.start)
        if self.fs is None:
            return
        self.fs.fail_server(spec.server_id)
        self._log("server-outage", server=spec.server_id)
        if self.recorder is not None:
            self.recorder.record(
                -(spec.server_id + 1),
                "server_outage",
                self.env.now,
                self.env.now + spec.duration,
            )
        yield self.env.timeout(spec.duration)
        self.fs.restore_server(spec.server_id)
        self._log("server-back", server=spec.server_id)

    def _run_kill(self, spec: ServerKill):
        yield self.env.timeout(spec.at_time)
        if self.fs is None:
            return
        self.fs.kill_server(spec.server_id)
        self._log("server-killed", server=spec.server_id)
        if self.recorder is not None:
            # The window is open-ended; echo it to the end of the plan's
            # knowledge (the checker exempts plan-window rows from the
            # ends-within-run law).
            self.recorder.record(
                -(spec.server_id + 1),
                "server_killed",
                self.env.now,
                self.env.now,
            )

    # -- observability --------------------------------------------------------
    def _log(self, kind: str, **fields) -> None:
        self.events.append({"time": self.env.now, "kind": kind, **fields})

    def stats(self) -> Dict[str, float]:
        return {
            "crashes_delivered": float(self.crashes_delivered),
            "crashes_skipped": float(self.crashes_skipped),
            "slowdown_windows": float(len(self.plan.server_slowdowns)),
            "outage_windows": float(len(self.plan.server_outages)),
            "server_kills": float(len(self.plan.server_kills)),
        }
