"""Deterministic fault injection and the recovery protocol's configuration.

``plan`` declares *what* fails (pure data, JSON-serializable);
``injector`` makes it happen inside the DES.  The tolerance mechanisms
themselves live where the affected state lives: heartbeat/reassignment in
``repro.core.master``/``worker``, drop/ARQ in ``repro.mpi.network``, and
outage retry in ``repro.pvfs.filesystem``.
"""

from .injector import FaultInjector, WorkerCrashFault
from .plan import (
    FaultPlan,
    FaultToleranceConfig,
    MessageLoss,
    ServerKill,
    ServerOutage,
    ServerSlowdown,
    WorkerCrash,
    load_fault_plan,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultToleranceConfig",
    "MessageLoss",
    "ServerKill",
    "ServerOutage",
    "ServerSlowdown",
    "WorkerCrash",
    "WorkerCrashFault",
    "load_fault_plan",
]
