"""Command-line interface: ``s3asim run|sweep|trace|validate``.

Examples
--------
Run one simulation and print the phase breakdown::

    s3asim run --nprocs 64 --strategy ww-list --query-sync

Reproduce Figure 2's data (reduced axis for speed)::

    s3asim sweep processes --counts 2,8,32,96

Reproduce Figure 5's data::

    s3asim sweep speed --speeds 0.1,1,25.6 --nprocs 64

Render an ASCII Jumpshot timeline::

    s3asim trace --nprocs 8 --strategy ww-coll --width 120
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import List, Optional

from .analysis import (
    ALL_STRATEGIES,
    FIG2_RATIOS_PCT,
    arrival_sweep,
    compute_speed_sweep,
    masters_sweep,
    overall_table,
    phase_table,
    process_scaling_sweep,
    ratio_table,
    replica_sweep,
    server_cache_sweep,
    strategy_grid,
)
from .cluster.presets import get_preset
from .core import HybridS3aSim, S3aSim, SimulationConfig
from .core.scenarios import SCENARIOS, get_scenario
from .faults import FaultPlan, load_fault_plan
from .core.phases import Phase
from .core.strategies import HYBRID_AUTO, STRATEGIES
from .exec import PointSpec, ProgressReporter, aggregate_point_metrics, run_points
from .obs import MetricsSnapshot, export_metrics_csv, export_metrics_json
from .serve import (
    ADMISSION_POLICIES,
    ARRIVAL_PROCESSES,
    ArrivalConfig,
    format_latency,
)
from .shard import PLACEMENTS, ShardConfig
from .trace import TraceRecorder, export_json, render_timeline
from .workload import ComputeModel, load_workload_kwargs, save_workload


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nprocs", type=int, default=16)
    parser.add_argument(
        "--strategy",
        choices=sorted(STRATEGIES) + [HYBRID_AUTO],
        default="ww-list",
    )
    parser.add_argument("--query-sync", action="store_true")
    parser.add_argument("--nqueries", type=int, default=20)
    parser.add_argument("--nfragments", type=int, default=128)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--compute-speed", type=float, default=1.0)
    parser.add_argument("--write-every", type=int, default=1)
    parser.add_argument(
        "--cluster",
        choices=["feynman", "feynman-cached", "feynman-replicated", "gige", "modern"],
        default="feynman",
    )
    parser.add_argument(
        "--disk-sched",
        choices=["fifo", "elevator"],
        default=None,
        help="per-server disk-queue scheduler (elevator = starvation-bounded "
        "C-SCAN; default: the cluster preset's, fifo on feynman)",
    )
    parser.add_argument(
        "--server-cache-mib",
        type=float,
        default=None,
        metavar="MIB",
        help="per-server write-back cache size in MiB (0 disables; "
        "default: the cluster preset's, off on feynman)",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=None,
        metavar="N",
        help="copies of every strip on N consecutive servers (1 = none, the "
        "seed behaviour; 2+ adds degraded-mode failover and background "
        "rebuild; default: the cluster preset's)",
    )
    parser.add_argument(
        "--store-data",
        action="store_true",
        help="generate and verify actual output bytes (slower)",
    )
    parser.add_argument(
        "--workload",
        help="load workload parameters from a JSON file (see "
        "repro.workload.save_workload)",
    )
    parser.add_argument(
        "--scenario",
        choices=sorted(SCENARIOS),
        help="apply a named historical scenario (mpiblast-1.2, pioblast, ...)",
    )
    parser.add_argument(
        "--fault-plan",
        help="inject faults from a FaultPlan JSON file (see repro.faults)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan independent simulation points out over N worker processes "
        "(sweep / fault-sweep; results are bit-identical to --jobs 1)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="audit cross-layer invariants during the run (repro.check); "
        "zero-cost in simulated time, aborts on the first violation",
    )
    parser.add_argument(
        "--scheduler",
        choices=["heap", "calendar"],
        default="heap",
        help="event-queue backend: heap (default) or calendar (O(1) "
        "calendar queue; bit-identical results, faster at scale)",
    )
    parser.add_argument(
        "--fluid-threshold-kib",
        type=float,
        default=None,
        metavar="KIB",
        help="model transfers of at least this many KiB as fluid flows "
        "with max-min fair bandwidth sharing instead of per-message "
        "serialization holds (default: off, every transfer on the "
        "packet path)",
    )
    parser.add_argument(
        "--arrival",
        choices=list(ARRIVAL_PROCESSES),
        default=None,
        help="serve mode: inject queries via this open-loop arrival process "
        "instead of the pre-loaded closed batch (default: batch mode)",
    )
    parser.add_argument(
        "--arrival-rate",
        type=float,
        default=20.0,
        metavar="QPS",
        help="serve mode: mean offered load in queries per second",
    )
    parser.add_argument(
        "--arrival-horizon",
        type=float,
        default=None,
        metavar="S",
        help="serve mode: stop generating arrivals after this many simulated "
        "seconds (default: stop after --nqueries arrivals)",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=64,
        metavar="N",
        help="serve mode: admission bound on queries admitted but not yet "
        "durable; arrivals beyond it are rejected or shed",
    )
    parser.add_argument(
        "--admission",
        choices=list(ADMISSION_POLICIES),
        default="reject",
        help="serve mode: what to do with an arrival when the pending queue "
        "is full (reject it, or shed the youngest unstarted query)",
    )
    parser.add_argument(
        "--priority-fraction",
        type=float,
        default=0.0,
        metavar="F",
        help="serve mode: fraction of arrivals tagged priority and queued "
        "ahead of normal work (ignored by ww-coll, whose collective "
        "writes require FIFO assignment)",
    )
    parser.add_argument(
        "--masters",
        type=int,
        default=1,
        metavar="M",
        help="serve mode: shard the ranks into M independent master/worker "
        "pools sharing the network and PVFS volume (1 = the seed's "
        "single-master topology, bit-identical)",
    )
    parser.add_argument(
        "--placement",
        choices=list(PLACEMENTS),
        default="hash",
        help="sharded serve mode: how arrivals map to masters (hash of the "
        "arrival index, or contiguous ranges — deliberately skewed, the "
        "work-stealing showcase)",
    )
    parser.add_argument(
        "--no-steal",
        action="store_true",
        help="sharded serve mode: disable work-stealing between masters",
    )


def _config_from(args: argparse.Namespace) -> SimulationConfig:
    if getattr(args, "jobs", 1) < 1:
        raise SystemExit(
            "--jobs must be >= 1 (1 = run inline, N = process pool of N)"
        )
    preset = get_preset(args.cluster)
    pvfs_overrides = {}
    if getattr(args, "disk_sched", None) is not None:
        pvfs_overrides["disk_sched"] = args.disk_sched
    if getattr(args, "server_cache_mib", None) is not None:
        if args.server_cache_mib < 0:
            raise SystemExit("--server-cache-mib must be non-negative")
        pvfs_overrides["server_cache_B"] = int(args.server_cache_mib * 1024 * 1024)
    if getattr(args, "replicas", None) is not None:
        if args.replicas < 1:
            raise SystemExit("--replicas must be >= 1")
        pvfs_overrides["replicas"] = args.replicas
    if pvfs_overrides:
        preset = preset.with_pvfs(**pvfs_overrides)
    network = preset.network
    if getattr(args, "fluid_threshold_kib", None) is not None:
        if args.fluid_threshold_kib <= 0:
            raise SystemExit("--fluid-threshold-kib must be positive")
        network = replace(
            network, fluid_threshold_B=int(args.fluid_threshold_kib * 1024)
        )
    kwargs = dict(
        nprocs=args.nprocs,
        strategy=args.strategy,
        query_sync=args.query_sync,
        nqueries=args.nqueries,
        nfragments=args.nfragments,
        compute=ComputeModel(speed=args.compute_speed),
        write_every=args.write_every,
        network=network,
        pvfs=preset.pvfs,
        store_data=args.store_data,
        check=getattr(args, "check", False),
        scheduler=getattr(args, "scheduler", "heap"),
    )
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if getattr(args, "arrival", None):
        try:
            kwargs["arrival"] = ArrivalConfig(
                process=args.arrival,
                rate=args.arrival_rate,
                horizon_s=args.arrival_horizon,
                max_pending=args.max_pending,
                policy=args.admission,
                priority_fraction=args.priority_fraction,
            )
        except ValueError as exc:
            raise SystemExit(f"invalid arrival configuration: {exc}")
    if getattr(args, "masters", 1) > 1:
        if "arrival" not in kwargs:
            raise SystemExit(
                "--masters needs serve mode (give --arrival, or use "
                "`s3asim serve`)"
            )
        try:
            kwargs["shard"] = ShardConfig(
                nshards=args.masters,
                placement=getattr(args, "placement", "hash"),
                steal=not getattr(args, "no_steal", False),
            )
        except ValueError as exc:
            raise SystemExit(f"invalid shard configuration: {exc}")
    if getattr(args, "workload", None):
        with open(args.workload) as fh:
            loaded = load_workload_kwargs(fh)
        if args.seed is not None:
            loaded["seed"] = args.seed
        loaded["compute"] = ComputeModel(
            startup_s=loaded["compute"].startup_s,
            rate_s_per_byte=loaded["compute"].rate_s_per_byte,
            speed=args.compute_speed,
            startup_scales=loaded["compute"].startup_scales,
        )
        kwargs.update(loaded)
    if getattr(args, "fault_plan", None):
        kwargs["fault_plan"] = load_fault_plan(args.fault_plan)
    try:
        config = SimulationConfig(**kwargs)
    except ValueError as exc:
        raise SystemExit(str(exc))
    if getattr(args, "scenario", None):
        config = get_scenario(args.scenario, config)
    return config


def _cmd_run(args: argparse.Namespace) -> int:
    cfg = _config_from(args)
    if getattr(args, "save_workload", None):
        with open(args.save_workload, "w") as fh:
            save_workload(cfg, fh)
        print(f"workload parameters written to {args.save_workload}")
    app = S3aSim(cfg)
    result = app.run()
    print(result.summary_line())
    checker = app.world.env.check
    if checker.enabled:
        summary = checker.summary()
        kinds = "  ".join(
            f"{kind}={sent}/{delivered}"
            for kind, (sent, _, delivered, _) in summary["messages"].items()
        )
        print(
            f"invariants: {summary['checks']} checks passed "
            f"(wire {summary['tx_bytes']} B tx / {summary['rx_bytes']} B rx, "
            f"msgs sent/delivered {kinds})"
        )
        if summary.get("replica_writes"):
            print(
                f"replication: {summary['replica_writes']} replicated writes, "
                f"{summary['replica_acked_bytes']} B acked on live replicas, "
                f"{summary['replica_outstanding_bytes']} B durability gap open"
            )
    print()
    print(f"{'phase':>20s} {'master':>12s} {'worker mean':>12s}")
    wm = result.worker_mean
    for phase in Phase:
        print(
            f"{phase.value:>20s} {result.master[phase]:>12.3f} {wm[phase]:>12.3f}"
        )
    fstat = result.file_stats
    print()
    print(
        f"output file: {fstat.total_bytes} bytes in {fstat.nextents} extent(s), "
        f"expected {fstat.expected_bytes}, complete={fstat.complete}"
    )
    if result.serve_stats:
        print()
        _print_serve_stats(result.serve_stats)
    if result.fault_stats:
        print()
        print("faults/recovery:")
        for name in sorted(result.fault_stats):
            value = result.fault_stats[name]
            if value:
                print(f"  {name:24s} {value:g}")
    return 0 if fstat.complete else 1


def _print_serve_stats(serve: dict, indent: str = "") -> None:
    """Admission counters and completion-latency percentiles of one run.

    Latency fields are NaN when nothing completed (a cutoff before the
    first durable query); they print as ``-``, not a fabricated 0.000.
    """
    transfers = ""
    if serve.get("donated") or serve.get("stolen") or serve.get("steals"):
        stolen = serve.get("stolen", serve.get("steals", 0))
        transfers = (
            f" donated={serve.get('donated', 0):g} stolen={stolen:g}"
        )
    print(
        f"{indent}arrivals: offered={serve.get('offered', 0):g} "
        f"admitted={serve.get('admitted', 0):g} "
        f"rejected={serve.get('rejected', 0):g} "
        f"shed={serve.get('shed', 0):g} "
        f"completed={serve.get('completed', 0):g} "
        f"pending={serve.get('pending', 0):g}"
        f"{transfers}"
    )
    print(
        f"{indent}latency:  mean={format_latency(serve.get('latency_mean_s', 0.0))}s "
        f"p50={format_latency(serve.get('latency_p50_s', 0.0))}s "
        f"p95={format_latency(serve.get('latency_p95_s', 0.0))}s "
        f"p99={format_latency(serve.get('latency_p99_s', 0.0))}s "
        f"max={format_latency(serve.get('latency_max_s', 0.0))}s"
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    """Online service mode: open-loop arrivals against the running master."""
    if not getattr(args, "arrival", None):
        args.arrival = args.preset
    cfg = _config_from(args).with_(collect_metrics=True)
    if cfg.shard is not None and cfg.shard.nshards > 1:
        from .shard.group import MasterGroup

        group = MasterGroup(cfg)
        result = group.run(until=args.until)
        print(result.summary_line())
        _print_serve_stats(result.serve_stats)
        for index, shard_stats in enumerate(result.shard_serve_stats):
            print(f"shard {index}:")
            _print_serve_stats(shard_stats, indent="  ")
        env = group.world.env
    else:
        app = S3aSim(cfg)
        result = app.run(until=args.until)
        print(result.summary_line())
        _print_serve_stats(result.serve_stats)
        env = app.world.env
    checker = env.check
    if checker.enabled:
        summary = checker.summary()
        arrivals = summary.get("arrivals", {})
        stolen = arrivals.get("stolen", 0)
        print(
            f"invariants: {summary['checks']} checks passed "
            f"(arrival law offered+stolen={arrivals.get('offered', 0)}"
            f"+{stolen} = "
            f"admitted+rejected={arrivals.get('admitted', 0)}"
            f"+{arrivals.get('rejected', 0)})"
        )
    if args.json:
        import json as _json

        with open(args.json, "w") as fh:
            _json.dump(result.as_dict(), fh, indent=2)
        print(f"result exported to {args.json}")
    if args.until is not None:
        return 0  # a horizon cutoff legitimately leaves pending queries
    return 0 if result.file_stats.complete else 1


def _print_latency_table(sweep, x_label: str = "rate qps") -> None:
    """x-vs-latency rows, one per (strategy, x) serve-mode point."""
    print(
        f"{'strategy':10s} {x_label:>9s} {'offered':>8s} {'admitted':>9s} "
        f"{'rejected':>9s} {'shed':>6s} {'p50 s':>8s} {'p95 s':>8s} {'p99 s':>8s}"
    )
    for strategy in sweep.strategies():
        for x, result in sweep.series(strategy, False):
            s = result.serve_stats
            print(
                f"{strategy:10s} {x:>9g} {s.get('offered', 0):>8g} "
                f"{s.get('admitted', 0):>9g} {s.get('rejected', 0):>9g} "
                f"{s.get('shed', 0):>6g} "
                f"{format_latency(s.get('latency_p50_s', 0.0)):>8s} "
                f"{format_latency(s.get('latency_p95_s', 0.0)):>8s} "
                f"{format_latency(s.get('latency_p99_s', 0.0)):>8s}"
            )


def _print_server_table(snapshot: MetricsSnapshot, strategy: str) -> None:
    servers = snapshot.label_values("pvfs.requests", "server")
    print(
        f"{'server':>6s} {'requests':>9s} {'regions':>9s} {'seeks':>7s} "
        f"{'seq':>7s} {'KiB written':>12s} {'syncs':>6s}"
    )
    want = {"strategy": strategy}
    for server in servers:
        print(
            f"{server:>6d} "
            f"{snapshot.counter_total('pvfs.requests', server=server, **want):>9g} "
            f"{snapshot.counter_total('pvfs.regions', server=server, **want):>9g} "
            f"{snapshot.counter_total('pvfs.seeks', server=server, **want):>7g} "
            f"{snapshot.counter_total('pvfs.sequential_runs', server=server, **want):>7g} "
            f"{snapshot.counter_total('pvfs.bytes_written', server=server, **want) / 1024:>12.1f} "
            f"{snapshot.counter_total('pvfs.syncs', server=server, **want):>6g}"
        )


def _print_server_stack(snapshot: MetricsSnapshot, strategy: str) -> None:
    """Metadata-server and I/O-stack lines (omitted when all zero)."""
    want = {"strategy": strategy}
    ops = snapshot.counter_total("pvfs.metadata_ops", **want)
    if ops:
        summary = snapshot.histogram_summary("pvfs.metadata_seconds", **want)
        mean_ms = summary.mean * 1000.0 if summary is not None else 0.0
        print(f"metadata: {ops:g} ops, mean {mean_ms:.3f} ms (incl. queueing)")
    hits = snapshot.counter_total("pvfs.cache_hits", **want)
    misses = snapshot.counter_total("pvfs.cache_misses", **want)
    flushes = snapshot.counter_total("pvfs.cache_flushes", **want)
    absorbed = snapshot.counter_total("pvfs.cache_absorbed_bytes", **want)
    if flushes or hits or misses or absorbed:
        flush_summary = snapshot.histogram_summary(
            "pvfs.cache_flush_bytes", **want
        )
        mean_flush_kib = (
            flush_summary.mean / 1024.0 if flush_summary is not None else 0.0
        )
        print(
            f"cache: absorbed {absorbed / 1024:.1f} KiB, "
            f"read hits={hits:g} misses={misses:g}, "
            f"flushes={flushes:g} (mean {mean_flush_kib:.1f} KiB)"
        )
    depth = snapshot.histogram_summary("pvfs.disk_queue_depth", **want)
    if depth is not None and depth.count:
        print(
            f"disk queue: {depth.count:g} requests, "
            f"mean depth {depth.mean:.2f}, max {depth.max:.0f}"
        )
    replica = snapshot.counter_total("pvfs.replica_bytes", **want)
    rebuild = snapshot.counter_total("pvfs.rebuild_bytes", **want)
    lost = snapshot.counter_total("pvfs.cache_lost_bytes", **want)
    if replica or rebuild or lost:
        print(
            f"replication: {replica / 1024:.1f} KiB replica copies, "
            f"{rebuild / 1024:.1f} KiB rebuilt, "
            f"{lost / 1024:.1f} KiB cache lost"
        )


def _print_phase_table(snapshot: MetricsSnapshot, strategy: str) -> None:
    ranks = snapshot.label_values("app.phase_seconds", "rank")
    phases = [p.value for p in Phase if p is not Phase.OTHER]
    header = " ".join(f"{p[:12]:>13s}" for p in phases)
    print(f"{'rank':>5s} {header}")
    for rank in ranks:
        row = " ".join(
            f"{snapshot.counter_total('app.phase_seconds', rank=rank, phase=p, strategy=strategy):>13.3f}"
            for p in phases
        )
        print(f"{rank:>5d} {row}")


def _print_mpi_summary(snapshot: MetricsSnapshot, strategy: str) -> None:
    kinds = snapshot.label_values("mpi.messages", "kind")
    parts = []
    for kind in kinds:
        messages = snapshot.counter_total("mpi.messages", kind=kind, strategy=strategy)
        mib = snapshot.counter_total("mpi.bytes", kind=kind, strategy=strategy) / (1024 * 1024)
        parts.append(f"{kind}={messages:g} msgs/{mib:.2f} MiB")
    print("mpi: " + "  ".join(parts))
    mpiio = [
        (name, snapshot.counter_total(name, strategy=strategy))
        for name in snapshot.counter_names()
        if name.startswith("mpiio.")
    ]
    if mpiio:
        print("mpiio: " + "  ".join(f"{n[6:]}={v:g}" for n, v in mpiio))


def _strategy_summary_row(snapshot: MetricsSnapshot, result, strategy: str) -> str:
    requests = snapshot.counter_total("pvfs.requests", strategy=strategy)
    regions = snapshot.counter_total("pvfs.regions", strategy=strategy)
    seeks = snapshot.counter_total("pvfs.seeks", strategy=strategy)
    syncs = snapshot.counter_total("pvfs.syncs", strategy=strategy)
    mib = snapshot.counter_total("pvfs.bytes_written", strategy=strategy) / (1024 * 1024)
    per_request = regions / requests if requests else 0.0
    return (
        f"{strategy:10s} {result.elapsed:>9.3f} {requests:>9g} {per_request:>11.1f} "
        f"{seeks:>8g} {syncs:>7g} {mib:>9.2f}"
    )


def _cmd_stats(args: argparse.Namespace) -> int:
    """Run with metrics enabled and report the per-layer counters."""
    cfg = _config_from(args).with_(collect_metrics=True)
    strategies = sorted(STRATEGIES) if args.compare else [cfg.strategy]
    specs = [
        PointSpec(key=(strategy,), config=cfg.with_(strategy=strategy))
        for strategy in strategies
    ]
    outcomes = run_points(specs, jobs=args.jobs)
    failed = [o for o in outcomes if not o.ok]
    for outcome in failed:
        print(f"{outcome.key[0]}: FAILED: {outcome.failure.error}", file=sys.stderr)
        print(outcome.failure.traceback, file=sys.stderr)
    ok = [o for o in outcomes if o.ok]

    if args.compare and ok:
        print(
            f"{'strategy':10s} {'elapsed s':>9s} {'requests':>9s} {'regions/req':>11s} "
            f"{'seeks':>8s} {'syncs':>7s} {'MiB out':>9s}"
        )
        for outcome in ok:
            print(
                _strategy_summary_row(
                    outcome.result.metrics, outcome.result, outcome.key[0]
                )
            )
        print()

    for outcome in ok:
        strategy = outcome.key[0]
        snapshot = outcome.result.metrics
        print(f"--- {strategy} ---")
        _print_server_table(snapshot, strategy)
        _print_server_stack(snapshot, strategy)
        if outcome.result.serve_stats:
            _print_serve_stats(outcome.result.serve_stats)
        print()
        print("per-rank phase seconds:")
        _print_phase_table(snapshot, strategy)
        _print_mpi_summary(snapshot, strategy)
        print()

    combined = aggregate_point_metrics(outcomes)
    if combined is not None:
        if args.json:
            with open(args.json, "w") as fh:
                export_metrics_json(combined, fh)
            print(f"metrics exported to {args.json}")
        if args.csv:
            with open(args.csv, "w") as fh:
                export_metrics_csv(combined, fh)
            print(f"metrics exported to {args.csv}")
    return 1 if failed else 0


def _cmd_fault_sweep(args: argparse.Namespace) -> int:
    """Per-strategy robustness comparison under one canned fault scenario."""
    cfg = _config_from(args)
    plan = FaultPlan.standard(
        crash_rank=args.crash_rank,
        crash_time=args.crash_time,
        downtime_s=args.downtime,
        server_id=args.slow_server,
        slow_start=args.slow_start,
        slow_duration=args.slow_duration,
        slow_factor=args.slow_factor,
    )
    if getattr(args, "fault_plan", None):
        plan = load_fault_plan(args.fault_plan)
    # Every (strategy, clean/faulted) pair is an independent run — fan them
    # out through the sweep engine (``--jobs``), then print in order.
    specs = [
        PointSpec(
            key=(strategy, variant),
            config=cfg.with_(
                strategy=strategy,
                fault_plan=FaultPlan.none() if variant == "clean" else plan,
            ),
        )
        for strategy in sorted(STRATEGIES)
        for variant in ("clean", "faulted")
    ]
    outcomes = {o.key: o for o in run_points(specs, jobs=args.jobs)}
    print(
        f"{'strategy':10s} {'clean s':>10s} {'faulted s':>10s} {'inflation':>10s} "
        f"{'reassigned':>10s} {'repairs':>8s} {'complete':>8s}"
    )
    status = 0
    for strategy in sorted(STRATEGIES):
        clean_o, faulted_o = outcomes[(strategy, "clean")], outcomes[(strategy, "faulted")]
        if not clean_o.ok or not faulted_o.ok:
            failure = clean_o.failure or faulted_o.failure
            print(f"{strategy:10s} FAILED: {failure.error}", file=sys.stderr)
            print(failure.traceback, file=sys.stderr)
            status |= 1
            continue
        clean, faulted = clean_o.result, faulted_o.result
        inflation = 100.0 * (faulted.elapsed / clean.elapsed - 1.0)
        complete = faulted.file_stats.complete
        status |= 0 if complete else 1
        print(
            f"{strategy:10s} {clean.elapsed:>10.3f} {faulted.elapsed:>10.3f} "
            f"{inflation:>9.1f}% "
            f"{faulted.fault_stats.get('tasks_reassigned', 0):>10g} "
            f"{faulted.fault_stats.get('repairs_issued', 0):>8g} "
            f"{str(complete):>8s}"
        )
    print("FAULT SWEEP", "PASSED" if status == 0 else "FAILED")
    return status


def _sweep_reporter(args: argparse.Namespace, total: int) -> Optional[ProgressReporter]:
    """Progress/ETA lines on stderr for parallel or verbose sweeps."""
    if args.jobs > 1 or args.verbose:
        return ProgressReporter(total=total, label=f"sweep/{args.axis}")
    return None


def _cmd_sweep(args: argparse.Namespace) -> int:
    cfg = _config_from(args)
    strategies = [s.strip() for s in args.strategies.split(",") if s.strip()]
    valid = sorted(STRATEGIES) + [HYBRID_AUTO]
    unknown = [s for s in strategies if s not in valid]
    if unknown:
        print(
            f"unknown strategies {', '.join(unknown)}; "
            f"choose from {', '.join(valid)}",
            file=sys.stderr,
        )
        return 2
    progress = (
        (lambda p: print(p.result.summary_line(), file=sys.stderr))
        if args.verbose
        else None
    )
    # Strategy × sync grid per axis value (hybrid-auto has no sync series).
    npoints_per_x = len(strategy_grid(strategies, (False, True)))
    if args.axis == "processes":
        counts = [int(x) for x in args.counts.split(",")]
        reporter = _sweep_reporter(args, len(counts) * npoints_per_x)
        sweep = process_scaling_sweep(
            cfg,
            process_counts=counts,
            strategies=strategies,
            progress=progress,
            jobs=args.jobs,
            reporter=reporter,
        )
        headline_x: Optional[float] = float(max(counts))
    elif args.axis == "speed":
        speeds = [float(x) for x in args.speeds.split(",")]
        reporter = _sweep_reporter(args, len(speeds) * npoints_per_x)
        sweep = compute_speed_sweep(
            cfg,
            speeds=speeds,
            strategies=strategies,
            nprocs=args.nprocs,
            progress=progress,
            jobs=args.jobs,
            reporter=reporter,
        )
        headline_x = float(max(speeds))
    elif args.axis == "cache":  # server write-back cache size in MiB
        mibs = [float(x) for x in args.cache_mibs.split(",")]
        reporter = _sweep_reporter(args, len(mibs) * npoints_per_x)
        sweep = server_cache_sweep(
            cfg,
            cache_mibs=mibs,
            strategies=strategies,
            nprocs=args.nprocs,
            progress=progress,
            jobs=args.jobs,
            reporter=reporter,
        )
        headline_x = None  # no paper figure to ratio against
    elif args.axis == "arrival":  # serve mode: offered load in queries/s
        rates = [float(x) for x in args.rates.split(",")]
        base = cfg
        if base.arrival is None:
            # The common arrival flags still shape the sweep's base config
            # even when --arrival itself was omitted.
            base = base.with_(
                arrival=ArrivalConfig(
                    process="poisson",
                    rate=args.arrival_rate,
                    horizon_s=args.arrival_horizon,
                    max_pending=args.max_pending,
                    policy=args.admission,
                    priority_fraction=args.priority_fraction,
                )
            )
        # Serve mode sweeps one sync option (sync gating is a batch-mode
        # knob), so one point per strategy per rate.
        reporter = _sweep_reporter(args, len(rates) * len(strategies))
        sweep = arrival_sweep(
            base,
            rates=rates,
            strategies=strategies,
            nprocs=args.nprocs,
            progress=progress,
            jobs=args.jobs,
            reporter=reporter,
        )
        headline_x = None  # latency table below instead of ratio tables
    elif args.axis == "masters":  # sharded serve mode: master count
        counts = [int(x) for x in args.master_counts.split(",")]
        base = cfg
        if base.arrival is None:
            # Same rule as the arrival axis: the serve flags shape the
            # sweep even when --arrival itself was omitted.
            base = base.with_(
                arrival=ArrivalConfig(
                    process="poisson",
                    rate=args.arrival_rate,
                    horizon_s=args.arrival_horizon,
                    max_pending=args.max_pending,
                    policy=args.admission,
                    priority_fraction=args.priority_fraction,
                )
            )
        reporter = _sweep_reporter(args, len(counts) * len(strategies))
        sweep = masters_sweep(
            base,
            master_counts=counts,
            strategies=strategies,
            nprocs=args.nprocs,
            progress=progress,
            jobs=args.jobs,
            reporter=reporter,
        )
        headline_x = None  # latency table below instead of ratio tables
    else:  # replicas: per-stripe replica count
        counts = [int(x) for x in args.replica_counts.split(",")]
        reporter = _sweep_reporter(args, len(counts) * npoints_per_x)
        sweep = replica_sweep(
            cfg,
            replica_counts=counts,
            strategies=strategies,
            nprocs=args.nprocs,
            progress=progress,
            jobs=args.jobs,
            reporter=reporter,
        )
        headline_x = None  # no paper figure to ratio against
    if args.axis in ("arrival", "masters"):
        _print_latency_table(
            sweep, x_label="masters" if args.axis == "masters" else "rate qps"
        )
        print()
    else:
        for query_sync in (False, True):
            print(overall_table(sweep, query_sync))
            print()
    if args.phases:
        for strategy in sweep.strategies():
            for query_sync in (False, True):
                print(phase_table(sweep, strategy, query_sync))
                print()
    if headline_x is not None:
        print(ratio_table(sweep, headline_x, paper_ratios=FIG2_RATIOS_PCT if args.axis == "processes" else None))
    if args.json:
        from .analysis import export_json as export_sweep_json

        with open(args.json, "w") as fh:
            export_sweep_json(sweep, fh)
        print(f"sweep exported to {args.json}")
    if args.csv:
        from .analysis import export_csv as export_sweep_csv

        with open(args.csv, "w") as fh:
            export_sweep_csv(sweep, fh)
        print(f"sweep exported to {args.csv}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    cfg = _config_from(args)
    recorder = TraceRecorder()
    S3aSim(cfg, recorder=recorder).run()
    print(render_timeline(recorder, width=args.width))
    if args.output:
        with open(args.output, "w") as fh:
            export_json(recorder, fh)
        print(f"trace written to {args.output}")
    return 0


def _cmd_hybrid(args: argparse.Namespace) -> int:
    cfg = _config_from(args)
    if cfg.arrival is not None:
        raise SystemExit(
            "hybrid mode pre-partitions the closed batch and cannot take "
            "open-loop arrivals; drop --arrival"
        )
    result = HybridS3aSim(cfg, args.partitions).run()
    print(result.summary_line())
    for index, part in enumerate(result.partition_results):
        print(f"  partition {index}: {part.summary_line()}")
    print("complete:", result.complete)
    return 0 if result.complete else 1


def _cmd_validate(args: argparse.Namespace) -> int:
    cfg = _config_from(args).with_(store_data=True)
    reference = None
    status = 0
    for strategy in sorted(STRATEGIES):
        app = S3aSim(cfg.with_(strategy=strategy))
        result = app.run()
        store = app.fh.file.bytestore
        if reference is None:
            reference, ref_name = store, strategy
            same = True
        else:
            same = reference.content_equal(store)
        ok = result.file_stats.complete and same
        status |= 0 if ok else 1
        print(
            f"{strategy:10s} complete={result.file_stats.complete} "
            f"matches[{ref_name}]={same}"
        )
    print("VALIDATION", "PASSED" if status == 0 else "FAILED")
    return status


def _cmd_check(args: argparse.Namespace) -> int:
    """Metamorphic differential harness (see repro.check.metamorphic)."""
    # Imported here, not at module top: the harness pulls in the whole
    # application stack and is only needed by this subcommand.
    from .check import metamorphic

    if args.replay:
        relation, case, recorded = metamorphic.load_artifact(args.replay)
        print(f"replaying {args.replay}: [{relation}] {case.label()}")
        if recorded:
            print(f"recorded error: {recorded}")
        error = metamorphic._evaluate(metamorphic.RELATIONS[relation], case)
        if error is None:
            print("relation now HOLDS (fixed, or environment-dependent)")
            return 0
        print(f"relation still FAILS: {error}")
        return 1

    relations = args.relations.split(",") if args.relations else None
    log = print if args.verbose else None
    report = metamorphic.run_harness(
        ncases=args.cases,
        seed=args.seed,
        relations=relations,
        artifact_dir=args.artifact_dir,
        shrink=not args.no_shrink,
        log=log,
    )
    print(
        f"check: {report.cases} cases x {len(report.relations)} relations "
        f"({', '.join(report.relations)}): {report.checks_run} checks, "
        f"{len(report.failures)} failure(s)"
    )
    for failure in report.failures:
        print(f"  [{failure.relation}] {failure.case.label()}: {failure.error}")
        if failure.artifact:
            print(f"    repro: s3asim check --replay {failure.artifact}")
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="s3asim",
        description="S3aSim: sequence-search I/O strategy simulator (HPDC'06 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one simulation")
    _add_common(p_run)
    p_run.add_argument(
        "--save-workload", help="write the run's workload parameters to a JSON file"
    )
    p_run.set_defaults(func=_cmd_run)

    p_serve = sub.add_parser(
        "serve",
        help="online service mode: open-loop arrivals with admission control",
    )
    _add_common(p_serve)
    p_serve.add_argument(
        "--preset",
        choices=list(ARRIVAL_PROCESSES),
        default="poisson",
        help="arrival process to use when --arrival is not given",
    )
    p_serve.add_argument(
        "--until",
        type=float,
        default=None,
        metavar="S",
        help="cut the run off at this simulated time (pending queries' "
        "latency is discarded, not fabricated)",
    )
    p_serve.add_argument("--json", help="export the full result to this JSON file")
    p_serve.set_defaults(func=_cmd_serve)

    p_sweep = sub.add_parser("sweep", help="run a parameter sweep (Fig 2/5)")
    p_sweep.add_argument(
        "axis",
        choices=["processes", "speed", "cache", "replicas", "arrival", "masters"],
    )
    _add_common(p_sweep)
    p_sweep.add_argument(
        "--strategies",
        default=",".join(ALL_STRATEGIES),
        help="comma-separated strategy series to sweep; hybrid-auto joins "
        "the no-sync series only",
    )
    p_sweep.add_argument("--counts", default="2,4,8,16,32,48,64,96")
    p_sweep.add_argument("--speeds", default="0.1,0.2,0.4,0.8,1.6,3.2,6.4,12.8,25.6")
    p_sweep.add_argument(
        "--cache-mibs",
        default="0,1,4,16",
        help="per-server cache sizes (MiB) for the cache axis",
    )
    p_sweep.add_argument(
        "--replica-counts",
        default="1,2,3",
        help="per-stripe replica counts for the replicas axis",
    )
    p_sweep.add_argument(
        "--rates",
        default="5,10,20,40",
        help="offered loads (queries/s) for the arrival axis",
    )
    p_sweep.add_argument(
        "--master-counts",
        default="1,2,4,8",
        help="master counts for the masters axis (1 = unsharded seed)",
    )
    p_sweep.add_argument("--phases", action="store_true", help="print phase tables")
    p_sweep.add_argument("--verbose", action="store_true")
    p_sweep.add_argument("--json", help="export the sweep to this JSON file")
    p_sweep.add_argument("--csv", help="export the sweep to this CSV file")
    p_sweep.set_defaults(func=_cmd_sweep)

    p_stats = sub.add_parser(
        "stats",
        help="run with metrics enabled and report per-layer counters",
    )
    _add_common(p_stats)
    p_stats.add_argument(
        "--compare",
        action="store_true",
        help="run all four strategies on the same workload and compare",
    )
    p_stats.add_argument("--json", help="export the metrics snapshot to this JSON file")
    p_stats.add_argument("--csv", help="export the metrics snapshot to this CSV file")
    p_stats.set_defaults(func=_cmd_stats)

    p_trace = sub.add_parser("trace", help="run once and render a timeline")
    _add_common(p_trace)
    p_trace.add_argument("--width", type=int, default=100)
    p_trace.add_argument("--output", help="write JSON trace to this path")
    p_trace.set_defaults(func=_cmd_trace)

    p_val = sub.add_parser(
        "validate", help="verify byte-identical output across strategies"
    )
    _add_common(p_val)
    p_val.set_defaults(func=_cmd_validate)

    p_faults = sub.add_parser(
        "fault-sweep",
        help="compare per-strategy resilience under a canned fault scenario",
    )
    _add_common(p_faults)
    p_faults.add_argument("--crash-rank", type=int, default=1)
    p_faults.add_argument("--crash-time", type=float, default=8.0)
    p_faults.add_argument("--downtime", type=float, default=2.0)
    p_faults.add_argument("--slow-server", type=int, default=0)
    p_faults.add_argument("--slow-start", type=float, default=3.0)
    p_faults.add_argument("--slow-duration", type=float, default=6.0)
    p_faults.add_argument("--slow-factor", type=float, default=4.0)
    p_faults.set_defaults(func=_cmd_fault_sweep)

    p_check = sub.add_parser(
        "check",
        help="metamorphic differential harness over random configurations",
    )
    p_check.add_argument(
        "--cases",
        type=int,
        default=None,
        help="random configurations to draw (default: $S3ASIM_CHECK_CASES or 5)",
    )
    p_check.add_argument("--seed", type=int, default=0)
    p_check.add_argument(
        "--relations",
        help="comma-separated relation subset (default: all); choose from "
        "strategies,query-sync,server-stack,replicas,jobs,empty-faults,"
        "arrivals,read-strategies,hybrid-auto",
    )
    p_check.add_argument(
        "--artifact-dir",
        help="write a replayable JSON repro artifact per failure here",
    )
    p_check.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip greedy minimization of failing cases",
    )
    p_check.add_argument("--verbose", action="store_true")
    p_check.add_argument(
        "--replay",
        metavar="ARTIFACT",
        help="re-run one saved repro artifact instead of drawing cases",
    )
    p_check.set_defaults(func=_cmd_check)

    p_hybrid = sub.add_parser(
        "hybrid",
        help="hybrid query/database segmentation (paper future work)",
    )
    _add_common(p_hybrid)
    p_hybrid.add_argument("--partitions", type=int, default=2)
    p_hybrid.set_defaults(func=_cmd_hybrid)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
