"""Sweep-result export: JSON and CSV for downstream plotting tools.

The tables module renders for terminals; this module produces structured
data so the regenerated figures can be replotted (matplotlib, gnuplot,
spreadsheets) without re-running the sweeps.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, TextIO

from ..core.phases import Phase
from .sweeps import SweepPoint, SweepResult


def sweep_to_records(sweep: SweepResult) -> List[Dict]:
    """One flat record per sweep point (JSON/CSV-friendly)."""
    records = []
    for point in sweep.points:
        mean = point.result.worker_mean
        record = {
            "axis": sweep.axis_name,
            "x": point.x,
            "strategy": point.strategy,
            "query_sync": point.query_sync,
            "elapsed_s": point.result.elapsed,
            "nprocs": point.result.nprocs,
            "compute_speed": point.result.compute_speed,
            "file_bytes": point.result.file_stats.total_bytes,
            "file_complete": point.result.file_stats.complete,
        }
        for phase in Phase:
            record[f"worker_{phase.value}_s"] = mean[phase]
        records.append(record)
    records.sort(key=lambda r: (r["strategy"], r["query_sync"], r["x"]))
    return records


def export_json(sweep: SweepResult, stream: TextIO) -> None:
    """JSON document with sweep metadata and per-point records."""
    json.dump(
        {
            "format": "s3asim-sweep-1",
            "axis": sweep.axis_name,
            "xs": sweep.xs(),
            "strategies": sweep.strategies(),
            "points": sweep_to_records(sweep),
        },
        stream,
        indent=1,
    )


def export_csv(sweep: SweepResult, stream: TextIO) -> None:
    """Flat CSV, one row per sweep point."""
    records = sweep_to_records(sweep)
    if not records:
        return
    writer = csv.DictWriter(stream, fieldnames=list(records[0].keys()))
    writer.writeheader()
    writer.writerows(records)


def sweep_to_json_str(sweep: SweepResult) -> str:
    buffer = io.StringIO()
    export_json(sweep, buffer)
    return buffer.getvalue()


def sweep_to_csv_str(sweep: SweepResult) -> str:
    buffer = io.StringIO()
    export_csv(sweep, buffer)
    return buffer.getvalue()
