"""Experiment drivers and result formatting (the paper's evaluation)."""

from .charts import PHASE_GLYPHS, SERIES_GLYPHS, line_chart, stacked_bars
from .export import (
    export_csv,
    export_json,
    sweep_to_csv_str,
    sweep_to_json_str,
    sweep_to_records,
)
from .replication import (
    ReplicatedMeasurement,
    compare_replicated,
    replicate,
)
from .paper import (
    FIG2_RATIOS_PCT,
    FIG5_RATIOS_PCT,
    PAPER_ABSOLUTES,
    PAPER_CLAIMS,
    RatioCheck,
)
from .sweeps import (
    ALL_STRATEGIES,
    PAPER_COMPUTE_SPEEDS,
    PAPER_PROCESS_COUNTS,
    SweepPoint,
    SweepResult,
    arrival_sweep,
    compute_speed_sweep,
    masters_sweep,
    process_scaling_sweep,
    replica_sweep,
    server_cache_sweep,
    strategy_grid,
)
from .tables import (
    crossover_x,
    overall_table,
    phase_table,
    ratio_table,
    speedup_series,
)

__all__ = [
    "ALL_STRATEGIES",
    "PHASE_GLYPHS",
    "SERIES_GLYPHS",
    "FIG2_RATIOS_PCT",
    "FIG5_RATIOS_PCT",
    "PAPER_ABSOLUTES",
    "PAPER_CLAIMS",
    "PAPER_COMPUTE_SPEEDS",
    "PAPER_PROCESS_COUNTS",
    "RatioCheck",
    "ReplicatedMeasurement",
    "SweepPoint",
    "SweepResult",
    "arrival_sweep",
    "compare_replicated",
    "compute_speed_sweep",
    "crossover_x",
    "export_csv",
    "masters_sweep",
    "export_json",
    "line_chart",
    "overall_table",
    "phase_table",
    "process_scaling_sweep",
    "replica_sweep",
    "server_cache_sweep",
    "replicate",
    "ratio_table",
    "speedup_series",
    "stacked_bars",
    "strategy_grid",
    "sweep_to_csv_str",
    "sweep_to_json_str",
    "sweep_to_records",
]
