"""ASCII renderings of the paper's figures.

Two chart kinds cover all seven figures: multi-series line charts
(Figures 2 and 5 — overall time vs processes / compute speed, log-x like
the paper's) and stacked phase bars (Figures 3, 4, 6, 7).  Pure text, so
figure output survives terminals, logs, and diffs.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.phases import Phase
from ..core.strategies import LABELS
from .sweeps import SweepResult

#: Plot glyph per strategy (stable across charts).
SERIES_GLYPHS: Dict[str, str] = {
    "mw": "M",
    "ww-posix": "P",
    "ww-list": "L",
    "ww-coll": "C",
}

#: One character per phase for stacked bars, matching the trace glyphs.
PHASE_GLYPHS: Dict[Phase, str] = {
    Phase.SETUP: "s",
    Phase.DATA_DISTRIBUTION: "d",
    Phase.COMPUTE: "#",
    Phase.MERGE: "m",
    Phase.GATHER: "g",
    Phase.IO: "W",
    Phase.SYNC: "=",
    Phase.OTHER: ".",
}


def line_chart(
    sweep: SweepResult,
    query_sync: bool,
    width: int = 70,
    height: int = 20,
    log_x: bool = True,
) -> str:
    """Overall-execution-time line chart (one glyph per strategy)."""
    if width < 10 or height < 5:
        raise ValueError("chart too small")
    xs = sweep.xs()
    if not xs:
        return "(empty sweep)"
    strategies = sweep.strategies()

    def x_pos(x: float) -> int:
        if log_x and xs[0] > 0 and xs[-1] > xs[0]:
            frac = (math.log(x) - math.log(xs[0])) / (
                math.log(xs[-1]) - math.log(xs[0])
            )
        elif xs[-1] > xs[0]:
            frac = (x - xs[0]) / (xs[-1] - xs[0])
        else:
            frac = 0.0
        return min(width - 1, max(0, int(round(frac * (width - 1)))))

    values: Dict[str, List[Tuple[float, float]]] = {}
    y_max = 0.0
    for strategy in strategies:
        series = [
            (x, result.elapsed) for x, result in sweep.series(strategy, query_sync)
        ]
        values[strategy] = series
        if series:
            y_max = max(y_max, max(v for _, v in series))
    if y_max <= 0:
        return "(no data)"

    grid = [[" "] * width for _ in range(height)]
    for strategy in strategies:
        glyph = SERIES_GLYPHS.get(strategy, strategy[0].upper())
        for x, value in values[strategy]:
            col = x_pos(x)
            row = height - 1 - min(
                height - 1, int(round(value / y_max * (height - 1)))
            )
            # Do not overwrite a different series at the same cell; stack
            # markers by nudging up one row where possible.
            if grid[row][col] not in (" ", glyph) and row > 0:
                row -= 1
            grid[row][col] = glyph

    sync_label = "sync" if query_sync else "no-sync"
    lines = [f"Overall Execution Time - {sync_label}"]
    for i, row in enumerate(grid):
        y_value = y_max * (height - 1 - i) / (height - 1)
        label = f"{y_value:8.1f} |" if i % 4 == 0 or i == height - 1 else f"{'':8s} |"
        lines.append(label + "".join(row))
    axis = f"{'':8s} +" + "-" * width
    lines.append(axis)
    tick_line = [" "] * width
    for x in xs:
        col = x_pos(x)
        text = f"{x:g}"
        for j, ch in enumerate(text):
            if col + j < width:
                tick_line[col + j] = ch
    lines.append(f"{'':10s}" + "".join(tick_line) + f"  ({sweep.axis_name})")
    legend = "  ".join(
        f"{SERIES_GLYPHS.get(s, s[0].upper())}={LABELS.get(s, s)}"
        for s in strategies
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def stacked_bars(
    sweep: SweepResult,
    strategy: str,
    query_sync: bool,
    width: int = 46,
) -> str:
    """Phase-breakdown bars per x (the paper's stacked-bar figures)."""
    xs = sweep.xs()
    results = []
    y_max = 0.0
    for x in xs:
        try:
            result = sweep.lookup(strategy, query_sync, x)
        except KeyError:
            continue
        results.append((x, result.worker_mean))
        y_max = max(y_max, result.worker_mean.total)
    if not results or y_max <= 0:
        return "(no data)"

    sync_label = "sync" if query_sync else "no-sync"
    lines = [
        f"{LABELS.get(strategy, strategy)} - {sync_label}, worker process "
        f"(bar width = {y_max:.1f}s)"
    ]
    for x, mean in results:
        bar = []
        for phase in Phase:
            cells = int(round(mean[phase] / y_max * width))
            bar.append(PHASE_GLYPHS[phase] * cells)
        lines.append(f"{x:>8g} |{''.join(bar):<{width}s}| {mean.total:7.2f}s")
    legend = "  ".join(f"{PHASE_GLYPHS[p]}={p.value}" for p in Phase)
    lines.append("legend: " + legend)
    return "\n".join(lines)
