"""Text renderings of sweep results: the rows/series the paper reports.

``overall_table`` reproduces the Figure 2/5 line charts as numbers;
``phase_table`` reproduces the Figure 3/4/6/7 stacked bars; and
``ratio_table`` prints the paper's headline "WW-List outperforms X by N%"
comparisons.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.phases import Phase
from ..core.strategies import LABELS
from .sweeps import SweepResult


def _fmt_x(axis_name: str, x: float) -> str:
    if axis_name == "processes":
        return str(int(x))
    return f"{x:g}"


def overall_table(sweep: SweepResult, query_sync: bool) -> str:
    """Overall execution time: one row per x, one column per strategy."""
    strategies = sweep.strategies()
    sync_label = "sync" if query_sync else "no-sync"
    header = f"{sweep.axis_name:>12s}  " + "  ".join(
        f"{LABELS.get(s, s):>22s}" for s in strategies
    )
    lines = [f"Overall Execution Time - {sync_label}", header]
    for x in sweep.xs():
        cells = []
        for s in strategies:
            try:
                result = sweep.lookup(s, query_sync, x)
                cells.append(f"{result.elapsed:>22.2f}")
            except KeyError:
                cells.append(f"{'-':>22s}")
        lines.append(f"{_fmt_x(sweep.axis_name, x):>12s}  " + "  ".join(cells))
    return "\n".join(lines)


def phase_table(sweep: SweepResult, strategy: str, query_sync: bool) -> str:
    """Mean worker-process phase breakdown per x (the stacked-bar data)."""
    sync_label = "sync" if query_sync else "no-sync"
    phases = list(Phase)
    header = f"{sweep.axis_name:>12s}  " + "  ".join(
        f"{p.value:>18s}" for p in phases
    ) + f"  {'total':>10s}"
    lines = [
        f"{LABELS.get(strategy, strategy)} - {sync_label}, worker process",
        header,
    ]
    for x in sweep.xs():
        try:
            result = sweep.lookup(strategy, query_sync, x)
        except KeyError:
            continue
        mean = result.worker_mean
        cells = "  ".join(f"{mean[p]:>18.3f}" for p in phases)
        lines.append(
            f"{_fmt_x(sweep.axis_name, x):>12s}  {cells}  {mean.total:>10.2f}"
        )
    return "\n".join(lines)


def ratio_table(
    sweep: SweepResult,
    x: float,
    baseline: str = "ww-list",
    paper_ratios: Optional[Dict[str, Dict[bool, float]]] = None,
) -> str:
    """Headline comparison at one x: how much each strategy loses to the
    baseline, as the paper's "outperforms by N%" figures.

    ``paper_ratios[strategy][query_sync]`` optionally carries the paper's
    reported percentage for side-by-side display.
    """
    lines = [f"Ratios vs {LABELS.get(baseline, baseline)} at {sweep.axis_name}={_fmt_x(sweep.axis_name, x)}"]
    for query_sync in (False, True):
        sync_label = "sync" if query_sync else "no-sync"
        try:
            base = sweep.lookup(baseline, query_sync, x)
        except KeyError:
            continue
        for strategy in sweep.strategies():
            if strategy == baseline:
                continue
            try:
                other = sweep.lookup(strategy, query_sync, x)
            except KeyError:
                continue
            pct = 100.0 * (other.elapsed / base.elapsed - 1.0)
            row = (
                f"  {sync_label:8s} {LABELS.get(strategy, strategy):<24s} "
                f"measured +{pct:6.0f}%"
            )
            if paper_ratios and strategy in paper_ratios:
                paper = paper_ratios[strategy].get(query_sync)
                if paper is not None:
                    row += f"   (paper +{paper:.0f}%)"
            lines.append(row)
    return "\n".join(lines)


def speedup_series(
    sweep: SweepResult, strategy: str, query_sync: bool
) -> List[tuple]:
    """(x, speedup-vs-first-x) pairs — scaling efficiency of one strategy."""
    series = sweep.series(strategy, query_sync)
    if not series:
        return []
    base_x, base_result = series[0]
    return [
        (x, base_result.elapsed / result.elapsed) for x, result in series
    ]


def crossover_x(
    sweep: SweepResult, a: str, b: str, query_sync: bool
) -> Optional[float]:
    """Smallest x at which strategy ``a`` becomes faster than ``b``
    (None if it never does)."""
    xs = sweep.xs()
    for x in xs:
        try:
            ra = sweep.lookup(a, query_sync, x)
            rb = sweep.lookup(b, query_sync, x)
        except KeyError:
            continue
        if ra.elapsed < rb.elapsed:
            return x
    return None
