"""Replicated measurements: the paper's "averaged over 3 test runs".

The simulator is deterministic for a fixed seed, so replication here means
re-running each configuration under different workload seeds — capturing
sensitivity to the sampled queries/results rather than machine noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..core.app import run_simulation
from ..core.config import SimulationConfig
from ..core.report import RunResult


@dataclass(frozen=True)
class ReplicatedMeasurement:
    """Mean/stdev of elapsed time over several seeds."""

    config_label: str
    seeds: Sequence[int]
    elapsed: List[float]

    @property
    def mean(self) -> float:
        return sum(self.elapsed) / len(self.elapsed)

    @property
    def stdev(self) -> float:
        if len(self.elapsed) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(
            sum((x - mu) ** 2 for x in self.elapsed) / (len(self.elapsed) - 1)
        )

    @property
    def relative_spread(self) -> float:
        """stdev/mean — how workload-sensitive this configuration is."""
        return self.stdev / self.mean if self.mean else 0.0

    def summary(self) -> str:
        return (
            f"{self.config_label}: {self.mean:.2f} ± {self.stdev:.2f} s "
            f"over seeds {list(self.seeds)}"
        )


def replicate(
    config: SimulationConfig,
    seeds: Sequence[int] = (2006, 2007, 2008),
    runner: Optional[Callable[[SimulationConfig], RunResult]] = None,
) -> ReplicatedMeasurement:
    """Run ``config`` once per seed (the paper used 3 runs per point)."""
    if not seeds:
        raise ValueError("need at least one seed")
    runner = runner if runner is not None else run_simulation
    elapsed = [runner(config.with_(seed=seed)).elapsed for seed in seeds]
    label = f"{config.strategy}@np={config.nprocs}"
    return ReplicatedMeasurement(
        config_label=label, seeds=tuple(seeds), elapsed=elapsed
    )


def compare_replicated(
    a: ReplicatedMeasurement, b: ReplicatedMeasurement
) -> bool:
    """True if ``a`` is faster than ``b`` beyond one pooled stdev —
    a conservative "the ordering is real, not workload luck" check."""
    pooled = math.sqrt((a.stdev**2 + b.stdev**2) / 2) or 1e-12
    return a.mean + pooled < b.mean
