"""Parameter sweeps: the experiment drivers behind the paper's figures.

Figure 2/3/4 sweep the process count at fixed compute speed; Figure 5/6/7
sweep the compute speed at 64 processes.  Each sweep point is one full
S3aSim run; results collect into a :class:`SweepResult` that the table and
figure formatters consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.app import run_simulation
from ..core.config import SimulationConfig
from ..core.report import RunResult

#: The paper's process-count axis (Section 3.3: "One suite of tests used 2
#: to 96 processors", figures show 2,4,8,16,32,48,64,96).
PAPER_PROCESS_COUNTS: Tuple[int, ...] = (2, 4, 8, 16, 32, 48, 64, 96)

#: The paper's compute-speed axis (0.1 to 25.6, doubling).
PAPER_COMPUTE_SPEEDS: Tuple[float, ...] = (0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 6.4, 12.8, 25.6)

#: All four strategies in the paper's presentation order.
ALL_STRATEGIES: Tuple[str, ...] = ("mw", "ww-posix", "ww-list", "ww-coll")


@dataclass(frozen=True)
class SweepPoint:
    """One run within a sweep."""

    strategy: str
    query_sync: bool
    x: float  # the swept value (process count or compute speed)
    result: RunResult


@dataclass
class SweepResult:
    """All runs of one sweep, indexable by (strategy, sync, x)."""

    axis_name: str
    points: List[SweepPoint] = field(default_factory=list)

    def add(self, point: SweepPoint) -> None:
        self.points.append(point)

    def series(self, strategy: str, query_sync: bool) -> List[Tuple[float, RunResult]]:
        """The (x, result) series of one strategy/sync combination."""
        return sorted(
            (p.x, p.result)
            for p in self.points
            if p.strategy == strategy and p.query_sync == query_sync
        )

    def lookup(self, strategy: str, query_sync: bool, x: float) -> RunResult:
        for p in self.points:
            if p.strategy == strategy and p.query_sync == query_sync and p.x == x:
                return p.result
        raise KeyError((strategy, query_sync, x))

    def xs(self) -> List[float]:
        return sorted({p.x for p in self.points})

    def strategies(self) -> List[str]:
        seen: List[str] = []
        for p in self.points:
            if p.strategy not in seen:
                seen.append(p.strategy)
        return seen


ProgressHook = Optional[Callable[[SweepPoint], None]]


def process_scaling_sweep(
    base: SimulationConfig,
    process_counts: Sequence[int] = PAPER_PROCESS_COUNTS,
    strategies: Sequence[str] = ALL_STRATEGIES,
    sync_options: Sequence[bool] = (False, True),
    progress: ProgressHook = None,
) -> SweepResult:
    """Figure 2's experiment: overall time vs process count."""
    sweep = SweepResult(axis_name="processes")
    for nprocs in process_counts:
        for query_sync in sync_options:
            for strategy in strategies:
                cfg = base.with_(
                    nprocs=nprocs, strategy=strategy, query_sync=query_sync
                )
                point = SweepPoint(
                    strategy=strategy,
                    query_sync=query_sync,
                    x=float(nprocs),
                    result=run_simulation(cfg),
                )
                sweep.add(point)
                if progress:
                    progress(point)
    return sweep


def compute_speed_sweep(
    base: SimulationConfig,
    speeds: Sequence[float] = PAPER_COMPUTE_SPEEDS,
    strategies: Sequence[str] = ALL_STRATEGIES,
    sync_options: Sequence[bool] = (False, True),
    nprocs: int = 64,
    progress: ProgressHook = None,
) -> SweepResult:
    """Figure 5's experiment: overall time vs compute speed at 64 procs."""
    sweep = SweepResult(axis_name="compute_speed")
    for speed in speeds:
        compute = replace(base.compute, speed=speed)
        for query_sync in sync_options:
            for strategy in strategies:
                cfg = base.with_(
                    nprocs=nprocs,
                    strategy=strategy,
                    query_sync=query_sync,
                    compute=compute,
                )
                point = SweepPoint(
                    strategy=strategy,
                    query_sync=query_sync,
                    x=float(speed),
                    result=run_simulation(cfg),
                )
                sweep.add(point)
                if progress:
                    progress(point)
    return sweep
