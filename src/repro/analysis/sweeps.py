"""Parameter sweeps: the experiment drivers behind the paper's figures.

Figure 2/3/4 sweep the process count at fixed compute speed; Figure 5/6/7
sweep the compute speed at 64 processes.  Each sweep point is one full
S3aSim run; results collect into a :class:`SweepResult` that the table and
figure formatters consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.config import SimulationConfig
from ..core.report import RunResult
from ..core.strategies import is_adaptive
from ..exec.engine import (
    PointOutcome,
    PointSpec,
    SweepExecutionError,
    run_points,
)

#: The paper's process-count axis (Section 3.3: "One suite of tests used 2
#: to 96 processors", figures show 2,4,8,16,32,48,64,96).
PAPER_PROCESS_COUNTS: Tuple[int, ...] = (2, 4, 8, 16, 32, 48, 64, 96)

#: The paper's compute-speed axis (0.1 to 25.6, doubling).
PAPER_COMPUTE_SPEEDS: Tuple[float, ...] = (0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 6.4, 12.8, 25.6)

#: All four strategies in the paper's presentation order.
ALL_STRATEGIES: Tuple[str, ...] = ("mw", "ww-posix", "ww-list", "ww-coll")

#: Default cache-size axis (MiB per I/O server) for the server-cache sweep.
DEFAULT_CACHE_MIBS: Tuple[float, ...] = (0.0, 1.0, 4.0, 16.0)

_MIB = 1024 * 1024


def strategy_grid(
    strategies: Sequence[str], sync_options: Sequence[bool]
) -> List[Tuple[bool, str]]:
    """The (query_sync, strategy) product a sweep actually runs.

    ``hybrid-auto`` rejects ``query_sync`` (the per-query strategy choice
    is meaningless when every query gates on a barrier), so the adaptive
    strategy only joins the no-sync series; the statics fill the full
    grid.  Returned in (sync, strategy) nesting order to match the spec
    loops.
    """
    return [
        (query_sync, strategy)
        for query_sync in sync_options
        for strategy in strategies
        if not (query_sync and is_adaptive(strategy))
    ]


@dataclass(frozen=True)
class SweepPoint:
    """One run within a sweep."""

    strategy: str
    query_sync: bool
    x: float  # the swept value (process count or compute speed)
    result: RunResult


@dataclass
class SweepResult:
    """All runs of one sweep, indexable by (strategy, sync, x)."""

    axis_name: str
    points: List[SweepPoint] = field(default_factory=list)

    def add(self, point: SweepPoint) -> None:
        self.points.append(point)

    def series(self, strategy: str, query_sync: bool) -> List[Tuple[float, RunResult]]:
        """The (x, result) series of one strategy/sync combination.

        Sorted by x only (stable): two points may share an x (replicated
        runs, fault sweeps), and ``RunResult`` objects are not orderable.
        """
        return sorted(
            (
                (p.x, p.result)
                for p in self.points
                if p.strategy == strategy and p.query_sync == query_sync
            ),
            key=lambda pair: pair[0],
        )

    def lookup(self, strategy: str, query_sync: bool, x: float) -> RunResult:
        for p in self.points:
            if p.strategy == strategy and p.query_sync == query_sync and p.x == x:
                return p.result
        raise KeyError((strategy, query_sync, x))

    def xs(self) -> List[float]:
        return sorted({p.x for p in self.points})

    def strategies(self) -> List[str]:
        seen: List[str] = []
        for p in self.points:
            if p.strategy not in seen:
                seen.append(p.strategy)
        return seen


ProgressHook = Optional[Callable[[SweepPoint], None]]

#: Engine-level hook: sees every completed point, including failures
#: (e.g. :class:`repro.exec.ProgressReporter` for ETA lines).
OutcomeHook = Optional[Callable[[PointOutcome], None]]


def _execute_sweep(
    axis_name: str,
    specs: Sequence[PointSpec],
    jobs: int,
    progress: ProgressHook,
    reporter: OutcomeHook,
) -> SweepResult:
    """Run the point specs through the engine and collect a SweepResult.

    Points land in the SweepResult in spec (submission) order whatever the
    parallel completion order was; ``progress`` fires per successful point
    in *completion* order.  If any point failed, the survivors still run to
    completion and a :class:`SweepExecutionError` aggregating the failures
    is raised at the end.
    """

    def on_complete(outcome: PointOutcome) -> None:
        if outcome.ok and progress is not None:
            strategy, query_sync, x = outcome.key
            progress(
                SweepPoint(
                    strategy=strategy,
                    query_sync=query_sync,
                    x=x,
                    result=outcome.result,
                )
            )
        if reporter is not None:
            reporter(outcome)

    outcomes = run_points(specs, jobs=jobs, progress=on_complete)
    failures = [o.failure for o in outcomes if o.failure is not None]
    if failures:
        raise SweepExecutionError(failures)

    sweep = SweepResult(axis_name=axis_name)
    for outcome in outcomes:
        strategy, query_sync, x = outcome.key
        sweep.add(
            SweepPoint(
                strategy=strategy, query_sync=query_sync, x=x, result=outcome.result
            )
        )
    return sweep


def process_scaling_sweep(
    base: SimulationConfig,
    process_counts: Sequence[int] = PAPER_PROCESS_COUNTS,
    strategies: Sequence[str] = ALL_STRATEGIES,
    sync_options: Sequence[bool] = (False, True),
    progress: ProgressHook = None,
    jobs: int = 1,
    reporter: OutcomeHook = None,
) -> SweepResult:
    """Figure 2's experiment: overall time vs process count.

    ``jobs > 1`` fans the points out across a process pool; every point
    carries the same workload seed (strategies must compare on identical
    inputs) and rebuilds its random streams from its own config, so the
    result is bit-identical to ``jobs=1``.
    """
    specs = [
        PointSpec(
            key=(strategy, query_sync, float(nprocs)),
            config=base.with_(
                nprocs=nprocs, strategy=strategy, query_sync=query_sync
            ),
        )
        for nprocs in process_counts
        for query_sync, strategy in strategy_grid(strategies, sync_options)
    ]
    return _execute_sweep("processes", specs, jobs, progress, reporter)


def compute_speed_sweep(
    base: SimulationConfig,
    speeds: Sequence[float] = PAPER_COMPUTE_SPEEDS,
    strategies: Sequence[str] = ALL_STRATEGIES,
    sync_options: Sequence[bool] = (False, True),
    nprocs: int = 64,
    progress: ProgressHook = None,
    jobs: int = 1,
    reporter: OutcomeHook = None,
) -> SweepResult:
    """Figure 5's experiment: overall time vs compute speed at 64 procs."""
    specs = [
        PointSpec(
            key=(strategy, query_sync, float(speed)),
            config=base.with_(
                nprocs=nprocs,
                strategy=strategy,
                query_sync=query_sync,
                compute=replace(base.compute, speed=speed),
            ),
        )
        for speed in speeds
        for query_sync, strategy in strategy_grid(strategies, sync_options)
    ]
    return _execute_sweep("compute_speed", specs, jobs, progress, reporter)


def server_cache_sweep(
    base: SimulationConfig,
    cache_mibs: Sequence[float] = DEFAULT_CACHE_MIBS,
    strategies: Sequence[str] = ALL_STRATEGIES,
    sync_options: Sequence[bool] = (False, True),
    nprocs: Optional[int] = None,
    progress: ProgressHook = None,
    jobs: int = 1,
    reporter: OutcomeHook = None,
) -> SweepResult:
    """The new experiment axis: overall time vs per-server cache size.

    Sweeps the write-back cache capacity at the disk scheduler already
    set on ``base.pvfs`` (``disk_sched``; run once per scheduler to
    compare fifo vs elevator).  ``x`` is the cache size in MiB — 0 is the
    seed's cache-less daemon.
    """
    specs = []
    for mib in cache_mibs:
        if mib < 0:
            raise ValueError(f"cache size must be non-negative, got {mib}")
        pvfs = replace(base.pvfs, server_cache_B=int(mib * _MIB))
        for query_sync, strategy in strategy_grid(strategies, sync_options):
            config = base.with_(
                strategy=strategy, query_sync=query_sync, pvfs=pvfs
            )
            if nprocs is not None:
                config = config.with_(nprocs=nprocs)
            specs.append(
                PointSpec(key=(strategy, query_sync, float(mib)), config=config)
            )
    return _execute_sweep("server_cache_mib", specs, jobs, progress, reporter)


def arrival_sweep(
    base: SimulationConfig,
    rates: Sequence[float],
    strategies: Sequence[str] = ALL_STRATEGIES,
    sync_options: Sequence[bool] = (False,),
    nprocs: Optional[int] = None,
    progress: ProgressHook = None,
    jobs: int = 1,
    reporter: OutcomeHook = None,
) -> SweepResult:
    """Serve-mode axis: completion latency vs offered load per strategy.

    ``base.arrival`` must be set (it supplies the arrival process,
    admission policy, and horizon); ``x`` is the offered rate in queries
    per second.  The interesting output is each point's
    ``result.serve_stats`` — admitted/rejected counts and the latency
    percentiles — which diverge across strategies as the rate approaches
    saturation.
    """
    if base.arrival is None:
        raise ValueError("arrival_sweep needs base.arrival set")
    specs = []
    for rate in rates:
        if rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate}")
        arrival = replace(base.arrival, rate=float(rate))
        for query_sync, strategy in strategy_grid(strategies, sync_options):
            config = base.with_(
                strategy=strategy, query_sync=query_sync, arrival=arrival
            )
            if nprocs is not None:
                config = config.with_(nprocs=nprocs)
            specs.append(
                PointSpec(key=(strategy, query_sync, float(rate)), config=config)
            )
    return _execute_sweep("arrival_rate", specs, jobs, progress, reporter)


def masters_sweep(
    base: SimulationConfig,
    master_counts: Sequence[int] = (1, 2, 4, 8),
    strategies: Sequence[str] = ALL_STRATEGIES,
    sync_options: Sequence[bool] = (False,),
    nprocs: Optional[int] = None,
    progress: ProgressHook = None,
    jobs: int = 1,
    reporter: OutcomeHook = None,
) -> SweepResult:
    """Sharding axis: latency and throughput vs number of masters.

    ``x`` is the master count — 1 is the seed's single-master topology
    (``shard=None``, bit-identical to every earlier run); each extra
    master splits the same ``nprocs`` into an independent shard with its
    own worker pool, sharing the network and the PVFS volume.  The
    interesting outputs are the merged latency percentiles (does sharding
    relieve the single master's admission bottleneck under saturating
    load?) and ``serve_stats["imbalance"]`` (how well placement plus
    work-stealing spreads the queries).

    ``base.arrival`` must be set; sharding only exists in serve mode.
    """
    if base.arrival is None:
        raise ValueError("masters_sweep needs base.arrival set")
    from ..shard.state import ShardConfig

    shard_base = base.shard or ShardConfig()
    specs = []
    for masters in master_counts:
        if masters < 1:
            raise ValueError(f"master count must be >= 1, got {masters}")
        shard = (
            replace(shard_base, nshards=int(masters)) if masters > 1 else None
        )
        for query_sync, strategy in strategy_grid(strategies, sync_options):
            config = base.with_(
                strategy=strategy, query_sync=query_sync, shard=shard
            )
            if nprocs is not None:
                config = config.with_(nprocs=nprocs)
            specs.append(
                PointSpec(
                    key=(strategy, query_sync, float(masters)),
                    config=config,
                )
            )
    return _execute_sweep("masters", specs, jobs, progress, reporter)


def replica_sweep(
    base: SimulationConfig,
    replica_counts: Sequence[int] = (1, 2, 3),
    strategies: Sequence[str] = ALL_STRATEGIES,
    sync_options: Sequence[bool] = (False, True),
    nprocs: Optional[int] = None,
    progress: ProgressHook = None,
    jobs: int = 1,
    reporter: OutcomeHook = None,
) -> SweepResult:
    """ROADMAP's replication scale study: overall time vs replica count.

    ``x`` is the per-stripe replica count — 1 is the seed's unreplicated
    volume, each extra copy buys outage survival at the write-amplification
    cost the sweep measures.  Combine with ``base.fault_plan`` to measure
    the degraded-mode price instead of the healthy-path price.
    """
    specs = []
    for replicas in replica_counts:
        if replicas < 1:
            raise ValueError(f"replica count must be >= 1, got {replicas}")
        pvfs = replace(base.pvfs, replicas=int(replicas))
        for query_sync, strategy in strategy_grid(strategies, sync_options):
            config = base.with_(
                strategy=strategy, query_sync=query_sync, pvfs=pvfs
            )
            if nprocs is not None:
                config = config.with_(nprocs=nprocs)
            specs.append(
                PointSpec(
                    key=(strategy, query_sync, float(replicas)), config=config
                )
            )
    return _execute_sweep("replicas", specs, jobs, progress, reporter)
