"""The paper's reported numbers, for paper-vs-measured comparison.

Section 4 gives headline percentages ("WW-List outperforms the other I/O
strategies by N%") at 96 processes (Figure 2) and at compute speed 25.6 on
64 processes (Figure 5), plus a handful of absolute phase timings.  These
constants drive EXPERIMENTS.md and the benchmark acceptance checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

#: "WW-List outperforms the other I/O strategies by X%" at 96 processes.
#: Keyed by strategy then query_sync.
FIG2_RATIOS_PCT: Dict[str, Dict[bool, float]] = {
    "mw": {False: 364.0, True: 182.0},
    "ww-posix": {False: 33.0, True: 37.0},
    "ww-coll": {False: 75.0, True: 13.0},
}

#: Same at compute speed 25.6, 64 processes.
FIG5_RATIOS_PCT: Dict[str, Dict[bool, float]] = {
    "mw": {False: 592.0, True: 444.0},
    "ww-posix": {False: 32.0, True: 65.0},
    "ww-coll": {False: 98.0, True: 58.0},
}

#: Absolute seconds the text quotes directly.
PAPER_ABSOLUTES = {
    # At 96 processes with query sync:
    ("ww-coll", True, 96, "total"): 45.54,
    ("ww-list", True, 96, "total"): 40.24,
    # WW-POSIX at 96 processes: sync phase and data distribution growth.
    ("ww-posix", False, 96, "sync"): 1.01,
    ("ww-posix", True, 96, "sync"): 12.0,
    ("ww-posix", False, 96, "data_distribution"): 3.21,
    ("ww-posix", True, 96, "data_distribution"): 19.04,
    ("ww-list", False, 96, "sync"): 0.41,
    ("ww-list", True, 96, "sync"): 5.87,
    ("ww-list", False, 96, "data_distribution"): 4.47,
    ("ww-list", True, 96, "data_distribution"): 18.47,
    # Compute-speed suite (64 processes): mean worker compute phase.
    ("any", None, 64, "compute@0.1"): 54.0,
    ("any", None, 64, "compute@25.6"): 0.8,
}

#: Structural observations (used as boolean acceptance checks).
PAPER_CLAIMS = (
    "WW-List is the fastest strategy in every no-sync and sync case",
    "all no-sync strategies perform as good as or better than their sync counterparts",
    "WW-Coll performance is within ~6% with or without query sync",
    "MW's forced-sync penalty is small at base speed (<~5%)",
    "MW gains <2% from a 25.6x compute speedup",
    "scaling gains slow considerably at about 32 processes",
    "I/O phase time increases slightly with more processes",
    "compute-time variance at slow speeds makes WW-Coll pay a large synchronization cost",
)


@dataclass(frozen=True)
class RatioCheck:
    """One paper-vs-measured ratio comparison."""

    label: str
    strategy: str
    query_sync: bool
    paper_pct: float
    measured_pct: float

    @property
    def measured_factor(self) -> float:
        return 1.0 + self.measured_pct / 100.0

    @property
    def paper_factor(self) -> float:
        return 1.0 + self.paper_pct / 100.0

    def within(self, factor_tolerance: float = 2.0) -> bool:
        """Shape test: measured slow-down factor within ``factor_tolerance``×
        of the paper's, and the same sign (slower than WW-List)."""
        if self.paper_factor <= 1.0:
            return self.measured_factor <= 1.0 * factor_tolerance
        ratio = self.measured_factor / self.paper_factor
        return (1.0 / factor_tolerance) <= ratio <= factor_tolerance
