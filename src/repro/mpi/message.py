"""Message envelopes and completion status for the simulated MPI layer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from .constants import EAGER

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Event


@dataclass(frozen=True)
class Status:
    """Completion status of a receive (mirrors ``MPI_Status``)."""

    source: int
    tag: int
    nbytes: int


@dataclass
class Envelope:
    """A message (or rendezvous header) as seen by the matching engine.

    ``kind`` is either :data:`~repro.mpi.constants.EAGER` (payload has
    already been buffered at the receiver) or
    :data:`~repro.mpi.constants.RENDEZVOUS_RTS` (only the header arrived;
    ``cts_event`` unblocks the sender's payload transfer and ``data_event``
    fires once the payload lands).
    """

    src: int
    dst: int
    tag: int
    nbytes: int
    payload: Any
    kind: str = EAGER
    seq: int = 0
    cts_event: Optional["Event"] = field(default=None, repr=False)
    data_event: Optional["Event"] = field(default=None, repr=False)

    def matches(self, source: int, tag: int) -> bool:
        """Does this envelope satisfy a receive posted for (source, tag)?"""
        from .constants import ANY_SOURCE, ANY_TAG

        source_ok = source == ANY_SOURCE or source == self.src
        tag_ok = tag == ANY_TAG or tag == self.tag
        return source_ok and tag_ok

    @property
    def status(self) -> Status:
        return Status(source=self.src, tag=self.tag, nbytes=self.nbytes)
