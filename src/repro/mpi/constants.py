"""MPI-like constants for the simulated message-passing layer."""

from __future__ import annotations

# Wildcards (match the sign conventions of real MPI).
ANY_SOURCE = -1
ANY_TAG = -1

# Tags >= 0 are user tags.  The collective implementation reserves a
# disjoint negative tag space derived from a per-communicator sequence
# number, so user traffic can never match collective traffic.
COLLECTIVE_TAG_BASE = -1000

# Internal protocol message kinds.
EAGER = "eager"
RENDEZVOUS_RTS = "rts"


def collective_tag(sequence: int) -> int:
    """Reserved tag for the ``sequence``-th collective on a communicator."""
    if sequence < 0:
        raise ValueError("collective sequence must be non-negative")
    return COLLECTIVE_TAG_BASE - sequence
