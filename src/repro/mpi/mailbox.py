"""Per-rank message matching: posted receives vs. unexpected messages.

Matching follows MPI semantics: a receive posted for ``(source, tag)`` (with
wildcards) pairs with the earliest-arrived matching envelope; an arriving
envelope pairs with the earliest-posted matching receive.  Because envelopes
from one sender arrive in the order they were sent (the sender's TX channel
serializes them), the MPI non-overtaking guarantee holds.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim import Environment
from .constants import EAGER, RENDEZVOUS_RTS
from .message import Envelope, Status
from .request import RecvRequest


class Mailbox:
    """Matching engine for a single rank."""

    def __init__(self, env: Environment, rank: int) -> None:
        self.env = env
        self.rank = rank
        self.unexpected: List[Envelope] = []
        self.posted: List[RecvRequest] = []

    def __repr__(self) -> str:
        return (
            f"<Mailbox rank={self.rank} unexpected={len(self.unexpected)} "
            f"posted={len(self.posted)}>"
        )

    # -- arrival side ------------------------------------------------------
    def deliver(self, envelope: Envelope) -> None:
        """An envelope arrived from the network."""
        if envelope.dst != self.rank:
            raise ValueError(
                f"Envelope for rank {envelope.dst} delivered to mailbox {self.rank}"
            )
        for recv in self.posted:
            if envelope.matches(recv.source, recv.tag):
                self.posted.remove(recv)
                self._match(recv, envelope)
                return
        self.unexpected.append(envelope)

    # -- receive side ------------------------------------------------------
    def post(self, recv: RecvRequest) -> None:
        """A receive was posted; match against unexpected messages first."""
        for envelope in self.unexpected:
            if envelope.matches(recv.source, recv.tag):
                self.unexpected.remove(envelope)
                self._match(recv, envelope)
                return
        self.posted.append(recv)

    def unpost(self, recv: RecvRequest) -> None:
        try:
            self.posted.remove(recv)
        except ValueError:
            pass

    def probe(self, source: int, tag: int) -> Optional[Status]:
        """Nonblocking probe: status of the first matching arrived envelope."""
        for envelope in self.unexpected:
            if envelope.matches(source, tag):
                return envelope.status
        return None

    # -- internals ---------------------------------------------------------
    def _match(self, recv: RecvRequest, envelope: Envelope) -> None:
        recv._matched = True
        if envelope.kind == EAGER:
            # Payload already buffered here; the receive completes now.
            recv._deliver(envelope.payload, envelope.status)
        elif envelope.kind == RENDEZVOUS_RTS:
            # Unblock the sender's payload transfer; complete the receive
            # once the payload actually lands.
            assert envelope.data_event is not None and envelope.cts_event is not None

            def on_data(event) -> None:
                recv._deliver(event.value, envelope.status)

            envelope.data_event.callbacks.append(on_data)
            envelope.cts_event.succeed()
        else:  # pragma: no cover - defensive
            raise ValueError(f"Unknown envelope kind {envelope.kind!r}")
