"""Network timing model for the simulated MPI layer.

The model is deliberately first-order but captures the contention structure
that drives the paper's results:

* every rank owns a NIC with one transmit (TX) and one receive (RX) channel,
  each a unit-capacity :class:`~repro.sim.resources.Resource` — concurrent
  messages to/from the same rank serialize (this is what makes the
  master-writing strategy a funnel);
* a point-to-point transfer costs ``latency + nbytes / bandwidth`` on the
  wire plus per-message CPU overhead on both ends;
* an optional fabric capacity bounds the number of full-rate transfers in
  flight (crude bisection-bandwidth stand-in; unlimited by default, as
  Myrinet-2000 on <100 nodes was far from bisection-limited for this
  workload).

Defaults correspond to the Feynman cluster's Myrinet-2000 interconnect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Dict, List, Optional, Sequence, Tuple

from ..sim import Environment, Resource, SimulationError

KIB = 1024
MIB = 1024 * 1024

#: Residual bytes below which a fluid flow counts as finished (absorbs
#: float rounding in ``remaining -= rate * dt`` accounting).
_FLOW_EPS_B = 1e-6


class LinkFailure(SimulationError):
    """A message exhausted its retransmission budget (link declared dead)."""


@dataclass(frozen=True)
class NetworkConfig:
    """Parameters of the interconnect timing model.

    Attributes
    ----------
    latency_s:
        One-way small-message latency in seconds.
    bandwidth_Bps:
        Per-link bandwidth in bytes/second.
    eager_threshold_B:
        Messages at or below this size use the eager protocol (buffered at
        the receiver); larger ones use rendezvous (sender blocks until the
        matching receive is posted).
    cpu_overhead_s:
        Per-message host CPU cost charged on each side (packetization,
        matching).
    fabric_capacity:
        Max concurrent full-rate transfers through the fabric; ``None``
        disables fabric contention.
    """

    latency_s: float = 7e-6
    bandwidth_Bps: float = 245 * MIB
    eager_threshold_B: int = 64 * KIB
    cpu_overhead_s: float = 1e-6
    fabric_capacity: Optional[int] = None
    #: Ranks sharing one physical adapter.  Feynman ran two compute
    #: processes per dual-CPU node over a single Myrinet card ("Since each
    #: of compute nodes had dual CPUs, we ran two compute processes per
    #: node"); 1 gives every rank its own NIC.
    ranks_per_nic: int = 1
    #: Transfers of at least this many bytes use the fluid-flow model
    #: (``None`` — the default and the seed behaviour — keeps every
    #: transfer on the packet path).  A fluid transfer does not hold its
    #: NIC/fabric ``Resource`` slots for the serialization time; it
    #: registers a *flow*, and the max-min fair share of link bandwidth
    #: across all concurrent flows is recomputed only when a flow starts
    #: or finishes — one event per rate change instead of per-message
    #: serialization holds.
    fluid_threshold_B: Optional[int] = None

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError("latency_s must be non-negative")
        if self.bandwidth_Bps <= 0:
            raise ValueError("bandwidth_Bps must be positive")
        if self.eager_threshold_B < 0:
            raise ValueError("eager_threshold_B must be non-negative")
        if self.fabric_capacity is not None and self.fabric_capacity <= 0:
            raise ValueError("fabric_capacity must be positive or None")
        if self.ranks_per_nic <= 0:
            raise ValueError("ranks_per_nic must be positive")
        if self.fluid_threshold_B is not None and self.fluid_threshold_B <= 0:
            raise ValueError("fluid_threshold_B must be positive or None")

    @classmethod
    def myrinet2000(cls) -> "NetworkConfig":
        """The Feynman cluster's interconnect (paper test environment)."""
        return cls()

    @classmethod
    def instant(cls) -> "NetworkConfig":
        """A nearly free network — isolates non-network costs in tests."""
        return cls(latency_s=1e-12, bandwidth_Bps=1e18, cpu_overhead_s=0.0)

    def serialization_time(self, nbytes: int) -> float:
        """Time to push ``nbytes`` through one NIC channel."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return nbytes / self.bandwidth_Bps

    def transfer_time(self, nbytes: int) -> float:
        """Uncontended end-to-end time for a single message."""
        return self.latency_s + self.serialization_time(nbytes)


@dataclass
class LinkFaultStats:
    """Counters of the drop/ARQ model (observability and tests)."""

    drops: int = 0
    retransmits: int = 0
    link_failures: int = 0


class LinkFaults:
    """Message-loss model with timeout/exponential-backoff retransmission.

    ``specs`` are the plan's :class:`~repro.faults.plan.MessageLoss`
    windows; a message crossing the wire while a window is active is
    dropped with that window's probability, and the sender retransmits
    after a timeout that doubles (``backoff``) per attempt, up to
    ``max_retries`` before the transfer fails with :class:`LinkFailure`.

    Drops draw from a single seeded stream *in event order*, so a fixed
    (seed, plan) pair yields the same loss pattern every run.
    """

    def __init__(self, specs: Sequence, rng) -> None:
        if not specs:
            raise ValueError("LinkFaults needs at least one MessageLoss window")
        self.specs = tuple(specs)
        self.rng = rng
        self.stats = LinkFaultStats()

    def _active_spec(self, now: float):
        for spec in self.specs:
            if spec.drop_prob > 0 and spec.start <= now < spec.end:
                return spec
        return None

    def drop_spec(self, now: float):
        """The window that drops this message, or None to deliver it."""
        spec = self._active_spec(now)
        if spec is None:
            return None
        if float(self.rng.random()) < spec.drop_prob:
            return spec
        return None

    @staticmethod
    def retransmit_delay(spec, attempt: int) -> float:
        """Backoff before retransmission ``attempt`` (1-based)."""
        return spec.retransmit_timeout_s * spec.backoff ** (attempt - 1)


@dataclass
class NicStats:
    """Byte/message counters for one rank's NIC (observability hooks)."""

    tx_messages: int = 0
    rx_messages: int = 0
    tx_bytes: int = 0
    rx_bytes: int = 0


class Nic:
    """A network adapter: serialized TX and RX channels.

    With ``ranks_per_nic > 1`` one adapter is shared by several node-mate
    ranks, so ``nic_id`` is the adapter's index in the fabric — *not* a
    rank.  Traffic attribution to ranks happens in the obs layer, which
    labels NIC byte counters by both ``nic`` and ``rank``.
    """

    def __init__(self, env: Environment, nic_id: int) -> None:
        self.nic_id = nic_id
        self.tx = Resource(env, capacity=1)
        self.rx = Resource(env, capacity=1)
        self.stats = NicStats()

    def __repr__(self) -> str:
        return f"<Nic id={self.nic_id} tx_q={len(self.tx.queue)} rx_q={len(self.rx.queue)}>"


class _Flow:
    """One in-flight fluid transfer between two NICs."""

    __slots__ = ("src_nic", "dst_nic", "remaining", "rate", "done", "seq")

    def __init__(self, src_nic: int, dst_nic: int, nbytes: float, done, seq: int) -> None:
        self.src_nic = src_nic
        self.dst_nic = dst_nic
        self.remaining = nbytes
        self.rate = 0.0
        self.done = done
        self.seq = seq

    def __repr__(self) -> str:
        return (
            f"<_Flow #{self.seq} nic{self.src_nic}->nic{self.dst_nic} "
            f"remaining={self.remaining:.0f}B rate={self.rate:.3g}B/s>"
        )


class FlowScheduler:
    """Fluid-flow bandwidth sharing for bulk transfers.

    Packet-mode transfers hold a NIC TX slot, then an RX slot, each for
    the full serialization time — thousands of strip-sized messages in a
    large WW-strategy result write each cost a queue wait, a grant, a
    timeout, and a release.  The fluid model replaces all of that with a
    *flow*: a (src NIC, dst NIC, bytes) triple whose transfer rate is the
    max-min fair share of the links it crosses — the source NIC's TX
    channel, the destination NIC's RX channel, and (when the fabric is
    bounded) an aggregate fabric pipe of ``fabric_capacity ×
    bandwidth_Bps``.  Rates are recomputed only when a flow starts or
    finishes; between recomputations every flow progresses linearly, so
    the scheduler needs exactly one wake-up event per rate change.

    Determinism: flows are identified by an arrival sequence number, all
    iteration happens in arrival order, and the max-min bottleneck search
    breaks ties on sorted link keys — no dict-order or wall-clock
    dependence anywhere.
    """

    def __init__(self, env: Environment, config: NetworkConfig) -> None:
        self.env = env
        self.config = config
        self._active: List[_Flow] = []
        self._seq = count()
        self._last_update = env.now
        self._wake_version = 0
        self._fabric_Bps: Optional[float] = (
            config.fabric_capacity * config.bandwidth_Bps
            if config.fabric_capacity is not None
            else None
        )
        #: Observability: rate recomputations and completed flows.
        self.rate_changes = 0
        self.flows_started = 0
        self.flows_finished = 0

    def __repr__(self) -> str:
        return (
            f"<FlowScheduler active={len(self._active)} "
            f"rate_changes={self.rate_changes}>"
        )

    @property
    def active_flows(self) -> int:
        return len(self._active)

    # -- the transfer primitive -------------------------------------------
    def run_flow(self, src_nic: int, dst_nic: int, nbytes: int):
        """Process fragment: move ``nbytes`` as a fluid flow; returns when
        the last byte has drained at the fair-share rate."""
        if nbytes <= 0:
            return
        done = self.env.event()
        flow = _Flow(src_nic, dst_nic, float(nbytes), done, next(self._seq))
        self._advance()
        self._active.append(flow)
        self.flows_started += 1
        self._recompute()
        yield done

    # -- internals ---------------------------------------------------------
    def _advance(self) -> None:
        """Charge the time since the last rate change against every flow."""
        now = self.env.now
        dt = now - self._last_update
        if dt > 0.0:
            for flow in self._active:
                flow.remaining -= flow.rate * dt
                if flow.remaining < 0.0:
                    flow.remaining = 0.0
        self._last_update = now

    def _recompute(self) -> None:
        """Max-min fair rates, then a wake-up at the earliest completion.

        Progressive filling: repeatedly find the bottleneck link (the one
        whose equal split among its still-unassigned flows is smallest),
        freeze its flows at that share, subtract, repeat.
        """
        self.rate_changes += 1
        m = self.env.metrics
        if m.enabled:
            m.inc("mpi.flow_rate_changes")
        flows = self._active
        self._wake_version += 1
        if not flows:
            return
        bandwidth = self.config.bandwidth_Bps
        cap: Dict[Tuple, float] = {}
        users: Dict[Tuple, List[_Flow]] = {}
        for flow in flows:
            for link in (("tx", flow.src_nic), ("rx", flow.dst_nic)):
                if link not in cap:
                    cap[link] = bandwidth
                    users[link] = []
                users[link].append(flow)
        if self._fabric_Bps is not None:
            cap[("fab", -1)] = self._fabric_Bps
            users[("fab", -1)] = list(flows)
        unassigned = {flow.seq for flow in flows}
        while unassigned:
            bottleneck = None
            share = 0.0
            for link in sorted(cap):
                n = sum(1 for f in users[link] if f.seq in unassigned)
                if not n:
                    continue
                s = cap[link] / n
                if bottleneck is None or s < share:
                    bottleneck = link
                    share = s
            if bottleneck is None:  # pragma: no cover - defensive
                break
            for flow in users[bottleneck]:
                if flow.seq not in unassigned:
                    continue
                flow.rate = share
                unassigned.discard(flow.seq)
                for link in (("tx", flow.src_nic), ("rx", flow.dst_nic)):
                    if link != bottleneck:
                        cap[link] -= share
                if self._fabric_Bps is not None and bottleneck != ("fab", -1):
                    cap[("fab", -1)] -= share
        # One wake-up at the earliest completion; stale wake-ups from
        # earlier recomputations are invalidated by the version bump.
        dt = min(f.remaining / f.rate for f in flows)
        self.env.process(
            self._waker(dt, self._wake_version), name="flow-wake"
        )

    def _waker(self, dt: float, version: int):
        yield self.env.timeout(dt)
        if version != self._wake_version:
            return
        self._advance()
        finished = [f for f in self._active if f.remaining <= _FLOW_EPS_B]
        if not finished:  # pragma: no cover - defensive
            self._recompute()
            return
        self._active = [f for f in self._active if f.remaining > _FLOW_EPS_B]
        self.flows_finished += len(finished)
        self._recompute()
        for flow in finished:
            flow.done.succeed()


class Network:
    """Owns per-rank NICs and provides the transfer primitives.

    The MPI layer composes these primitives into eager/rendezvous protocol
    processes; the network itself knows nothing about matching.
    """

    def __init__(self, env: Environment, nranks: int, config: NetworkConfig) -> None:
        if nranks <= 0:
            raise ValueError("nranks must be positive")
        self.env = env
        self.nranks = nranks
        self.config = config
        # With ranks_per_nic > 1, node-mates share one adapter object.
        nnics = -(-nranks // config.ranks_per_nic)
        self.nics: Dict[int, Nic] = {n: Nic(env, n) for n in range(nnics)}
        self.fabric: Optional[Resource] = (
            Resource(env, capacity=config.fabric_capacity)
            if config.fabric_capacity is not None
            else None
        )
        self.flows: Optional[FlowScheduler] = (
            FlowScheduler(env, config)
            if config.fluid_threshold_B is not None
            else None
        )
        self.faults: Optional[LinkFaults] = None

    def install_faults(self, faults: LinkFaults) -> None:
        """Attach a message-loss model (None of these costs exist without it)."""
        self.faults = faults

    def nic(self, rank: int) -> Nic:
        if not 0 <= rank < self.nranks:
            raise ValueError(f"rank {rank} not in network of size {self.nranks}")
        return self.nics[rank // self.config.ranks_per_nic]

    def occupy_tx(self, src: int, nbytes: int):
        """Process fragment: hold src's TX channel for the wire time."""
        nic = self.nic(src)
        with nic.tx.request() as req:
            yield req
            yield self.env.timeout(
                self.config.serialization_time(nbytes) + self.config.cpu_overhead_s
            )
        nic.stats.tx_messages += 1
        nic.stats.tx_bytes += nbytes
        m = self.env.metrics
        if m.enabled:
            m.inc("mpi.nic_tx_bytes", float(nbytes), nic=nic.nic_id, rank=src)
        c = self.env.check
        if c.enabled:
            c.nic_tx(nbytes)

    def occupy_rx(self, dst: int, nbytes: int):
        """Process fragment: hold dst's RX channel for the wire time."""
        nic = self.nic(dst)
        with nic.rx.request() as req:
            yield req
            yield self.env.timeout(
                self.config.serialization_time(nbytes) + self.config.cpu_overhead_s
            )
        nic.stats.rx_messages += 1
        nic.stats.rx_bytes += nbytes
        m = self.env.metrics
        if m.enabled:
            m.inc("mpi.nic_rx_bytes", float(nbytes), nic=nic.nic_id, rank=dst)
        c = self.env.check
        if c.enabled:
            c.nic_rx(nbytes)

    def wire_latency(self):
        """Process fragment: one-way propagation delay."""
        yield self.env.timeout(self.config.latency_s)

    def _dropped_by(self, src: int, dst: int, nbytes: int):
        """The loss window that dropped this crossing, or None; counts it."""
        faults = self.faults
        if faults is None:
            return None
        spec = faults.drop_spec(self.env.now)
        if spec is None:
            return None
        faults.stats.drops += 1
        m = self.env.metrics
        if m.enabled:
            m.inc("mpi.drops", 1.0, src=src, dst=dst)
        c = self.env.check
        if c.enabled:
            c.wire_drop(nbytes)
        return spec

    def _check_retry_budget(
        self, spec, attempt: int, src: int, dst: int, nbytes: int
    ) -> None:
        """Raise :class:`LinkFailure` once ``attempt`` exhausts the budget."""
        if attempt <= spec.max_retries:
            return
        self.faults.stats.link_failures += 1
        m = self.env.metrics
        if m.enabled:
            m.inc("mpi.link_failures", 1.0, src=src, dst=dst)
        raise LinkFailure(
            f"message {src}->{dst} ({nbytes} B) lost {attempt} times; giving up"
        )

    def _count_retransmit(self, src: int, dst: int) -> None:
        self.faults.stats.retransmits += 1
        m = self.env.metrics
        if m.enabled:
            m.inc("mpi.retransmits", 1.0, src=src, dst=dst)

    def deliver(self, src: int, dst: int, nbytes: int):
        """Process fragment: propagate and land ``nbytes`` at ``dst``.

        This is the lossy half of a transfer — the sender has already paid
        TX serialization.  With no :class:`LinkFaults` installed the cost
        is exactly ``wire_latency + occupy_rx`` (the fault-free fast path
        adds zero events).  With faults, a dropped message costs the wire
        latency, a retransmission timeout with exponential backoff, and a
        fresh TX serialization per retry.
        """
        attempt = 0
        while True:
            yield from self.wire_latency()
            spec = self._dropped_by(src, dst, nbytes)
            if spec is None:
                yield from self.occupy_rx(dst, nbytes)
                return
            attempt += 1
            self._check_retry_budget(spec, attempt, src, dst, nbytes)
            yield self.env.timeout(LinkFaults.retransmit_delay(spec, attempt))
            self._count_retransmit(src, dst)
            yield from self.occupy_tx(src, nbytes)

    def _fluid_transfer(self, src: int, dst: int, nbytes: int):
        """Process fragment: bulk transfer via the fluid-flow model.

        The flow subsumes TX serialization, RX serialization, and fabric
        sharing (all three appear as links in the max-min computation), so
        none of the per-channel ``Resource`` slots are held.  Per-message
        CPU overhead is still charged on both ends, and the loss model is
        evaluated once per attempt when the flow's last byte crosses the
        wire — a dropped bulk message re-enters the same exponential-
        backoff retransmission path as the packet model, re-sending the
        whole message (and paying a fresh flow) per retry.

        Checker ledger parity with the packet path: TX bytes are counted
        at the end of every attempt, wire drops when an attempt is lost,
        RX bytes only on delivery — so ``rx + dropped <= tx`` holds under
        fluid accounting too.
        """
        env = self.env
        flows = self.flows
        src_nic = self.nic(src)
        dst_nic = self.nic(dst)
        m = env.metrics
        if m.enabled:
            m.inc("mpi.fluid_flows")
            m.inc("mpi.fluid_bytes", float(nbytes))
        attempt = 0
        while True:
            yield env.timeout(self.config.cpu_overhead_s)
            yield from flows.run_flow(src_nic.nic_id, dst_nic.nic_id, nbytes)
            src_nic.stats.tx_messages += 1
            src_nic.stats.tx_bytes += nbytes
            if m.enabled:
                m.inc("mpi.nic_tx_bytes", float(nbytes), nic=src_nic.nic_id, rank=src)
            c = env.check
            if c.enabled:
                c.nic_tx(nbytes)
            yield from self.wire_latency()
            spec = self._dropped_by(src, dst, nbytes)
            if spec is None:
                yield env.timeout(self.config.cpu_overhead_s)
                dst_nic.stats.rx_messages += 1
                dst_nic.stats.rx_bytes += nbytes
                if m.enabled:
                    m.inc(
                        "mpi.nic_rx_bytes", float(nbytes), nic=dst_nic.nic_id, rank=dst
                    )
                if c.enabled:
                    c.nic_rx(nbytes)
                return
            attempt += 1
            self._check_retry_budget(spec, attempt, src, dst, nbytes)
            yield env.timeout(LinkFaults.retransmit_delay(spec, attempt))
            self._count_retransmit(src, dst)

    def transfer(self, src: int, dst: int, nbytes: int):
        """Process fragment: full point-to-point transfer src → dst.

        TX serialization, optional fabric slot, propagation, RX
        serialization.  Loopback and node-local transfers (same NIC) only
        pay a memcpy-like cost — MPI moves intra-node traffic through
        shared memory, never the wire (and never the loss model).

        With a bounded fabric the slot is held only while the message is
        physically in flight (TX → propagation → RX).  A dropped message
        *releases* its slot for the whole retransmission backoff and
        re-acquires it per attempt — a sender sleeping through exponential
        backoff must not pin fabric capacity it is not using.
        """
        if src == dst or self.nic(src) is self.nic(dst):
            yield self.env.timeout(
                self.config.cpu_overhead_s + self.config.serialization_time(nbytes) / 4
            )
            return
        flows = self.flows
        if flows is not None and nbytes >= self.config.fluid_threshold_B:
            yield from self._fluid_transfer(src, dst, nbytes)
            return
        if self.fabric is None:
            yield from self.occupy_tx(src, nbytes)
            yield from self.deliver(src, dst, nbytes)
            return
        attempt = 0
        while True:
            with self.fabric.request() as slot:
                yield slot
                yield from self.occupy_tx(src, nbytes)
                yield from self.wire_latency()
                spec = self._dropped_by(src, dst, nbytes)
                if spec is None:
                    yield from self.occupy_rx(dst, nbytes)
                    return
            attempt += 1
            self._check_retry_budget(spec, attempt, src, dst, nbytes)
            yield self.env.timeout(LinkFaults.retransmit_delay(spec, attempt))
            self._count_retransmit(src, dst)
