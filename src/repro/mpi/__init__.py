"""Simulated MPI: ranks, point-to-point messaging, collectives.

A timing-faithful simulation of the MPI subset parallel sequence-search
tools rely on (per the paper: MPI_Send/Recv/Isend/Irecv/Test/Wait plus the
collectives that ROMIO's two-phase I/O uses), built on the DES kernel.
"""

from .collectives import (
    allgather,
    allreduce,
    alltoallv,
    barrier,
    bcast,
    gather,
    gatherv,
    reduce,
    scatter,
    scatterv,
)
from .communicator import Communicator, RankComm
from .compat import CompatComm, CompatRequest, File as CompatFile
from .constants import ANY_SOURCE, ANY_TAG, collective_tag
from .mailbox import Mailbox
from .message import Envelope, Status
from .network import FlowScheduler, Network, NetworkConfig, Nic, KIB, MIB
from .request import RecvRequest, Request, SendRequest
from .world import MpiWorld

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "CompatComm",
    "CompatFile",
    "CompatRequest",
    "Envelope",
    "FlowScheduler",
    "KIB",
    "MIB",
    "Mailbox",
    "MpiWorld",
    "Network",
    "NetworkConfig",
    "Nic",
    "RankComm",
    "RecvRequest",
    "Request",
    "SendRequest",
    "Status",
    "allgather",
    "allreduce",
    "alltoallv",
    "barrier",
    "bcast",
    "collective_tag",
    "gather",
    "gatherv",
    "reduce",
    "scatter",
    "scatterv",
]
