"""Collective operations built on simulated point-to-point messaging.

Each collective is a *process fragment* to be invoked from every rank of the
communicator (``yield from barrier(comm)``), exactly as real MPI requires
every process to enter the collective.  Algorithms are the classic ones so
the timing scales realistically:

* barrier — dissemination (⌈log₂ n⌉ rounds)
* bcast — binomial tree
* gather/gatherv — linear to root (what ROMIO-era MPICH used for modest n)
* scatter/scatterv — linear from root
* allgather(v) — gather + bcast
* alltoallv — ring-shifted pairwise exchange (the two-phase I/O workhorse)
* reduce/allreduce — gather-to-root + op (+ bcast)

A reserved, per-invocation tag keeps collective traffic disjoint from user
messages and from other collectives in flight.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from .constants import collective_tag

# Wire size of a zero-byte collective control message.
CONTROL_BYTES = 16


def _next_tag(comm) -> int:
    tag = collective_tag(comm._coll_seq)
    comm._coll_seq += 1
    return tag


def barrier(comm):
    """Dissemination barrier: completes when all ranks have entered."""
    tag = _next_tag(comm)
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    distance = 1
    while distance < size:
        dst = (rank + distance) % size
        src = (rank - distance) % size
        send = comm.isend(dst, tag, CONTROL_BYTES)
        recv = comm.irecv(source=src, tag=tag)
        yield send.done_event & recv.done_event
        distance *= 2


def bcast(comm, root: int, nbytes: int, payload: Any = None):
    """Binomial-tree broadcast; returns the payload on every rank."""
    tag = _next_tag(comm)
    size, rank = comm.size, comm.rank
    if size == 1:
        return payload
    vrank = (rank - root) % size

    if vrank != 0:
        # Receive from the binomial parent.
        payload, _ = yield from comm.recv(source=_abs_rank(_parent(vrank), root, size), tag=tag)
    # Forward to binomial children.
    sends = []
    for child in _children(vrank, size):
        sends.append(comm.isend(_abs_rank(child, root, size), tag, nbytes, payload))
    for send in sends:
        yield from send.wait()
    return payload


def gather(comm, root: int, nbytes: int, payload: Any = None):
    """Linear gather; returns the rank-ordered list on root, None elsewhere."""
    sizes = [nbytes] * comm.size
    return (yield from gatherv(comm, root, sizes, payload))


def gatherv(comm, root: int, nbytes_per_rank: Sequence[int], payload: Any = None):
    """Gather with per-rank sizes; list of payloads on root, None elsewhere."""
    tag = _next_tag(comm)
    size, rank = comm.size, comm.rank
    if len(nbytes_per_rank) != size:
        raise ValueError("nbytes_per_rank must have one entry per rank")
    if rank == root:
        results: List[Any] = [None] * size
        results[root] = payload
        recvs = {
            src: comm.irecv(source=src, tag=tag)
            for src in range(size)
            if src != root
        }
        for src, recv in recvs.items():
            results[src] = yield from recv.wait()
        return results
    yield from comm.send(root, tag, nbytes_per_rank[rank], payload)
    return None


def scatter(comm, root: int, nbytes: int, payloads: Optional[Sequence[Any]] = None):
    """Linear scatter; every rank returns its slice."""
    sizes = [nbytes] * comm.size
    return (yield from scatterv(comm, root, sizes, payloads))


def scatterv(
    comm,
    root: int,
    nbytes_per_rank: Sequence[int],
    payloads: Optional[Sequence[Any]] = None,
):
    """Scatter with per-rank sizes (payloads significant on root only)."""
    tag = _next_tag(comm)
    size, rank = comm.size, comm.rank
    if len(nbytes_per_rank) != size:
        raise ValueError("nbytes_per_rank must have one entry per rank")
    if rank == root:
        if payloads is None or len(payloads) != size:
            raise ValueError("root must supply one payload per rank")
        sends = []
        for dst in range(size):
            if dst == root:
                continue
            sends.append(comm.isend(dst, tag, nbytes_per_rank[dst], payloads[dst]))
        for send in sends:
            yield from send.wait()
        return payloads[root]
    payload, _ = yield from comm.recv(source=root, tag=tag)
    return payload


def allgather(comm, nbytes: int, payload: Any = None):
    """Gather to rank 0 then broadcast the assembled list."""
    gathered = yield from gather(comm, 0, nbytes, payload)
    total = nbytes * comm.size
    result = yield from bcast(comm, 0, total, gathered)
    return result


def alltoallv(comm, nbytes_to: Sequence[int], payloads_to: Optional[Sequence[Any]] = None):
    """Personalized all-to-all with per-destination sizes.

    ``nbytes_to[d]`` is what this rank sends to rank ``d``.  Returns the list
    of payloads received, indexed by source.  Ring-shifted pairwise schedule:
    in step ``s`` each rank sends to ``rank+s`` and receives from ``rank-s``,
    which spreads load evenly — the schedule ROMIO's two-phase exchange
    approximates.
    """
    tag = _next_tag(comm)
    size, rank = comm.size, comm.rank
    if len(nbytes_to) != size:
        raise ValueError("nbytes_to must have one entry per rank")
    if payloads_to is not None and len(payloads_to) != size:
        raise ValueError("payloads_to must have one entry per rank")

    received: List[Any] = [None] * size
    received[rank] = payloads_to[rank] if payloads_to is not None else None

    for step in range(1, size):
        dst = (rank + step) % size
        src = (rank - step) % size
        send = comm.isend(
            dst, tag, nbytes_to[dst],
            payloads_to[dst] if payloads_to is not None else None,
        )
        recv = comm.irecv(source=src, tag=tag)
        yield send.done_event & recv.done_event
        received[src] = recv.done_event.value
    return received


def reduce(comm, root: int, nbytes: int, value: Any, op: Callable[[Any, Any], Any]):
    """Reduce to root via gather + fold (rank order, so op should be
    associative and commutative for MPI-equivalent results)."""
    gathered = yield from gather(comm, root, nbytes, value)
    if comm.rank != root:
        return None
    accumulator = gathered[0]
    for item in gathered[1:]:
        accumulator = op(accumulator, item)
    return accumulator


def allreduce(comm, nbytes: int, value: Any, op: Callable[[Any, Any], Any]):
    """Reduce to rank 0 then broadcast the result."""
    result = yield from reduce(comm, 0, nbytes, value, op)
    result = yield from bcast(comm, 0, nbytes, result)
    return result


# -- binomial-tree helpers ----------------------------------------------------

def _parent(vrank: int) -> int:
    """Parent of ``vrank`` in a binomial broadcast tree (vrank > 0).

    Round ``k`` of the broadcast has every node ``v < 2^k`` send to
    ``v + 2^k``; the parent is therefore ``vrank`` with its highest set bit
    cleared.
    """
    if vrank <= 0:
        raise ValueError("the root has no parent")
    return vrank - (1 << (vrank.bit_length() - 1))


def _children(vrank: int, size: int) -> List[int]:
    """Children of ``vrank``: ``vrank + 2^k`` for all ``2^k > vrank``."""
    children = []
    bit = 1 << vrank.bit_length() if vrank > 0 else 1
    while vrank + bit < size:
        children.append(vrank + bit)
        bit <<= 1
    return children


def _abs_rank(vrank: int, root: int, size: int) -> int:
    return (vrank + root) % size
