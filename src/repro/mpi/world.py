"""MpiWorld: convenience harness that wires env + network + communicator.

Typical use::

    world = MpiWorld(nranks=4, network=NetworkConfig.myrinet2000())

    def main(comm):             # runs once per rank
        if comm.rank == 0:
            yield from comm.send(1, tag=0, nbytes=100, payload="hi")
        elif comm.rank == 1:
            payload, status = yield from comm.recv()
        yield from world.barrier(comm)

    world.spawn_all(main)
    world.run()
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional

from ..sim import Environment, Process
from . import collectives
from .communicator import Communicator, RankComm
from .network import Network, NetworkConfig

RankMain = Callable[[RankComm], Generator]


class MpiWorld:
    """A simulated MPI job: ``nranks`` processes over one network."""

    def __init__(
        self,
        nranks: int,
        network: Optional[NetworkConfig] = None,
        env: Optional[Environment] = None,
    ) -> None:
        if nranks <= 0:
            raise ValueError("nranks must be positive")
        self.env = env if env is not None else Environment()
        self.config = network if network is not None else NetworkConfig.myrinet2000()
        self.network = Network(self.env, nranks, self.config)
        self.comm = Communicator(self.env, self.network)
        self.nranks = nranks
        self.rank_procs: Dict[int, Process] = {}

    def __repr__(self) -> str:
        return f"<MpiWorld nranks={self.nranks} now={self.env.now:.6g}>"

    # -- process management ------------------------------------------------
    def spawn(self, rank: int, main: RankMain) -> Process:
        """Start ``main(comm_view)`` as the process for ``rank``."""
        if rank in self.rank_procs:
            raise ValueError(f"rank {rank} already spawned")
        view = self.comm.view(rank)
        proc = self.env.process(main(view), name=f"rank-{rank}")
        self.rank_procs[rank] = proc
        return proc

    def spawn_all(self, main: RankMain) -> List[Process]:
        """Start the same ``main`` on every rank."""
        return [self.spawn(r, main) for r in range(self.nranks)]

    def run(self, until: Optional[float] = None) -> Dict[int, Any]:
        """Run the simulation; returns per-rank process return values.

        With ``until=None`` runs until every spawned rank terminates (any
        rank failure propagates).  Raises if no ranks were spawned.
        """
        if not self.rank_procs:
            raise RuntimeError("No ranks spawned; nothing to run")
        if until is not None:
            self.env.run(until=until)
        else:
            done = self.env.all_of([p for p in self.rank_procs.values()])
            self.env.run(until=done)
        return {
            rank: (proc.value if proc.triggered else None)
            for rank, proc in self.rank_procs.items()
        }

    # -- collectives (delegates, so callers can say world.barrier(comm)) ----
    barrier = staticmethod(collectives.barrier)
    bcast = staticmethod(collectives.bcast)
    gather = staticmethod(collectives.gather)
    gatherv = staticmethod(collectives.gatherv)
    scatter = staticmethod(collectives.scatter)
    scatterv = staticmethod(collectives.scatterv)
    allgather = staticmethod(collectives.allgather)
    alltoallv = staticmethod(collectives.alltoallv)
    reduce = staticmethod(collectives.reduce)
    allreduce = staticmethod(collectives.allreduce)
