"""Nonblocking communication requests (``MPI_Request`` analogue).

A request wraps a kernel event.  ``test()`` polls without blocking (the
pattern Algorithms 1 and 2 of the paper lean on: *"it will only test for
completion (MPI_Test()) instead of blocking on completion (MPI_Wait()) to
allow the process to continue to make progress"*); ``wait()`` is a process
fragment that suspends until completion.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from ..sim import Environment, Event, SimulationError
from .message import Status


class Request:
    """Base class for send/receive requests."""

    __slots__ = ("env", "_done", "_cancelled")

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._done: Event = env.event()
        self._cancelled = False

    def __repr__(self) -> str:
        state = (
            "cancelled"
            if self._cancelled
            else ("complete" if self.completed else "pending")
        )
        return f"<{self.__class__.__name__} {state}>"

    @property
    def completed(self) -> bool:
        """True once the operation has finished (``MPI_Test`` analogue)."""
        return self._done.triggered

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def done_event(self) -> Event:
        """The kernel event to yield on (for any_of/all_of composition)."""
        return self._done

    def test(self) -> bool:
        """Nonblocking completion check."""
        return self.completed

    def wait(self):
        """Process fragment: suspend until complete, return the value."""
        value = yield self._done
        return value

    def _complete(self, value: Any = None) -> None:
        if self._cancelled:
            return
        self._done.succeed(value)

    def _fail(self, exc: BaseException) -> None:
        self._done.fail(exc)


class SendRequest(Request):
    """Completion of a send (eager: buffered; rendezvous: delivered)."""

    __slots__ = ("dst", "tag", "nbytes")

    def __init__(self, env: Environment, dst: int, tag: int, nbytes: int) -> None:
        super().__init__(env)
        self.dst = dst
        self.tag = tag
        self.nbytes = nbytes


class RecvRequest(Request):
    """A posted receive.  Completes with the message payload."""

    __slots__ = ("source", "tag", "_status", "_mailbox", "_matched")

    def __init__(self, env: Environment, source: int, tag: int, mailbox) -> None:
        super().__init__(env)
        self.source = source
        self.tag = tag
        self._status: Optional[Status] = None
        self._mailbox = mailbox
        self._matched = False

    @property
    def status(self) -> Status:
        """The receive status; only valid once completed."""
        if self._status is None:
            raise SimulationError("Receive has not completed; no status available")
        return self._status

    @property
    def matched(self) -> bool:
        """True once an incoming message has been paired with this receive."""
        return self._matched

    def cancel(self) -> None:
        """Withdraw the posted receive (error if already matched)."""
        if self._matched:
            raise SimulationError("Cannot cancel a matched receive")
        self._cancelled = True
        self._mailbox.unpost(self)

    def _deliver(self, payload: Any, status: Status) -> None:
        self._status = status
        self._complete(payload)
