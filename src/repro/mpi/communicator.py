"""The simulated communicator: point-to-point operations per rank.

Each rank gets its own :class:`RankComm` handle (as in real MPI, where every
process holds its own view of the communicator).  Sends spawn small protocol
processes that move bytes through the :class:`~repro.mpi.network.Network`;
receives go through the rank's :class:`~repro.mpi.mailbox.Mailbox`.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..sim import Environment
from .constants import ANY_SOURCE, ANY_TAG, EAGER, RENDEZVOUS_RTS
from .mailbox import Mailbox
from .message import Envelope, Status
from .network import Network
from .request import RecvRequest, SendRequest

# Size of a rendezvous RTS/CTS control message on the wire.
HEADER_BYTES = 64


class Communicator:
    """Shared state: one mailbox per rank plus the network.

    ``ranks`` maps communicator-local rank → global rank (NIC owner); the
    default identity mapping is the world communicator.  Sub-communicators
    (e.g. the worker-only communicator WW-Coll's collective write runs on)
    share the network but have their own matching space, exactly like real
    MPI communicators isolate message traffic.
    """

    def __init__(
        self,
        env: Environment,
        network: Network,
        ranks: Optional[list] = None,
    ) -> None:
        self.env = env
        self.network = network
        if ranks is None:
            ranks = list(range(network.nranks))
        if len(set(ranks)) != len(ranks):
            raise ValueError("ranks must be distinct")
        for g in ranks:
            if not 0 <= g < network.nranks:
                raise ValueError(f"global rank {g} outside network of {network.nranks}")
        self.ranks = list(ranks)
        self.size = len(self.ranks)
        self.mailboxes: Dict[int, Mailbox] = {
            r: Mailbox(env, r) for r in range(self.size)
        }
        self._send_seq = 0

    def __repr__(self) -> str:
        return f"<Communicator size={self.size}>"

    def global_rank(self, local_rank: int) -> int:
        """Translate a communicator-local rank to the global/network rank."""
        return self.ranks[local_rank]

    def sub(self, ranks_local: list) -> "Communicator":
        """A sub-communicator over the given local ranks (in that order)."""
        return Communicator(
            self.env, self.network, [self.ranks[r] for r in ranks_local]
        )

    def view(self, rank: int) -> "RankComm":
        """The rank-local handle used inside that rank's process."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range [0, {self.size})")
        return RankComm(self, rank)

    # -- protocol processes --------------------------------------------------
    def _start_send(
        self, src: int, dst: int, tag: int, nbytes: int, payload: Any,
        oob: bool = False,
    ) -> SendRequest:
        if not 0 <= dst < self.size:
            raise ValueError(f"destination rank {dst} out of range [0, {self.size})")
        if tag < 0 and tag > -1000:
            raise ValueError(f"user tags must be >= 0 (got {tag})")
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")

        request = SendRequest(self.env, dst, tag, nbytes)
        self._send_seq += 1
        seq = self._send_seq

        if oob and src != dst:
            kind = "oob"
            self.env.process(
                self._oob(src, dst, tag, nbytes, payload, seq, request),
                name=f"oob-{src}->{dst}",
            )
        elif src == dst:
            kind = "loopback"
            self.env.process(
                self._loopback(src, dst, tag, nbytes, payload, seq, request),
                name=f"loopback-{src}",
            )
        elif nbytes <= self.network.config.eager_threshold_B:
            kind = "eager"
            self.env.process(
                self._eager(src, dst, tag, nbytes, payload, seq, request),
                name=f"eager-{src}->{dst}",
            )
        else:
            kind = "rendezvous"
            self.env.process(
                self._rendezvous(src, dst, tag, nbytes, payload, seq, request),
                name=f"rndv-{src}->{dst}",
            )
        m = self.env.metrics
        if m.enabled:
            m.counter("mpi.messages", kind=kind, src=self.ranks[src]).add()
            m.counter("mpi.bytes", kind=kind, src=self.ranks[src]).add(float(nbytes))
        c = self.env.check
        if c.enabled:
            c.msg_sent(kind, nbytes)
        return request

    def _loopback(self, src, dst, tag, nbytes, payload, seq, request):
        yield from self.network.transfer(self.ranks[src], self.ranks[dst], nbytes)
        request._complete()
        self.mailboxes[dst].deliver(
            Envelope(src=src, dst=dst, tag=tag, nbytes=nbytes, payload=payload, seq=seq)
        )
        c = self.env.check
        if c.enabled:
            c.msg_delivered("loopback", nbytes)

    def _oob(self, src, dst, tag, nbytes, payload, seq, request):
        # Out-of-band control channel (management network): pays the wire
        # latency but never competes with bulk data for NIC bandwidth and
        # is exempt from injected link faults.  Used for liveness traffic
        # (heartbeats, rejoin notices, write acks) — a cluster's fault
        # detector must not suffocate under the very congestion it watches.
        yield from self.network.wire_latency()
        request._complete()
        self.mailboxes[dst].deliver(
            Envelope(
                src=src, dst=dst, tag=tag, nbytes=nbytes, payload=payload,
                kind=EAGER, seq=seq,
            )
        )
        c = self.env.check
        if c.enabled:
            c.msg_delivered("oob", nbytes)

    def _eager(self, src, dst, tag, nbytes, payload, seq, request):
        # Sender serializes onto the wire; once the bytes leave the host the
        # send is locally complete (buffered at the receiver).
        yield from self.network.occupy_tx(self.ranks[src], nbytes)
        request._complete()
        yield from self.network.deliver(self.ranks[src], self.ranks[dst], nbytes)
        self.mailboxes[dst].deliver(
            Envelope(
                src=src, dst=dst, tag=tag, nbytes=nbytes, payload=payload,
                kind=EAGER, seq=seq,
            )
        )
        c = self.env.check
        if c.enabled:
            c.msg_delivered("eager", nbytes)

    def _rendezvous(self, src, dst, tag, nbytes, payload, seq, request):
        cts = self.env.event()
        data = self.env.event()
        header = Envelope(
            src=src, dst=dst, tag=tag, nbytes=nbytes, payload=None,
            kind=RENDEZVOUS_RTS, seq=seq, cts_event=cts, data_event=data,
        )
        # RTS header to the receiver.
        yield from self.network.occupy_tx(self.ranks[src], HEADER_BYTES)
        yield from self.network.deliver(
            self.ranks[src], self.ranks[dst], HEADER_BYTES
        )
        self.mailboxes[dst].deliver(header)
        # Delivered once the receiver holds the RTS envelope: the payload
        # stream is driven by the matched receive from here on.
        c = self.env.check
        if c.enabled:
            c.msg_delivered("rendezvous", nbytes)
        # Wait for the matching receive (CTS), pay the CTS flight time,
        # then stream the payload.
        yield cts
        yield from self.network.wire_latency()
        yield from self.network.transfer(self.ranks[src], self.ranks[dst], nbytes)
        request._complete()
        data.succeed(payload)


class RankComm:
    """Rank-local communicator handle (the object rank code talks to)."""

    def __init__(self, comm: Communicator, rank: int) -> None:
        self._comm = comm
        self.rank = rank
        self.mailbox = comm.mailboxes[rank]
        # Per-rank collective sequence number: collectives must be invoked
        # in the same order on every rank (an MPI correctness requirement),
        # so identical counters yield matching reserved tags.
        self._coll_seq = 0

    def __repr__(self) -> str:
        return f"<RankComm rank={self.rank}/{self.size}>"

    @property
    def env(self) -> Environment:
        return self._comm.env

    @property
    def size(self) -> int:
        return self._comm.size

    @property
    def global_rank(self) -> int:
        """The network/world rank behind this communicator-local rank."""
        return self._comm.ranks[self.rank]

    @property
    def network(self) -> Network:
        return self._comm.network

    # -- nonblocking p2p -----------------------------------------------------
    def isend(
        self, dst: int, tag: int, nbytes: int, payload: Any = None,
        oob: bool = False,
    ) -> SendRequest:
        """Start a nonblocking send of ``nbytes`` (``payload`` rides along).

        ``oob=True`` routes the message over the out-of-band management
        channel (wire latency only — no NIC contention, no link faults);
        reserved for tiny liveness/control messages."""
        return self._comm._start_send(self.rank, dst, tag, nbytes, payload, oob=oob)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> RecvRequest:
        """Post a nonblocking receive."""
        request = RecvRequest(self.env, source, tag, self.mailbox)
        self.mailbox.post(request)
        return request

    # -- blocking p2p (process fragments) -------------------------------------
    def send(self, dst: int, tag: int, nbytes: int, payload: Any = None):
        """Process fragment: blocking send."""
        request = self.isend(dst, tag, nbytes, payload)
        yield from request.wait()

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Process fragment: blocking receive, returns ``(payload, status)``."""
        request = self.irecv(source, tag)
        payload = yield from request.wait()
        return payload, request.status

    # -- probing ---------------------------------------------------------------
    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Status]:
        """Nonblocking probe of the unexpected-message queue."""
        return self.mailbox.probe(source, tag)
