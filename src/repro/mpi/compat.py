"""An mpi4py-flavoured facade over the simulated MPI.

The reproduction environment has no MPI runtime, but much existing
parallel-bioinformatics code (and any direct S3aSim port) is written
against mpi4py's API.  This facade mirrors the relevant subset —
``comm.send/recv/isend/irecv``, ``comm.bcast/gather/barrier``,
``MPI.File.Open / Write_at / Write_at_all / Sync / Close`` — so such code
can run inside a rank *process fragment* with minimal edits.

The one structural difference is unavoidable in a discrete-event world:
blocking calls are generators (``yield from comm.send(...)``) and
nonblocking requests are awaited with ``yield from req.wait()`` — the
cooperative equivalents of their blocking originals.  ``Request.Test()``
matches mpi4py exactly.

Example (mpi4py tutorial's point-to-point snippet, adapted)::

    def main(C):            # C is a CompatComm
        if C.Get_rank() == 0:
            data = {"a": 7, "b": 3.14}
            yield from C.send(data, dest=1, tag=11)
        elif C.Get_rank() == 1:
            data = yield from C.recv(source=0, tag=11)
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

from . import collectives
from .communicator import RankComm
from .constants import ANY_SOURCE, ANY_TAG
from ..mpiio.file import MPIIOFile
from ..mpiio.hints import MPIIOHints
from ..pvfs.filesystem import FileSystem

# mpi4py-style module constants.
MODE_WRONLY = 0x04
MODE_RDWR = 0x08
MODE_CREATE = 0x01


def _payload_nbytes(obj: Any) -> int:
    """Approximate pickled size of a Python object (for wire timing)."""
    import pickle

    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 64


class CompatRequest:
    """mpi4py-style request wrapper (capitalized Test/Wait)."""

    def __init__(self, request) -> None:
        self._request = request

    def Test(self) -> bool:  # noqa: N802 - mpi4py naming
        return self._request.test()

    def Wait(self):  # noqa: N802 - mpi4py naming
        """Process fragment: ``value = yield from req.Wait()``."""
        value = yield from self._request.wait()
        return value

    @property
    def request(self):
        return self._request


class CompatComm:
    """mpi4py-ish communicator facade over a :class:`RankComm`."""

    def __init__(self, comm: RankComm) -> None:
        self._comm = comm

    # -- introspection (exact mpi4py names) --------------------------------
    def Get_rank(self) -> int:  # noqa: N802
        return self._comm.rank

    def Get_size(self) -> int:  # noqa: N802
        return self._comm.size

    @property
    def rank(self) -> int:
        return self._comm.rank

    @property
    def size(self) -> int:
        return self._comm.size

    @property
    def raw(self) -> RankComm:
        return self._comm

    # -- point to point -----------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0):
        """Process fragment: blocking pickled-object send."""
        yield from self._comm.send(dest, tag, _payload_nbytes(obj), obj)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Process fragment: blocking receive; returns the object."""
        payload, _status = yield from self._comm.recv(source, tag)
        return payload

    def isend(self, obj: Any, dest: int, tag: int = 0) -> CompatRequest:
        return CompatRequest(
            self._comm.isend(dest, tag, _payload_nbytes(obj), obj)
        )

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> CompatRequest:
        return CompatRequest(self._comm.irecv(source, tag))

    # -- collectives -----------------------------------------------------------
    def barrier(self):
        yield from collectives.barrier(self._comm)

    def bcast(self, obj: Any, root: int = 0):
        result = yield from collectives.bcast(
            self._comm, root, _payload_nbytes(obj), obj
        )
        return result

    def gather(self, obj: Any, root: int = 0):
        result = yield from collectives.gather(
            self._comm, root, _payload_nbytes(obj), obj
        )
        return result

    def scatter(self, objs: Optional[Sequence[Any]], root: int = 0):
        nbytes = max(
            (_payload_nbytes(o) for o in objs), default=64
        ) if objs is not None else 64
        result = yield from collectives.scatter(self._comm, root, nbytes, objs)
        return result

    def allgather(self, obj: Any):
        result = yield from collectives.allgather(
            self._comm, _payload_nbytes(obj), obj
        )
        return result

    def allreduce(self, obj: Any, op=None):
        import operator

        op = op if op is not None else operator.add
        result = yield from collectives.allreduce(
            self._comm, _payload_nbytes(obj), obj, op
        )
        return result


class File:
    """mpi4py ``MPI.File`` facade over the simulated MPI-IO layer."""

    def __init__(self, handle: MPIIOFile, comm: CompatComm) -> None:
        self._handle = handle
        self._comm = comm

    @classmethod
    def Open(  # noqa: N802
        cls,
        comm: CompatComm,
        fs: FileSystem,
        filename: str,
        amode: int = MODE_WRONLY | MODE_CREATE,
        hints: Optional[MPIIOHints] = None,
    ):
        """Process fragment: collective open (every rank must call)."""
        if hints is None:
            hints = MPIIOHints(sync_after_write=False)
        handle = yield from MPIIOFile.open(comm.raw, fs, filename, hints)
        return cls(handle, comm)

    def Write_at(self, offset: int, data: bytes):  # noqa: N802
        """Process fragment: independent contiguous write."""
        yield from self._handle.write_at(
            self._comm.raw.global_rank, offset, len(data), data
        )

    def Write_at_all(  # noqa: N802
        self, offset: int, data: bytes
    ):
        """Process fragment: collective write of one contiguous block per
        rank at ``offset`` (every rank passes its own offset/data)."""
        regions = [(offset, len(data))] if data else []
        datas = [data] if data else None
        yield from self._handle.write_at_all(self._comm.raw, regions, datas)

    def Read_at(self, offset: int, nbytes: int):  # noqa: N802
        """Process fragment: independent contiguous read."""
        data = yield from self._handle.fs.read(
            self._comm.raw.global_rank, self._handle.file, offset, nbytes
        )
        return data

    def Sync(self):  # noqa: N802
        yield from self._handle.sync(self._comm.raw.global_rank)

    def Close(self):  # noqa: N802
        """Closing is collective in MPI; a barrier models it."""
        yield from collectives.barrier(self._comm.raw)

    @property
    def handle(self) -> MPIIOFile:
        return self._handle
