"""PVFS2 facade: files, client operations, and the server farm.

Client operations are process fragments invoked from rank processes.  A
logical request is split by the striping layout into per-server subrequests
that proceed *in parallel* (PVFS2 clients talk to all servers directly; no
single funnel), each paying: client NIC serialization → wire latency →
server inbound channel → disk service → response latency.

PVFS2 characteristics modelled faithfully:

* native list I/O — many (offset, length) regions per request, up to
  ``listio_max_regions`` (64 in the PVFS2 listio wire protocol);
* no write atomicity/locking — concurrent non-overlapping writes never
  serialize against each other beyond physical contention (the paper's
  Section 3.1 point about PVFS2 avoiding false-sharing serialization);
* a single metadata server (first server also runs metadata duties on the
  Feynman deployment).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..sim import Environment, Event, Resource, SimulationError
from ..mpi.network import NetworkConfig, Nic, KIB, MIB
from .bytestore import ByteStore
from .disk import DiskModel
from .layout import Region, StripingLayout
from .replica import MissedLedger
from .sched import SCHEDULERS
from .server import IOServer, MetadataServer


@dataclass(frozen=True)
class PVFSConfig:
    """Deployment parameters for the simulated file system."""

    nservers: int = 16
    strip_size: int = 64 * KIB
    disk: DiskModel = field(default_factory=DiskModel)
    network: NetworkConfig = field(default_factory=NetworkConfig.myrinet2000)
    metadata_op_s: float = 3e-4
    request_header_B: int = 256
    listio_max_regions: int = 64
    #: Effective per-client streaming rate into the file system.  A single
    #: 2006 PVFS2 client could not come close to saturating a 16-server
    #: volume — client-side buffer copies, flow-control windows, and the
    #: sync-after-every-write discipline bound one process to a few MB/s,
    #: which is why "having more clients writing simultaneously provides
    #: better I/O throughput" (paper Section 2.2) and why master-writing
    #: cannot scale.  Aggregate bandwidth still scales with client count up
    #: to the servers' limits.
    client_pipeline_Bps: float = 3 * MIB
    store_data: bool = False
    #: Client retry policy when an I/O server is unreachable: first wait,
    #: multiplicative backoff, and the cap the backoff saturates at.
    #: PVFS2 clients of the era polled the BMI layer much the same way.
    retry_initial_s: float = 0.05
    retry_backoff: float = 2.0
    retry_cap_s: float = 1.0
    #: Per-server disk-queue scheduler: ``"fifo"`` (the seed behaviour —
    #: no reordering layer is even constructed) or ``"elevator"``
    #: (starvation-bounded C-SCAN over physical offsets; see
    #: :mod:`repro.pvfs.sched`).
    disk_sched: str = "fifo"
    #: Times an elevator may pass a waiting request over before it is
    #: serviced in arrival order regardless of offset.
    elevator_aging: int = 8
    #: Per-server write-back buffer cache in bytes; 0 disables it (the
    #: seed behaviour; see :mod:`repro.pvfs.cache`).
    server_cache_B: int = 0
    #: Dirty fraction of the cache that triggers a background flush.
    cache_watermark: float = 0.75
    #: Flush dirty extents after this long without a new write.
    cache_idle_flush_s: float = 0.02
    #: Memory-copy rate the cache absorbs writes and serves hits at.
    cache_mem_Bps: float = 800 * MIB
    #: Per-server sequential read-ahead window in bytes; 0 disables it
    #: (the seed behaviour).  A read continuing a sequential stream
    #: prefetches this many further bytes through the disk stack; later
    #: reads fully covered by the prefetched extents are served at memory
    #: speed (see :class:`~repro.pvfs.server.IOServer`).
    readahead_B: int = 0
    #: Copies of every strip, on ``replicas`` consecutive servers (rotated
    #: placement; see :meth:`StripingLayout.replica_chain`).  1 — the seed
    #: behaviour, bit-identical — means no redundancy: an outage stalls
    #: clients and a kill loses data.  With 2+ the volume rides through
    #: outages in degraded mode and rebuilds in the background.
    replicas: int = 1
    #: Redundancy code.  Only ``"none"`` (full copies) is modelled; parity
    #: schemes change the small-write path fundamentally (read-modify-write
    #: cycles) and are rejected rather than silently approximated.
    parity: str = "none"
    #: Rate the background rebuild pulls missed bytes from peer replicas
    #: (or re-drives lost cache data from clients) at.
    rebuild_Bps: float = 32 * MIB
    #: Rebuild transfer granularity: extents are drained from the missed
    #: ledger in chunks of at most this many bytes, so rebuild traffic
    #: interleaves with foreground I/O instead of monopolising the disk.
    rebuild_chunk_B: int = 1 * MIB

    def __post_init__(self) -> None:
        if not math.isfinite(self.retry_initial_s) or self.retry_initial_s <= 0:
            raise ValueError("retry_initial_s must be positive and finite")
        if not math.isfinite(self.retry_backoff) or self.retry_backoff < 1.0:
            raise ValueError("retry_backoff must be >= 1 and finite")
        if not math.isfinite(self.retry_cap_s) or self.retry_cap_s <= 0:
            raise ValueError("retry_cap_s must be positive and finite")
        if self.nservers <= 0:
            raise ValueError("nservers must be positive")
        if self.strip_size <= 0:
            raise ValueError("strip_size must be positive")
        if self.listio_max_regions <= 0:
            raise ValueError("listio_max_regions must be positive")
        if self.request_header_B < 0:
            raise ValueError("request_header_B must be non-negative")
        if self.client_pipeline_Bps <= 0:
            raise ValueError("client_pipeline_Bps must be positive")
        if self.disk_sched not in SCHEDULERS:
            raise ValueError(
                f"disk_sched must be one of {SCHEDULERS}, got {self.disk_sched!r}"
            )
        if self.elevator_aging < 1:
            raise ValueError("elevator_aging must be >= 1")
        if self.server_cache_B < 0:
            raise ValueError("server_cache_B must be non-negative")
        if not 0.0 < self.cache_watermark <= 1.0:
            raise ValueError("cache_watermark must be in (0, 1]")
        if self.cache_idle_flush_s <= 0:
            raise ValueError("cache_idle_flush_s must be positive")
        if self.cache_mem_Bps <= 0:
            raise ValueError("cache_mem_Bps must be positive")
        if self.readahead_B < 0:
            raise ValueError("readahead_B must be non-negative")
        if not 1 <= self.replicas <= self.nservers:
            raise ValueError(
                f"replicas must be in [1, nservers={self.nservers}], "
                f"got {self.replicas}"
            )
        if self.parity != "none":
            raise ValueError(
                f"parity={self.parity!r} is not modelled: parity codes turn "
                "small writes into read-modify-write cycles, which this "
                "replication layer does not capture; only 'none' (full "
                "copies) is supported"
            )
        if not math.isfinite(self.rebuild_Bps) or self.rebuild_Bps <= 0:
            raise ValueError("rebuild_Bps must be positive and finite")
        if self.rebuild_chunk_B <= 0:
            raise ValueError("rebuild_chunk_B must be positive")

    @classmethod
    def feynman(cls, store_data: bool = False) -> "PVFSConfig":
        """The paper's deployment: 16 servers, 64 KiB strips."""
        return cls(store_data=store_data)

    def layout(self) -> StripingLayout:
        return StripingLayout(
            strip_size=self.strip_size,
            nservers=self.nservers,
            replicas=self.replicas,
        )


class PVFSFile:
    """A file in the simulated PVFS2 namespace."""

    def __init__(self, name: str, layout: StripingLayout, store_data: bool) -> None:
        self.name = name
        self.layout = layout
        self.bytestore = ByteStore(store_data=store_data)

    def __repr__(self) -> str:
        return f"<PVFSFile {self.name!r} size={self.size}>"

    @property
    def size(self) -> int:
        return self.bytestore.size()


class FileSystem:
    """The PVFS2 volume: I/O servers, metadata server, namespace.

    ``client_nic`` optionally maps a client id (MPI rank) to its
    :class:`~repro.mpi.network.Nic` so file-system traffic contends with
    MPI traffic on the same host adapter — on the Feynman cluster both
    rode the same Myrinet.
    """

    def __init__(
        self,
        env: Environment,
        config: Optional[PVFSConfig] = None,
        client_nic: Optional[Callable[[int], Nic]] = None,
        recorder=None,
    ) -> None:
        self.env = env
        self.config = config if config is not None else PVFSConfig()
        self.layout = self.config.layout()
        cfg = self.config
        self.servers: List[IOServer] = [
            IOServer(
                env,
                i,
                cfg.disk,
                sched=cfg.disk_sched,
                sched_aging=cfg.elevator_aging,
                cache_B=cfg.server_cache_B,
                cache_watermark=cfg.cache_watermark,
                cache_idle_flush_s=cfg.cache_idle_flush_s,
                cache_mem_Bps=cfg.cache_mem_Bps,
                readahead_B=cfg.readahead_B,
                recorder=recorder,
            )
            for i in range(cfg.nservers)
        ]
        self.metadata = MetadataServer(env, self.config.metadata_op_s)
        self.files: Dict[str, PVFSFile] = {}
        self._client_nic = client_nic
        # Fallback per-client serialization when no NIC is wired in: the
        # client pipeline is a host-wide bottleneck, so concurrent
        # subrequests from one client must not each get full rate.
        self._client_locks: Dict[int, "Resource"] = {}
        # Pristine disk models, kept so a degradation window can be lifted
        # exactly (degrade_server compounds and is permanent by design).
        self._pristine_disks: List[DiskModel] = [s.disk for s in self.servers]
        self.fault_stats: Dict[str, float] = {
            "retries": 0.0,
            "retry_wait_s": 0.0,
            "degraded_writes": 0.0,
            "degraded_write_bytes": 0.0,
            "read_failovers": 0.0,
            "dead_replica_skips": 0.0,
            "sync_skips": 0.0,
            "rebuilds": 0.0,
            "rebuild_bytes": 0.0,
            "cache_lost_bytes": 0.0,
            "abandoned_bytes": 0.0,
        }
        self.recorder = recorder
        self.nreplicas = cfg.replicas
        #: Per-server ledgers of bytes acked to clients but not durable on
        #: that server (degraded writes + lost cache data), created lazily
        #: so healthy replicas=1 runs never touch them.
        self.missed: Dict[int, MissedLedger] = {}
        self._rebuild_active: set = set()

    def __repr__(self) -> str:
        return f"<FileSystem servers={len(self.servers)} files={len(self.files)}>"

    # -- fault/degradation injection --------------------------------------
    def degrade_server(self, server_id: int, factor: float) -> None:
        """Slow one I/O server down by ``factor`` (a straggler disk).

        Every striped request touches most servers, so a single straggler
        throttles the whole volume — a classic parallel-file-system
        failure mode.  ``factor`` scales service times (>1 = slower) and
        compounds across calls; use :meth:`set_degraded` /
        :meth:`clear_degraded` for a revertible window instead.
        """
        if not isinstance(factor, (int, float)) or isinstance(factor, bool):
            raise ValueError(f"factor must be a number, got {factor!r}")
        if not math.isfinite(factor):
            raise ValueError(f"factor must be finite, got {factor!r}")
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor!r}")
        server = self.servers[server_id]
        disk = server.disk
        server.disk = replace(
            disk,
            op_overhead_s=disk.op_overhead_s * factor,
            region_overhead_s=disk.region_overhead_s * factor,
            seek_penalty_s=disk.seek_penalty_s * factor,
            bandwidth_Bps=disk.bandwidth_Bps / factor,
            sync_s=disk.sync_s * factor,
        )

    def set_degraded(self, server_id: int, factor: float) -> None:
        """Enter a degraded window: ``factor``× slower relative to pristine."""
        self.servers[server_id].disk = self._pristine_disks[server_id]
        self.degrade_server(server_id, factor)

    def clear_degraded(self, server_id: int) -> None:
        """Leave a degraded window: restore the pristine disk model exactly."""
        self.servers[server_id].disk = self._pristine_disks[server_id]

    def fail_server(self, server_id: int) -> None:
        """Begin an outage: clients back off and retry until restore.

        With ``replicas > 1`` clients instead fail over to the other
        members of each strip's chain, and the skipped copies are recorded
        for background rebuild.  Dirty write-back-cache data on the failed
        server is *lost* (the buffer is volatile) and ledgered the same
        way, so the restored daemon re-drives it from clients.
        """
        server = self.servers[server_id]
        if server.dead:
            return
        dropped = server.fail()
        self._ledger_extents(server_id, [(lo, hi - lo) for lo, hi in dropped])
        if dropped:
            self.fault_stats["cache_lost_bytes"] += sum(
                hi - lo for lo, hi in dropped
            )

    def kill_server(self, server_id: int) -> None:
        """Remove a server permanently (hardware death, not an outage).

        Requires ``replicas >= 2`` to be survivable — the config layer
        enforces that for planned kills; callers poking a replicas=1
        volume lose whatever lived there.  The dead server's missed ledger
        is abandoned: no rebuild will ever run, the surviving chain
        members are the data's only home.
        """
        server = self.servers[server_id]
        if server.dead:
            return
        dropped = server.fail(permanent=True)
        # Cache data dropped at kill time passes through the ledger (so the
        # checker's missed/abandoned accounting stays exact) and is then
        # abandoned with everything else.
        self._ledger_extents(server_id, [(lo, hi - lo) for lo, hi in dropped])
        if dropped:
            self.fault_stats["cache_lost_bytes"] += sum(
                hi - lo for lo, hi in dropped
            )
        ledger = self.missed.get(server_id)
        abandoned = ledger.abandon() if ledger is not None else 0
        if abandoned:
            self.fault_stats["abandoned_bytes"] += abandoned
        c = self.env.check
        if c.enabled:
            c.server_dead(server_id, abandoned)

    def restore_server(self, server_id: int) -> None:
        """End an outage; start a background rebuild if bytes are missing."""
        server = self.servers[server_id]
        server.restore()
        if not server.up:  # permanently dead — restore is a no-op
            return
        ledger = self.missed.get(server_id)
        if ledger is not None and not ledger.empty:
            if server_id not in self._rebuild_active:
                self._rebuild_active.add(server_id)
                self.env.process(
                    self._rebuild(server), name=f"rebuild-s{server_id}"
                )

    def _ledger_extents(self, server_id: int, regions: List[Region]) -> None:
        """Record regions acked-but-not-durable on ``server_id``."""
        regions = [(o, l) for o, l in regions if l > 0]
        if not regions:
            return
        ledger = self.missed.get(server_id)
        if ledger is None:
            ledger = self.missed[server_id] = MissedLedger()
        grown = ledger.record(regions)
        if grown:
            c = self.env.check
            if c.enabled:
                c.replica_missed(server_id, grown)

    def _rebuild(self, server: IOServer):
        """Process fragment: close ``server``'s durability gap in the background.

        Missed extents drain in rate-limited chunks — each chunk pays a
        transfer delay (peer pull for replica copies, client re-send for
        lost cache data) and then lands through the normal disk stack,
        bypassing the volatile cache.  A second outage mid-rebuild requeues
        the in-flight chunk and stops; the next restore resumes.
        """
        sid = server.server_id
        ledger = self.missed[sid]
        cfg = self.config
        started = self.env.now
        moved = 0
        self.fault_stats["rebuilds"] += 1.0
        c = self.env.check
        while server.up and not ledger.empty:
            chunk = ledger.drain(cfg.rebuild_chunk_B)
            nbytes = sum(length for _, length in chunk)
            yield self.env.timeout(nbytes / cfg.rebuild_Bps)
            if not server.up:
                ledger.requeue(chunk)
                if server.dead:
                    # Killed mid-rebuild: the kill already abandoned the
                    # ledger, so the requeued in-flight chunk follows it.
                    dropped = ledger.abandon()
                    if dropped:
                        self.fault_stats["abandoned_bytes"] += dropped
                        if c.enabled:
                            c.server_dead(sid, dropped)
                break
            yield from server.service_rebuild(chunk)
            ledger.mark_rebuilt(nbytes)
            moved += nbytes
            self.fault_stats["rebuild_bytes"] += nbytes
            if c.enabled:
                c.replica_rebuilt(sid, nbytes)
        self._rebuild_active.discard(sid)
        if moved and self.recorder is not None:
            self.recorder.record(-(sid + 1), "server_rebuild", started, self.env.now)

    # -- namespace ------------------------------------------------------------
    def open(self, client: int, path: str, create: bool = True):
        """Process fragment: open (and maybe create) a file; returns it."""
        yield from self._round_trip_metadata()
        if path not in self.files:
            if not create:
                raise FileNotFoundError(path)
            yield from self._round_trip_metadata()
            # Re-check: another client may have raced us to the create while
            # we waited on the metadata server (which arbitrates for real);
            # both openers must end up with the same file object.
            if path not in self.files:
                self.files[path] = PVFSFile(
                    path, self.layout, self.config.store_data
                )
        return self.files[path]

    def lookup(self, path: str) -> PVFSFile:
        """Zero-cost namespace lookup for assertions in tests."""
        return self.files[path]

    # -- data operations ---------------------------------------------------------
    def write(
        self,
        client: int,
        file: PVFSFile,
        offset: int,
        length: int,
        data: Optional[bytes] = None,
    ):
        """Process fragment: one contiguous write."""
        yield from self.write_list(
            client, file, [(offset, length)], [data] if data is not None else None
        )

    def write_list(
        self,
        client: int,
        file: PVFSFile,
        regions: Sequence[Region],
        datas: Optional[Sequence[Optional[bytes]]] = None,
    ):
        """Process fragment: a PVFS2 list-I/O write of many regions.

        The request is decomposed per server; each server receives at most
        ``listio_max_regions`` regions per wire request (additional requests
        are pipelined to the same server).  Subrequests to distinct servers
        run concurrently.
        """
        regions = list(regions)
        if datas is not None and len(datas) != len(regions):
            raise ValueError("datas must align with regions")
        for idx, (offset, length) in enumerate(regions):
            file.bytestore.write(
                offset, length, datas[idx] if datas is not None else None
            )

        by_server = self.layout.map_regions(regions)
        c = self.env.check
        if c.enabled:
            c.layout_mapped(
                sum(length for _, length in regions),
                sum(p.length for pieces in by_server.values() for p in pieces),
            )
        subrequests = []
        for server_id, pieces in by_server.items():
            # Service in ascending physical offset, as the server would.
            phys = sorted((p.physical_offset, p.length) for p in pieces)
            for start in range(0, len(phys), self.config.listio_max_regions):
                chunk = phys[start : start + self.config.listio_max_regions]
                subrequests.append((self.servers[server_id], chunk))

        if self.nreplicas > 1:
            yield from self._issue_replicated(client, subrequests, is_read=False)
        else:
            yield from self._issue_parallel(client, subrequests, is_read=False)

    def read(self, client: int, file: PVFSFile, offset: int, length: int):
        """Process fragment: one contiguous read; returns bytes when stored."""
        result = yield from self.read_list(client, file, [(offset, length)])
        return result[0] if result is not None else None

    def read_list(self, client: int, file: PVFSFile, regions: Sequence[Region]):
        """Process fragment: list-I/O read; returns per-region bytes or None."""
        regions = list(regions)
        by_server = self.layout.map_regions(regions)
        c = self.env.check
        if c.enabled:
            c.layout_mapped(
                sum(length for _, length in regions),
                sum(p.length for pieces in by_server.values() for p in pieces),
            )
        subrequests = []
        for server_id, pieces in by_server.items():
            phys = sorted((p.physical_offset, p.length) for p in pieces)
            for start in range(0, len(phys), self.config.listio_max_regions):
                chunk = phys[start : start + self.config.listio_max_regions]
                subrequests.append((self.servers[server_id], chunk))
        if self.nreplicas > 1:
            yield from self._issue_replicated(client, subrequests, is_read=True)
        else:
            yield from self._issue_parallel(client, subrequests, is_read=True)
        if file.bytestore.store_data:
            return [file.bytestore.read(offset, length) for offset, length in regions]
        return None

    def sync(self, client: int, file: PVFSFile):
        """Process fragment: flush on every server (MPI_File_sync target).

        With ``replicas > 1`` a down server is skipped rather than waited
        for — its data already rode the surviving chain members and its
        own copy is in the missed ledger, so stalling the sync would buy
        nothing.  Dead servers are always skipped.  With the seed config
        (``replicas=1``) the seed behaviour — wait out the outage — is
        preserved exactly.
        """
        procs = []
        for server in self.servers:
            if server.dead or (not server.up and self.nreplicas > 1):
                self.fault_stats["sync_skips"] += 1.0
                continue
            procs.append(
                self.env.process(
                    self._sync_one(client, server),
                    name=f"sync-s{server.server_id}",
                )
            )
        if procs:
            yield self.env.all_of(procs)

    # -- internals -----------------------------------------------------------------
    def _round_trip_metadata(self):
        net = self.config.network
        yield self.env.timeout(net.latency_s)
        yield from self.metadata.operation()
        yield self.env.timeout(net.latency_s)

    def _client_tx(self, client: int, nbytes: int):
        """Client-side serialization of ``nbytes`` into the file system.

        Rate-limited by the slower of the NIC and the PVFS2 client
        pipeline; holds the host NIC so file-system and MPI traffic
        contend, as they did on Feynman's shared Myrinet.
        """
        net = self.config.network
        rate = min(net.bandwidth_Bps, self.config.client_pipeline_Bps)
        seconds = nbytes / rate + net.cpu_overhead_s
        nic = self._client_nic(client) if self._client_nic is not None else None
        if nic is None:
            if client not in self._client_locks:
                self._client_locks[client] = Resource(self.env, capacity=1)
            with self._client_locks[client].request() as slot:
                yield slot
                yield self.env.timeout(seconds)
        else:
            with nic.tx.request() as slot:
                yield slot
                yield self.env.timeout(seconds)
            nic.stats.tx_messages += 1
            nic.stats.tx_bytes += nbytes
            m = self.env.metrics
            if m.enabled:
                # A shared adapter (ranks_per_nic > 1) carries several
                # ranks' traffic — label by both so neither attribution
                # is lost.
                m.inc("mpi.nic_tx_bytes", float(nbytes), nic=nic.nic_id, rank=client)

    def _issue_parallel(
        self,
        client: int,
        subrequests: List[Tuple[IOServer, List[Tuple[int, int]]]],
        is_read: bool,
    ):
        if not subrequests:
            return
        procs = [
            self.env.process(
                self._one_server_request(client, server, chunk, is_read),
                name=f"io-c{client}-s{server.server_id}",
            )
            for server, chunk in subrequests
        ]
        yield self.env.all_of(procs)

    def _one_server_request(
        self,
        client: int,
        server: IOServer,
        phys_regions: List[Tuple[int, int]],
        is_read: bool,
    ):
        net = self.config.network
        nbytes = sum(length for _, length in phys_regions)
        header = self.config.request_header_B + 16 * len(phys_regions)

        if not server.up:
            yield from self._await_server(server)
        if is_read:
            # Request out (header only), data back.  The response leaves on
            # the server's *outbound* channel — read replies must not queue
            # behind incoming write payloads on ``net_in`` (full duplex,
            # like a NIC's TX/RX split).
            yield from self._client_tx(client, header)
            yield self.env.timeout(net.latency_s)
            yield from server.service_write(phys_regions, is_read=True)
            with server.net_out.request() as slot:
                yield slot
                yield self.env.timeout(net.serialization_time(nbytes))
            yield self.env.timeout(net.latency_s)
        else:
            # Header + payload out, small ack back.
            yield from self._client_tx(client, header + nbytes)
            yield self.env.timeout(net.latency_s)
            with server.net_in.request() as slot:
                yield slot
                yield self.env.timeout(net.serialization_time(header + nbytes))
            yield from server.service_write(phys_regions, is_read=False)
            yield self.env.timeout(net.latency_s)

    def _await_server(self, server: IOServer):
        """Process fragment: back off exponentially until ``server`` is up.

        Zero-cost in healthy runs — callers guard with ``if not server.up``
        so no extra events enter the schedule unless an outage is active.
        """
        cfg = self.config
        delay = cfg.retry_initial_s
        while not server.up:
            self.fault_stats["retries"] += 1.0
            self.fault_stats["retry_wait_s"] += delay
            m = self.env.metrics
            if m.enabled:
                m.inc("pvfs.retries", 1.0, server=server.server_id)
            yield self.env.timeout(delay)
            delay = min(delay * cfg.retry_backoff, cfg.retry_cap_s)

    # -- replicated I/O -----------------------------------------------------
    def _issue_replicated(
        self,
        client: int,
        subrequests: List[Tuple[IOServer, List[Tuple[int, int]]]],
        is_read: bool,
    ):
        """Replicated twin of :meth:`_issue_parallel` (``replicas > 1`` only)."""
        if not subrequests:
            return
        make = self._one_replicated_read if is_read else self._one_replicated_write
        procs = [
            self.env.process(
                make(client, server, chunk),
                name=f"io-c{client}-s{server.server_id}",
            )
            for server, chunk in subrequests
        ]
        yield self.env.all_of(procs)

    def _one_replicated_write(
        self,
        client: int,
        primary: IOServer,
        phys_regions: List[Tuple[int, int]],
    ):
        """Chain-replicated write of one per-server chunk.

        The client streams header+payload to the chain head (the first
        *live* chain member); each live member store-and-forwards to the
        next over the server NICs.  The write completes when every live
        replica has serviced its copy — down-but-alive members are skipped
        and their copy ledgered for rebuild (degraded mode); dead members
        are skipped outright.  Liveness is snapshotted when the request is
        admitted: members that die mid-chain still complete in-flight work,
        matching the outage model everywhere else.
        """
        net = self.config.network
        nbytes = sum(length for _, length in phys_regions)
        header = self.config.request_header_B + 16 * len(phys_regions)
        chain = self.layout.replica_chain(primary.server_id)

        while True:
            live = [
                (slot, self.servers[sid])
                for slot, sid in enumerate(chain)
                if self.servers[sid].up
            ]
            if live:
                break
            yield from self._await_replica_set(chain)

        missed = [
            (slot, sid)
            for slot, sid in enumerate(chain)
            if not self.servers[sid].up and not self.servers[sid].dead
        ]
        ndead = len(chain) - len(live) - len(missed)
        if missed:
            for slot, sid in missed:
                self._ledger_extents(
                    sid, StripingLayout.replica_regions(phys_regions, slot)
                )
            self.fault_stats["degraded_writes"] += 1.0
            self.fault_stats["degraded_write_bytes"] += float(nbytes * len(missed))
            m = self.env.metrics
            if m.enabled:
                m.inc("pvfs.degraded_writes", 1.0, server=primary.server_id)
        if ndead:
            self.fault_stats["dead_replica_skips"] += float(ndead)
        c = self.env.check
        if c.enabled:
            c.replica_write(
                primary.server_id, nbytes, len(live), len(missed), ndead
            )

        yield from self._client_tx(client, header + nbytes)
        yield self.env.timeout(net.latency_s)
        previous: Optional[IOServer] = None
        for position, (slot, member) in enumerate(live):
            if previous is not None:
                # Store-and-forward hop: the forwarder serializes the copy
                # out of its NIC before the receiver takes it in.
                with previous.net_out.request() as out_slot:
                    yield out_slot
                    yield self.env.timeout(net.serialization_time(header + nbytes))
                yield self.env.timeout(net.latency_s)
            with member.net_in.request() as in_slot:
                yield in_slot
                yield self.env.timeout(net.serialization_time(header + nbytes))
            yield from member.service_write(
                StripingLayout.replica_regions(phys_regions, slot), is_read=False
            )
            if position > 0:
                member.count_replica_bytes(nbytes)
            previous = member
        yield self.env.timeout(net.latency_s)

    def _one_replicated_read(
        self,
        client: int,
        primary: IOServer,
        phys_regions: List[Tuple[int, int]],
    ):
        """Read one chunk from the first clean live replica of the chain.

        A replica is *clean* when none of the requested regions overlap an
        outstanding missed extent on that server (a degraded write it has
        not yet rebuilt).  When no clean live replica exists the client
        backs off with the same bounded exponential policy as outages and
        rescans — rebuild or restore eventually produces one.
        """
        net = self.config.network
        cfg = self.config
        nbytes = sum(length for _, length in phys_regions)
        header = self.config.request_header_B + 16 * len(phys_regions)
        chain = self.layout.replica_chain(primary.server_id)
        delay = cfg.retry_initial_s

        while True:
            choice = None
            for slot, sid in enumerate(chain):
                member = self.servers[sid]
                if not member.up:
                    continue
                regions_r = StripingLayout.replica_regions(phys_regions, slot)
                ledger = self.missed.get(sid)
                if ledger is not None and ledger.overlaps(regions_r):
                    continue
                choice = (slot, member, regions_r)
                break
            if choice is not None:
                break
            if all(self.servers[sid].dead for sid in chain):
                raise SimulationError(
                    f"replica chain {chain} is entirely dead — data lost"
                )
            self.fault_stats["retries"] += 1.0
            self.fault_stats["retry_wait_s"] += delay
            m = self.env.metrics
            if m.enabled:
                m.inc("pvfs.retries", 1.0, server=chain[0])
            yield self.env.timeout(delay)
            delay = min(delay * cfg.retry_backoff, cfg.retry_cap_s)

        slot, member, regions_r = choice
        if slot != 0:
            self.fault_stats["read_failovers"] += 1.0
            m = self.env.metrics
            if m.enabled:
                m.inc("pvfs.read_failovers", 1.0, server=member.server_id)
        yield from self._client_tx(client, header)
        yield self.env.timeout(net.latency_s)
        yield from member.service_write(regions_r, is_read=True)
        with member.net_out.request() as out_slot:
            yield out_slot
            yield self.env.timeout(net.serialization_time(nbytes))
        yield self.env.timeout(net.latency_s)

    def _await_replica_set(self, chain: List[int]):
        """Process fragment: back off until *any* chain member is live.

        Raises :class:`SimulationError` when every member is permanently
        dead — the data is gone and stalling forever would just hide it.
        """
        cfg = self.config
        delay = cfg.retry_initial_s
        while not any(self.servers[sid].up for sid in chain):
            if all(self.servers[sid].dead for sid in chain):
                raise SimulationError(
                    f"replica chain {chain} is entirely dead — data lost"
                )
            self.fault_stats["retries"] += 1.0
            self.fault_stats["retry_wait_s"] += delay
            m = self.env.metrics
            if m.enabled:
                m.inc("pvfs.retries", 1.0, server=chain[0])
            yield self.env.timeout(delay)
            delay = min(delay * cfg.retry_backoff, cfg.retry_cap_s)

    def _sync_one(self, client: int, server: IOServer):
        net = self.config.network
        if not server.up:
            yield from self._await_server(server)
        yield from self._client_tx(client, self.config.request_header_B)
        yield self.env.timeout(net.latency_s)
        yield from server.service_sync()
        yield self.env.timeout(net.latency_s)

    # -- aggregate stats ------------------------------------------------------------
    def total_bytes_written(self) -> int:
        return sum(s.stats.bytes_written for s in self.servers)

    def total_requests(self) -> int:
        return sum(s.stats.requests for s in self.servers)

    def total_syncs(self) -> int:
        return sum(s.stats.syncs for s in self.servers)
