"""Sparse byte storage backing a simulated file.

Stores written extents (optionally with their actual bytes) so tests can
assert the three correctness properties the paper's output format implies:
no overlaps between writers, no gaps in the final file, and byte-identical
content across I/O strategies.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Tuple

Extent = Tuple[int, int]  # (start, end) half-open


def merge_extents(extents: List[Extent]) -> List[Extent]:
    """Coalesce [start, end) extents: sorted, disjoint, adjacency fused.

    Shared by the replica missed-extent ledger and by tests; empty and
    inverted inputs are dropped rather than raising (callers feed raw
    region lists).
    """
    live = sorted(e for e in extents if e[1] > e[0])
    merged: List[Extent] = []
    for start, end in live:
        if merged and start <= merged[-1][1]:
            last_start, last_end = merged[-1]
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged


class OverlapError(ValueError):
    """Raised when a write overlaps previously written bytes."""


class ByteStore:
    """Write-once sparse byte container.

    ``store_data=False`` keeps only extent bookkeeping (cheap mode for large
    benchmark runs); ``store_data=True`` also keeps the payload bytes for
    content comparison.  Overlapping writes raise — S3aSim's output file has
    mutually exclusive locations by construction, so an overlap is a bug in
    the offset assignment, not a legal state.
    """

    def __init__(self, store_data: bool = True) -> None:
        self.store_data = store_data
        self._starts: List[int] = []  # sorted segment starts
        self._segments: List[Tuple[int, int, Optional[bytearray]]] = []

    def __repr__(self) -> str:
        return (
            f"<ByteStore segments={len(self._segments)} "
            f"bytes={self.total_bytes()}>"
        )

    # -- writing -------------------------------------------------------------
    def write(self, offset: int, length: int, data: Optional[bytes] = None) -> None:
        """Record ``length`` bytes at ``offset``; merge adjacent segments."""
        if offset < 0:
            raise ValueError("offset must be non-negative")
        if length < 0:
            raise ValueError("length must be non-negative")
        if length == 0:
            return
        if data is not None and len(data) != length:
            raise ValueError(f"data length {len(data)} != {length}")

        end = offset + length
        idx = bisect.bisect_right(self._starts, offset)
        # Overlap with the previous segment?
        if idx > 0:
            p_start, p_end, _ = self._segments[idx - 1]
            if p_end > offset:
                raise OverlapError(
                    f"write [{offset}, {end}) overlaps [{p_start}, {p_end})"
                )
        # Overlap with the next segment?
        if idx < len(self._segments):
            n_start, n_end, _ = self._segments[idx]
            if n_start < end:
                raise OverlapError(
                    f"write [{offset}, {end}) overlaps [{n_start}, {n_end})"
                )

        payload: Optional[bytearray]
        if self.store_data:
            payload = bytearray(data) if data is not None else bytearray(length)
        else:
            payload = None

        # Try to merge with neighbours to keep the segment list short.
        merged_prev = False
        if idx > 0 and self._segments[idx - 1][1] == offset:
            p_start, p_end, p_data = self._segments[idx - 1]
            if self.store_data:
                p_data.extend(payload)  # type: ignore[union-attr]
            self._segments[idx - 1] = (p_start, end, p_data)
            merged_prev = True
            idx -= 1
        if not merged_prev:
            self._segments.insert(idx, (offset, end, payload))
            self._starts.insert(idx, offset)
        # Merge with the following segment if now adjacent.
        if idx + 1 < len(self._segments) and self._segments[idx][1] == self._segments[idx + 1][0]:
            s, e, d = self._segments[idx]
            ns, ne, nd = self._segments[idx + 1]
            if self.store_data:
                d.extend(nd)  # type: ignore[union-attr]
            self._segments[idx] = (s, ne, d)
            del self._segments[idx + 1]
            del self._starts[idx + 1]

    # -- reading ---------------------------------------------------------------
    def read(self, offset: int, length: int) -> bytes:
        """Bytes at [offset, offset+length); unwritten holes read as zero."""
        if not self.store_data:
            raise RuntimeError("ByteStore was created with store_data=False")
        out = bytearray(length)
        end = offset + length
        idx = max(bisect.bisect_right(self._starts, offset) - 1, 0)
        for s, e, d in self._segments[idx:]:
            if s >= end:
                break
            lo = max(s, offset)
            hi = min(e, end)
            if lo < hi:
                out[lo - offset : hi - offset] = d[lo - s : hi - s]  # type: ignore[index]
        return bytes(out)

    # -- inspection --------------------------------------------------------------
    def extents(self) -> List[Extent]:
        """Sorted merged written extents."""
        return [(s, e) for s, e, _ in self._segments]

    def total_bytes(self) -> int:
        return sum(e - s for s, e, _ in self._segments)

    def size(self) -> int:
        """End of the last written byte (file size if densely written)."""
        return self._segments[-1][1] if self._segments else 0

    def is_dense(self, expected_size: Optional[int] = None) -> bool:
        """True if written extents form one gapless run starting at 0."""
        if len(self._segments) != 1:
            return not self._segments and (expected_size in (None, 0))
        start, end, _ = self._segments[0]
        if start != 0:
            return False
        return expected_size is None or end == expected_size

    def gaps(self) -> List[Extent]:
        """Holes between written extents (excluding beyond-EOF space)."""
        holes: List[Extent] = []
        prev_end = 0
        for s, e, _ in self._segments:
            if s > prev_end:
                holes.append((prev_end, s))
            prev_end = e
        return holes

    def content_equal(self, other: "ByteStore") -> bool:
        """Same extents and (when stored) same bytes."""
        if self.extents() != other.extents():
            return False
        if self.store_data and other.store_data:
            return all(
                bytes(a[2]) == bytes(b[2])  # type: ignore[arg-type]
                for a, b in zip(self._segments, other._segments)
            )
        return True
