"""PVFS2 I/O server and metadata server models.

An I/O server has two contention points: an inbound network channel
(unit-capacity resource — concurrent clients serialize their data streams
into the server) and the disk (unit-capacity, serviced via
:class:`~repro.pvfs.disk.DiskModel` with persistent head tracking).
The metadata server serves open/create/resize ops with a fixed cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..sim import Environment, Resource
from .disk import DiskModel


@dataclass
class ServerStats:
    """Per-server counters for observability and tests."""

    requests: int = 0
    regions: int = 0
    seeks: int = 0
    sequential: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    syncs: int = 0
    busy_s: float = 0.0
    outages: int = 0


class IOServer:
    """One PVFS2 I/O daemon: network-in + disk with head tracking."""

    def __init__(self, env: Environment, server_id: int, disk: DiskModel) -> None:
        self.env = env
        self.server_id = server_id
        self.disk = disk
        self.net_in = Resource(env, capacity=1)
        self.disk_res = Resource(env, capacity=1)
        self.head_position = 0
        self.stats = ServerStats()
        #: Reachability flag — clients poll it and back off while False.
        #: Requests already past ``net_in`` when the server fails still
        #: complete (the daemon finishes in-flight work before dying in
        #: this model; a stricter model would replay them).
        self.up = True
        # Bind metric handles once (prometheus-client style) so the
        # per-request cost is a float add; with the null registry these are
        # shared no-op instruments and the enabled flag skips them anyway.
        m = env.metrics
        self._m_enabled = m.enabled
        self._c_requests = m.counter("pvfs.requests", server=server_id)
        self._c_regions = m.counter("pvfs.regions", server=server_id)
        self._c_seeks = m.counter("pvfs.seeks", server=server_id)
        self._c_sequential = m.counter("pvfs.sequential_runs", server=server_id)
        self._c_bytes_written = m.counter("pvfs.bytes_written", server=server_id)
        self._c_bytes_read = m.counter("pvfs.bytes_read", server=server_id)
        self._c_syncs = m.counter("pvfs.syncs", server=server_id)
        self._h_regions = m.histogram("pvfs.regions_per_request", server=server_id)
        self._h_service = m.histogram("pvfs.service_seconds", server=server_id)

    def __repr__(self) -> str:
        state = "" if self.up else " DOWN"
        return (
            f"<IOServer {self.server_id}{state} queue={len(self.disk_res.queue)} "
            f"head={self.head_position}>"
        )

    def fail(self) -> None:
        """Mark the server unreachable (an outage window begins)."""
        self.up = False
        self.stats.outages += 1

    def restore(self) -> None:
        """Bring the server back; the disk head rehomes after the restart."""
        self.up = True
        self.head_position = 0

    def service_write(self, regions: List[Tuple[int, int]], is_read: bool = False):
        """Process fragment: acquire the disk and service ``regions``.

        Must be entered after the request's bytes have crossed ``net_in``.
        """
        with self.disk_res.request() as slot:
            yield slot
            detail = self.disk.service_detail(regions, self.head_position)
            self.head_position = detail.new_head
            yield self.env.timeout(detail.seconds)
            stats = self.stats
            stats.requests += 1
            stats.regions += detail.regions
            stats.seeks += detail.seeks
            stats.sequential += detail.sequential
            if is_read:
                stats.bytes_read += detail.bytes
            else:
                stats.bytes_written += detail.bytes
            stats.busy_s += detail.seconds
            if self._m_enabled:
                self._c_requests.add()
                self._c_regions.add(detail.regions)
                self._c_seeks.add(detail.seeks)
                self._c_sequential.add(detail.sequential)
                if is_read:
                    self._c_bytes_read.add(detail.bytes)
                else:
                    self._c_bytes_written.add(detail.bytes)
                self._h_regions.observe(detail.regions)
                self._h_service.observe(detail.seconds)

    def service_sync(self):
        """Process fragment: flush request (one per MPI_File_sync)."""
        with self.disk_res.request() as slot:
            yield slot
            seconds = self.disk.sync_time()
            yield self.env.timeout(seconds)
            self.stats.syncs += 1
            self.stats.busy_s += seconds
            if self._m_enabled:
                self._c_syncs.add()


class MetadataServer:
    """PVFS2 metadata daemon: namespace ops with a fixed service cost."""

    def __init__(self, env: Environment, op_cost_s: float = 3e-4) -> None:
        if op_cost_s < 0:
            raise ValueError("op_cost_s must be non-negative")
        self.env = env
        self.op_cost_s = op_cost_s
        self.queue = Resource(env, capacity=1)
        self.ops = 0

    def operation(self):
        """Process fragment: one metadata operation (create/open/stat)."""
        with self.queue.request() as slot:
            yield slot
            yield self.env.timeout(self.op_cost_s)
            self.ops += 1
