"""PVFS2 I/O server and metadata server models.

An I/O server has three contention points: an inbound network channel
(unit-capacity resource — concurrent clients serialize their data streams
into the server), an outbound network channel (read responses serialize
out, mirroring the NIC's TX/RX duplex split), and the disk (unit-capacity,
serviced via :class:`~repro.pvfs.disk.DiskModel` with persistent head
tracking).  The disk is optionally fronted by the pluggable server-side
I/O stack: a reordering :class:`~repro.pvfs.sched.DiskQueue` (``fifo`` /
``elevator``) and a :class:`~repro.pvfs.cache.WriteBackCache`.  With the
default configuration (FIFO, cache off) neither is constructed and the
request path is the seed's, event for event.

The metadata server serves open/create/resize ops with a fixed cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..sim import Environment, Resource
from .cache import ABSORB_REGION_S, WriteBackCache
from .disk import DiskModel
from .sched import DiskQueue, make_policy

MIB = 1024 * 1024


def _subtract_extent(
    runs: List[Tuple[int, int]], start: int, end: int
) -> Tuple[List[Tuple[int, int]], int]:
    """Remove [start, end) from sorted disjoint runs; returns (runs, removed)."""
    out: List[Tuple[int, int]] = []
    removed = 0
    for lo, hi in runs:
        if hi <= start or lo >= end:
            out.append((lo, hi))
            continue
        removed += min(hi, end) - max(lo, start)
        if lo < start:
            out.append((lo, start))
        if end < hi:
            out.append((end, hi))
    return out, removed


@dataclass
class ServerStats:
    """Per-server counters for observability and tests."""

    requests: int = 0
    regions: int = 0
    seeks: int = 0
    sequential: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    syncs: int = 0
    busy_s: float = 0.0
    outages: int = 0
    #: Bytes received as non-primary replica copies (chain forwarding) —
    #: the write-amplification cost of ``replicas > 1``.
    replica_bytes: int = 0
    #: Bytes re-driven onto this server by background rebuild after an
    #: outage (peer pull for replica copies, client re-drive for lost
    #: cache data).
    rebuild_bytes: int = 0
    #: Dirty write-back-cache bytes dropped when this server failed (a
    #: volatile cache loses its contents on crash).
    cache_lost_bytes: int = 0
    #: Sequential read-ahead accounting: bytes prefetched through the disk
    #: stack, read regions served from prefetched extents, and prefetched
    #: bytes thrown away unused (overwritten or lost to a failure).
    readahead_bytes: int = 0
    readahead_hits: int = 0
    readahead_wasted: int = 0


class IOServer:
    """One PVFS2 I/O daemon: network in/out + (stack +) disk."""

    def __init__(
        self,
        env: Environment,
        server_id: int,
        disk: DiskModel,
        sched: str = "fifo",
        sched_aging: int = 8,
        cache_B: int = 0,
        cache_watermark: float = 0.75,
        cache_idle_flush_s: float = 0.02,
        cache_mem_Bps: float = 800 * MIB,
        readahead_B: int = 0,
        recorder=None,
    ) -> None:
        self.env = env
        self.server_id = server_id
        self.disk = disk
        self.net_in = Resource(env, capacity=1)
        self.net_out = Resource(env, capacity=1)
        self.disk_res = Resource(env, capacity=1)
        self.head_position = 0
        self.stats = ServerStats()
        self.recorder = recorder
        #: Reachability flag — clients poll it and back off while False.
        #: Requests already past ``net_in`` when the server fails still
        #: complete (the daemon finishes in-flight work before dying in
        #: this model; a stricter model would replay them).
        self.up = True
        #: Permanently killed (``ServerKill`` fault): never restored, never
        #: rebuilt, excluded from replica chains from the kill onward.
        self.dead = False
        # The reordering queue exists only when a non-FIFO policy or the
        # cache asks for it; otherwise the bare ``disk_res`` Resource path
        # runs — bit-identical to the seed, zero new events.
        self.disk_queue: Optional[DiskQueue] = (
            DiskQueue(env, make_policy(sched, aging_limit=sched_aging))
            if sched != "fifo" or cache_B > 0
            else None
        )
        self.cache: Optional[WriteBackCache] = (
            WriteBackCache(
                self,
                capacity_B=cache_B,
                watermark=cache_watermark,
                idle_flush_s=cache_idle_flush_s,
                mem_Bps=cache_mem_Bps,
            )
            if cache_B > 0
            else None
        )
        # Sequential-detection read-ahead (off at 0 — zero new events, the
        # seed's request path exactly).  ``_ra_runs`` holds the *clean*
        # prefetched extents as sorted disjoint [start, end); they are
        # invalidated by any overlapping write (a prefetched range holds
        # pre-write disk state) and cleared outright by ``fail()``.
        self.readahead_B = readahead_B
        self._ra_mem_Bps = cache_mem_Bps
        self._ra_next = 0
        self._ra_runs: List[Tuple[int, int]] = []
        # Bind metric handles once (prometheus-client style) so the
        # per-request cost is a float add; with the null registry these are
        # shared no-op instruments and the enabled flag skips them anyway.
        m = env.metrics
        self._m_enabled = m.enabled
        self._c_requests = m.counter("pvfs.requests", server=server_id)
        self._c_regions = m.counter("pvfs.regions", server=server_id)
        self._c_seeks = m.counter("pvfs.seeks", server=server_id)
        self._c_sequential = m.counter("pvfs.sequential_runs", server=server_id)
        self._c_bytes_written = m.counter("pvfs.bytes_written", server=server_id)
        self._c_bytes_read = m.counter("pvfs.bytes_read", server=server_id)
        self._c_syncs = m.counter("pvfs.syncs", server=server_id)
        self._h_regions = m.histogram("pvfs.regions_per_request", server=server_id)
        self._h_service = m.histogram("pvfs.service_seconds", server=server_id)
        # Server-side I/O stack instruments (all zero in default runs).
        self._c_cache_hits = m.counter("pvfs.cache_hits", server=server_id)
        self._c_cache_misses = m.counter("pvfs.cache_misses", server=server_id)
        self._c_cache_absorbed = m.counter(
            "pvfs.cache_absorbed_bytes", server=server_id
        )
        self._c_cache_flushes = m.counter("pvfs.cache_flushes", server=server_id)
        self._g_cache_dirty = m.gauge("pvfs.cache_dirty_bytes", server=server_id)
        self._h_cache_flush = m.histogram("pvfs.cache_flush_bytes", server=server_id)
        self._h_queue_depth = m.histogram("pvfs.disk_queue_depth", server=server_id)
        # Replication / recovery instruments (all zero with replicas=1 and
        # no faults).
        self._c_cache_lost = m.counter("pvfs.cache_lost_bytes", server=server_id)
        self._c_replica_bytes = m.counter("pvfs.replica_bytes", server=server_id)
        self._c_rebuild_bytes = m.counter("pvfs.rebuild_bytes", server=server_id)
        # Read-ahead instruments (all zero with readahead_B=0).
        self._c_ra_bytes = m.counter("pvfs.readahead_bytes", server=server_id)
        self._c_ra_hits = m.counter("pvfs.readahead_hits", server=server_id)
        self._c_ra_wasted = m.counter("pvfs.readahead_wasted", server=server_id)

    def __repr__(self) -> str:
        state = "" if self.up else " DOWN"
        return (
            f"<IOServer {self.server_id}{state} queue={self.queue_depth()} "
            f"head={self.head_position}>"
        )

    def queue_depth(self) -> int:
        """Live gauge: disk requests waiting at this server right now.

        Reads the queue length without disturbing it — the adaptive
        strategy selector samples this as its server-load signal."""
        if self.disk_queue is not None:
            return self.disk_queue.depth
        return len(self.disk_res.queue)

    def fail(self, permanent: bool = False) -> List[Tuple[int, int]]:
        """Mark the server unreachable (an outage window — or forever).

        The write-back cache is *volatile*: a failing daemon drops every
        dirty extent on the floor.  The dropped ``[start, end)`` extents
        are returned so the :class:`~repro.pvfs.filesystem.FileSystem`
        can ledger them for re-drive/rebuild; the loss is counted in
        ``pvfs.cache_lost_bytes`` and the dirty-byte gauge zeroes.
        """
        already_down = not self.up
        self.up = False
        if permanent:
            self.dead = True
        if not already_down:
            self.stats.outages += 1
        dropped: List[Tuple[int, int]] = []
        if self.cache is not None and self.cache.dirty_bytes:
            lost_bytes = self.cache.dirty_bytes
            dropped = self.cache.drop_dirty()
            self.stats.cache_lost_bytes += lost_bytes
            if self._m_enabled:
                self._c_cache_lost.add(lost_bytes)
                self._g_cache_dirty.set(0.0)
            c = self.env.check
            if c.enabled:
                c.cache_lost(self.server_id, lost_bytes)
                c.cache_state(self.server_id, self.cache.dirty_runs, 0)
        # Prefetched extents die with the daemon's memory — a later read
        # must not be served from data prefetched before the failure.
        if self._ra_runs:
            wasted = sum(hi - lo for lo, hi in self._ra_runs)
            self._ra_runs = []
            self.stats.readahead_wasted += wasted
            if self._m_enabled:
                self._c_ra_wasted.add(wasted)
        self._ra_next = 0
        return dropped

    def restore(self) -> None:
        """Bring the server back; the daemon restarts from scratch.

        The disk head rehomes and the disk queue's scheduling state
        (elevator aging counters) resets — a rebooted daemon remembers
        nothing about the pass counts it owed pre-outage arrivals.  A
        permanently killed server stays down.
        """
        if self.dead:
            return
        self.up = True
        self.head_position = 0
        self._ra_next = 0
        if self.disk_queue is not None:
            self.disk_queue.reset()

    def _disk_service(self, regions: List[Tuple[int, int]], is_read: bool):
        """Process fragment: service ``regions``; the disk must be held."""
        detail = self.disk.service_detail(regions, self.head_position)
        self.head_position = detail.new_head
        yield self.env.timeout(detail.seconds)
        if not is_read:
            c = self.env.check
            if c.enabled:
                c.server_disk_write(self.server_id, detail.bytes)
        stats = self.stats
        stats.requests += 1
        stats.regions += detail.regions
        stats.seeks += detail.seeks
        stats.sequential += detail.sequential
        if is_read:
            stats.bytes_read += detail.bytes
        else:
            stats.bytes_written += detail.bytes
        stats.busy_s += detail.seconds
        if self._m_enabled:
            self._c_requests.add()
            self._c_regions.add(detail.regions)
            self._c_seeks.add(detail.seeks)
            self._c_sequential.add(detail.sequential)
            if is_read:
                self._c_bytes_read.add(detail.bytes)
            else:
                self._c_bytes_written.add(detail.bytes)
            self._h_regions.observe(detail.regions)
            self._h_service.observe(detail.seconds)

    def _acquire_and_service(self, regions: List[Tuple[int, int]], is_read: bool):
        """Process fragment: take the disk (queue or bare), then service."""
        if self.disk_queue is None:
            with self.disk_res.request() as slot:
                yield slot
                yield from self._disk_service(regions, is_read)
            return
        if self._m_enabled:
            self._h_queue_depth.observe(float(self.disk_queue.depth))
        first_offset = regions[0][0] if regions else self.head_position
        yield self.disk_queue.acquire(first_offset)
        try:
            yield from self._disk_service(regions, is_read)
        finally:
            self.disk_queue.release(self.head_position)

    def service_write(self, regions: List[Tuple[int, int]], is_read: bool = False):
        """Process fragment: service ``regions`` through the I/O stack.

        Must be entered after the request's bytes have crossed ``net_in``.
        Writes land in the write-back cache when one is configured; reads
        fully covered by dirty extents are served from memory.  Dirty-run
        hits are checked *before* the read-ahead store: the cache holds the
        freshest bytes, and a write invalidates any overlapping prefetched
        extent, so a read can never be answered from pre-flush disk state.
        """
        if not is_read:
            c = self.env.check
            if c.enabled:
                c.server_write_in(
                    self.server_id, sum(length for _, length in regions)
                )
            if self._ra_runs:
                self._ra_invalidate(regions)
        span = None
        if is_read and self.readahead_B:
            live = [(o, l) for o, l in regions if l > 0]
            if live:
                span = (
                    min(o for o, _ in live),
                    max(o + l for o, l in live),
                )
        cache = self.cache
        if cache is not None:
            if not is_read:
                yield from cache.absorb(regions)
                return
            hits, regions = cache.read_split(regions)
            if hits:
                hit_bytes = sum(length for _, length in hits)
                yield self.env.timeout(cache.memory_time(len(hits), hit_bytes))
                cache.read_hits += len(hits)
                self.stats.bytes_read += hit_bytes
                if self._m_enabled:
                    self._c_cache_hits.add(len(hits))
                    self._c_bytes_read.add(hit_bytes)
            if not regions:
                if span is not None:
                    yield from self._ra_after_read(*span)
                return
            cache.read_misses += len(regions)
            if self._m_enabled:
                self._c_cache_misses.add(len(regions))
        if is_read and self.readahead_B:
            ra_hits, regions = self._ra_split(regions)
            if ra_hits:
                hit_bytes = sum(length for _, length in ra_hits)
                yield self.env.timeout(
                    self._ra_memory_time(len(ra_hits), hit_bytes)
                )
                self.stats.readahead_hits += len(ra_hits)
                self.stats.bytes_read += hit_bytes
                if self._m_enabled:
                    self._c_ra_hits.add(len(ra_hits))
                    self._c_bytes_read.add(hit_bytes)
            if not regions:
                if span is not None:
                    yield from self._ra_after_read(*span)
                return
        yield from self._acquire_and_service(regions, is_read)
        if span is not None:
            yield from self._ra_after_read(*span)

    # -- sequential read-ahead ----------------------------------------------
    def _ra_memory_time(self, nregions: int, nbytes: int) -> float:
        return ABSORB_REGION_S * nregions + nbytes / self._ra_mem_Bps

    def _ra_covered(self, start: int, end: int) -> bool:
        for lo, hi in self._ra_runs:
            if lo <= start and end <= hi:
                return True
            if lo > start:
                break
        return False

    def _ra_split(self, regions: List[Tuple[int, int]]):
        """Split a read into (prefetch hits, misses); full coverage only."""
        hits: List[Tuple[int, int]] = []
        misses: List[Tuple[int, int]] = []
        for offset, length in regions:
            if length > 0 and self._ra_covered(offset, offset + length):
                hits.append((offset, length))
            else:
                misses.append((offset, length))
        return hits, misses

    def _ra_invalidate(self, regions: List[Tuple[int, int]]) -> None:
        """Drop prefetched extents overlapping a write (now stale)."""
        wasted = 0
        for offset, length in regions:
            if length <= 0:
                continue
            self._ra_runs, removed = _subtract_extent(
                self._ra_runs, offset, offset + length
            )
            wasted += removed
        if wasted:
            self.stats.readahead_wasted += wasted
            if self._m_enabled:
                self._c_ra_wasted.add(wasted)

    def _ra_gaps(self, start: int, end: int) -> List[Tuple[int, int]]:
        """Sub-extents of [start, end) not already prefetched or dirty."""
        gaps: List[Tuple[int, int]] = []
        cursor = start
        for lo, hi in self._ra_runs:
            if hi <= cursor:
                continue
            if lo >= end:
                break
            if lo > cursor:
                gaps.append((cursor, min(lo, end)))
            cursor = max(cursor, hi)
            if cursor >= end:
                break
        if cursor < end:
            gaps.append((cursor, end))
        if self.cache is not None and self.cache.dirty_runs:
            # Never prefetch a dirty range: the platter holds pre-flush
            # state there and the cache already serves those reads.
            for lo, hi in self.cache.dirty_runs:
                clipped = []
                for g_lo, g_hi in gaps:
                    remaining, _ = _subtract_extent([(g_lo, g_hi)], lo, hi)
                    clipped.extend(remaining)
                gaps = clipped
        return gaps

    def _ra_add(self, start: int, end: int) -> None:
        merged: List[Tuple[int, int]] = []
        for lo, hi in self._ra_runs:
            if hi < start or lo > end:
                merged.append((lo, hi))
            else:
                start = min(start, lo)
                end = max(end, hi)
        merged.append((start, end))
        merged.sort()
        self._ra_runs = merged

    def _ra_after_read(self, lo: int, hi: int):
        """Process fragment: sequential detection + prefetch after a read.

        A read starting exactly where the previous one ended continues a
        sequential stream; the next ``readahead_B`` bytes are pulled
        through the disk stack so the stream's next requests hit memory.
        """
        sequential = lo == self._ra_next
        self._ra_next = hi
        if not sequential:
            return
        gaps = [
            (g_lo, g_hi)
            for g_lo, g_hi in self._ra_gaps(hi, hi + self.readahead_B)
            if g_hi > g_lo
        ]
        if not gaps:
            return
        nbytes = sum(g_hi - g_lo for g_lo, g_hi in gaps)
        yield from self._acquire_and_service(
            [(g_lo, g_hi - g_lo) for g_lo, g_hi in gaps], is_read=True
        )
        for g_lo, g_hi in gaps:
            self._ra_add(g_lo, g_hi)
        self.stats.readahead_bytes += nbytes
        if self._m_enabled:
            self._c_ra_bytes.add(nbytes)

    def count_replica_bytes(self, nbytes: int) -> None:
        """Account ``nbytes`` received as a non-primary replica copy."""
        self.stats.replica_bytes += nbytes
        if self._m_enabled:
            self._c_replica_bytes.add(nbytes)

    def service_rebuild(self, regions: List[Tuple[int, int]]):
        """Process fragment: land re-driven recovery bytes on the platter.

        Deliberately bypasses the write-back cache: recovery writes exist
        to close a durability gap, so staging them in the volatile buffer
        (where a second failure would lose them again) would defeat the
        point — real rebuilds use direct I/O for the same reason.
        """
        nbytes = sum(length for _, length in regions)
        c = self.env.check
        if c.enabled:
            c.server_write_in(self.server_id, nbytes)
        if self._ra_runs:
            self._ra_invalidate(regions)
        yield from self._acquire_and_service(regions, is_read=False)
        self.stats.rebuild_bytes += nbytes
        if self._m_enabled:
            self._c_rebuild_bytes.add(nbytes)

    def service_sync(self):
        """Process fragment: flush request (one per MPI_File_sync).

        With a write-back cache the dirty extents hit the platter before
        the sync cost is paid — MPI_File_sync's durability contract.
        """
        if self.cache is not None:
            yield from self.cache.flush()
        if self.disk_queue is None:
            with self.disk_res.request() as slot:
                yield slot
                yield from self._sync_disk()
            return
        yield self.disk_queue.acquire(self.head_position)
        try:
            yield from self._sync_disk()
        finally:
            self.disk_queue.release(self.head_position)

    def _sync_disk(self):
        """Process fragment: the sync cost proper; the disk must be held."""
        seconds = self.disk.sync_time()
        yield self.env.timeout(seconds)
        self.stats.syncs += 1
        self.stats.busy_s += seconds
        if self._m_enabled:
            self._c_syncs.add()


class MetadataServer:
    """PVFS2 metadata daemon: namespace ops with a fixed service cost."""

    def __init__(self, env: Environment, op_cost_s: float = 3e-4) -> None:
        if op_cost_s < 0:
            raise ValueError("op_cost_s must be non-negative")
        self.env = env
        self.op_cost_s = op_cost_s
        self.queue = Resource(env, capacity=1)
        self.ops = 0
        m = env.metrics
        self._m_enabled = m.enabled
        self._c_ops = m.counter("pvfs.metadata_ops")
        self._h_service = m.histogram("pvfs.metadata_seconds")

    def operation(self):
        """Process fragment: one metadata operation (create/open/stat)."""
        entered = self.env.now
        with self.queue.request() as slot:
            yield slot
            yield self.env.timeout(self.op_cost_s)
            self.ops += 1
            if self._m_enabled:
                self._c_ops.add()
                # Queueing included: contention on the single metadata
                # daemon is exactly what this histogram is for.
                self._h_service.observe(self.env.now - entered)
