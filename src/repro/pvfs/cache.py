"""Write-back buffer cache for one PVFS2 I/O daemon.

The 2006 daemon did not push every incoming region straight to the
platter: small writes landed in the server's buffer cache at memory
speed, adjacent dirty pages coalesced, and the disk saw large contiguous
runs at flush time.  That staging is what softens the WW-POSIX penalty
(thousands of tiny interleaved regions) relative to list I/O — the server
merges what the client failed to.

Model:

* :meth:`WriteBackCache.absorb` accepts a write's regions at memory
  speed (``mem_Bps`` plus a per-region copy overhead) and merges them
  into a sorted list of disjoint dirty extents (adjacent extents fuse —
  byte ``[a, b)`` + ``[b, c)`` becomes ``[a, c)``).
* Dirty data reaches the disk through the owning server's disk queue in
  one request per flush, one region per contiguous run — so an elevator
  beneath the cache sweeps large runs instead of client-sized fragments.
* Flush triggers: ``sync`` (client called MPI_File_sync — the flush
  completes *before* the sync cost is paid), high watermark (dirty bytes
  crossed ``watermark × capacity``; background), idle timeout (no new
  write for ``idle_flush_s``; background), and capacity (an absorb that
  would overflow the buffer flushes synchronously first — the client
  stalls, exactly the back-pressure a full daemon cache applied).
* Reads fully covered by dirty extents are served from memory
  (:meth:`read_split`) — this is what lets data-sieving pre-reads hit
  data that never reached the platter.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence, Tuple

from ..sim import Resource

if TYPE_CHECKING:  # pragma: no cover
    from .server import IOServer

MIB = 1024 * 1024

#: Buffer-copy setup cost per absorbed region (descriptor handling).
ABSORB_REGION_S = 5e-6


class WriteBackCache:
    """Per-server dirty-extent buffer with watermark/idle/sync flushing."""

    def __init__(
        self,
        server: "IOServer",
        capacity_B: int,
        watermark: float = 0.75,
        idle_flush_s: float = 0.02,
        mem_Bps: float = 800 * MIB,
    ) -> None:
        if capacity_B <= 0:
            raise ValueError("capacity_B must be positive")
        if not 0.0 < watermark <= 1.0:
            raise ValueError("watermark must be in (0, 1]")
        if idle_flush_s <= 0:
            raise ValueError("idle_flush_s must be positive")
        if mem_Bps <= 0:
            raise ValueError("mem_Bps must be positive")
        self.server = server
        self.env = server.env
        self.capacity_B = int(capacity_B)
        self.watermark_B = watermark * capacity_B
        self.idle_flush_s = idle_flush_s
        self.mem_Bps = mem_Bps
        #: Sorted, disjoint, non-adjacent dirty extents as [start, end).
        self.dirty_runs: List[Tuple[int, int]] = []
        self.dirty_bytes = 0
        # One flush at a time; sync waits on an in-flight background flush
        # through this lock, which is what orders flush-before-sync.
        self._flush_lock = Resource(server.env, capacity=1)
        self._idle_watcher = None
        self._last_write = 0.0
        # Counters (mirrored into the obs registry by the server).
        self.read_hits = 0
        self.read_misses = 0
        self.absorbed_bytes = 0
        self.flushes = 0
        self.flushed_bytes = 0

    def __repr__(self) -> str:
        return (
            f"<WriteBackCache s{self.server.server_id} "
            f"dirty={self.dirty_bytes}/{self.capacity_B} "
            f"runs={len(self.dirty_runs)}>"
        )

    def memory_time(self, nregions: int, nbytes: int) -> float:
        """Cost of moving ``nbytes`` in ``nregions`` pieces through RAM."""
        return ABSORB_REGION_S * nregions + nbytes / self.mem_Bps

    # -- write path ---------------------------------------------------------
    def absorb(self, regions: Sequence[Tuple[int, int]]):
        """Process fragment: accept a write's regions into the buffer."""
        live = [(o, l) for o, l in regions if l > 0]
        nbytes = sum(l for _, l in live)
        if self.dirty_bytes + nbytes > self.capacity_B:
            # Back-pressure: the buffer cannot hold this write, so the
            # client stalls behind a synchronous flush.
            yield from self.flush()
        yield self.env.timeout(self.memory_time(len(live), nbytes))
        dirty_before = self.dirty_bytes
        for offset, length in live:
            self._insert(offset, offset + length)
        self.absorbed_bytes += nbytes
        self._last_write = self.env.now
        server = self.server
        if server._m_enabled:
            server._c_cache_absorbed.add(nbytes)
            server._g_cache_dirty.set(float(self.dirty_bytes))
        c = self.env.check
        if c.enabled:
            # Bytes that fused into existing dirty runs (overlap) are
            # "merged away": absorbed but never individually flushed.
            c.cache_absorb(
                server.server_id, nbytes, nbytes - (self.dirty_bytes - dirty_before)
            )
            c.cache_state(server.server_id, self.dirty_runs, self.dirty_bytes)
        if self.dirty_bytes >= self.watermark_B:
            self.env.process(
                self.flush(), name=f"flush-wm-s{server.server_id}"
            )
        elif self.dirty_bytes and self._idle_watcher is None:
            self._idle_watcher = self.env.process(
                self._watch_idle(), name=f"flush-idle-s{server.server_id}"
            )

    def _insert(self, start: int, end: int) -> None:
        """Merge [start, end) into the dirty runs (adjacency fuses)."""
        merged: List[Tuple[int, int]] = []
        for lo, hi in self.dirty_runs:
            if hi < start or lo > end:  # disjoint and non-adjacent
                merged.append((lo, hi))
            else:  # overlaps or touches — fuse
                start = min(start, lo)
                end = max(end, hi)
        merged.append((start, end))
        merged.sort()
        self.dirty_runs = merged
        self.dirty_bytes = sum(hi - lo for lo, hi in merged)

    # -- read path ----------------------------------------------------------
    def read_split(self, regions: Sequence[Tuple[int, int]]):
        """Split a read into (hit_regions, miss_regions).

        A region is a hit only when one dirty run covers it entirely —
        partial coverage goes to disk whole, as the daemon would rather
        issue one disk read than stitch a response from two sources.
        """
        hits: List[Tuple[int, int]] = []
        misses: List[Tuple[int, int]] = []
        for offset, length in regions:
            if length > 0 and self._covered(offset, offset + length):
                hits.append((offset, length))
            else:
                misses.append((offset, length))
        return hits, misses

    def _covered(self, start: int, end: int) -> bool:
        for lo, hi in self.dirty_runs:
            if lo <= start and end <= hi:
                return True
            if lo > start:
                break
        return False

    # -- flushing -----------------------------------------------------------
    def flush(self):
        """Process fragment: push every dirty extent to the disk.

        Serialized by the flush lock; returns once data queued *before
        entry* is on the platter (an in-flight flush is waited out, then
        any remainder is flushed).
        """
        with self._flush_lock.request() as slot:
            yield slot
            if not self.dirty_runs:
                return
            runs, self.dirty_runs = self.dirty_runs, []
            nbytes, self.dirty_bytes = self.dirty_bytes, 0
            server = self.server
            c = self.env.check
            if c.enabled:
                c.cache_flush(server.server_id, runs, nbytes)
                c.cache_state(
                    server.server_id, self.dirty_runs, self.dirty_bytes
                )
            start = self.env.now
            yield from server._acquire_and_service(
                [(lo, hi - lo) for lo, hi in runs], is_read=False
            )
            self.flushes += 1
            self.flushed_bytes += nbytes
            if server._m_enabled:
                server._c_cache_flushes.add()
                server._g_cache_dirty.set(float(self.dirty_bytes))
                server._h_cache_flush.observe(float(nbytes))
            if server.recorder is not None:
                server.recorder.record(
                    -(server.server_id + 1), "server_flush", start, self.env.now
                )

    def drop_dirty(self) -> List[Tuple[int, int]]:
        """Discard every dirty extent without flushing (server crash).

        The buffer cache is volatile: when the daemon dies its dirty data
        is simply gone.  Returns the dropped ``[start, end)`` extents so
        the file system can record them for client re-drive / rebuild.
        Pure bookkeeping — no events, no disk traffic; an in-flight flush
        that already detached its runs is unaffected (those bytes were
        heading to the platter when the model says in-flight work
        completes).
        """
        dropped, self.dirty_runs = self.dirty_runs, []
        self.dirty_bytes = 0
        return dropped

    def _watch_idle(self):
        """Process fragment: flush once writes stop arriving."""
        try:
            while self.dirty_bytes:
                wake_at = self._last_write + self.idle_flush_s
                if self.env.now >= wake_at:
                    yield from self.flush()
                else:
                    yield self.env.timeout(wake_at - self.env.now)
        finally:
            self._idle_watcher = None
