"""Disk-queue scheduling for the PVFS2 I/O daemon model.

The seed model serviced the disk through a bare FIFO
:class:`~repro.sim.resources.Resource`; a real 2006 I/O daemon sat on top
of an elevator — requests waiting for the disk were *reordered* by
physical offset so a sweep of the head serviced them with far fewer
seeks.  This module is that layer: a :class:`DiskQueue` (a unit-capacity
disk whose wait queue is granted by a pluggable policy) and two policies:

``fifo``
    Arrival order — exactly the seed behaviour.  The default; with it the
    queue is never even constructed, so default runs stay bit-identical.

``elevator``
    Starvation-bounded C-SCAN: pick the waiting request with the lowest
    offset at or ahead of the current head; when the upward sweep
    exhausts, wrap to the lowest waiting offset (circular scan, so
    low-offset requests are not systematically favoured).

Starvation bound: every grant increments a pass counter on the requests
left waiting.  Once a request has been passed over ``aging_limit`` times
it is *overdue*, and overdue requests are serviced in arrival order
before any sweep choice.  A request can therefore be passed over at most
``aging_limit + e`` times, where ``e`` is the number of earlier arrivals
still waiting when it becomes overdue — the property test in
``tests/pvfs/test_sched.py`` asserts exactly this bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Sequence

from ..sim import Event, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from ..sim import Environment

#: Scheduler names accepted by :func:`make_policy` / ``PVFSConfig.disk_sched``.
SCHEDULERS = ("fifo", "elevator")


@dataclass
class QueuedRequest:
    """One request waiting for the disk."""

    offset: int  #: first physical offset — the sort key of the elevator
    order: int  #: arrival sequence number (FIFO tiebreak + overdue order)
    event: Event  #: succeeds when the disk is granted
    passes: int = 0  #: times another request was granted ahead of this one


class SchedulerPolicy:
    """Chooses which waiting request the freed disk services next."""

    name = "?"

    def select(self, waiting: Sequence[QueuedRequest], head: int) -> int:
        """Index into ``waiting`` of the next request to grant."""
        raise NotImplementedError


class FifoPolicy(SchedulerPolicy):
    """Arrival order — the seed daemon's (non-)policy."""

    name = "fifo"

    def select(self, waiting: Sequence[QueuedRequest], head: int) -> int:
        return min(range(len(waiting)), key=lambda i: waiting[i].order)


class ElevatorPolicy(SchedulerPolicy):
    """Starvation-bounded C-SCAN over physical offsets."""

    name = "elevator"

    def __init__(self, aging_limit: int = 8) -> None:
        if aging_limit < 1:
            raise ValueError("aging_limit must be >= 1")
        self.aging_limit = aging_limit

    def select(self, waiting: Sequence[QueuedRequest], head: int) -> int:
        overdue = [
            i for i, w in enumerate(waiting) if w.passes >= self.aging_limit
        ]
        if overdue:
            return min(overdue, key=lambda i: waiting[i].order)
        ahead = [i for i, w in enumerate(waiting) if w.offset >= head]
        pool = ahead if ahead else range(len(waiting))
        return min(pool, key=lambda i: (waiting[i].offset, waiting[i].order))


def make_policy(name: str, aging_limit: int = 8) -> SchedulerPolicy:
    """Build the policy for a ``disk_sched`` config value."""
    if name == "fifo":
        return FifoPolicy()
    if name == "elevator":
        return ElevatorPolicy(aging_limit=aging_limit)
    raise ValueError(f"unknown disk scheduler {name!r}; choose from {SCHEDULERS}")


class DiskQueue:
    """A unit-capacity disk whose waiters are granted by a policy.

    Unlike :class:`~repro.sim.resources.Resource`, the grant order is
    decided at *release* time — the policy sees every request that
    queued while the disk was busy plus the head position the finished
    request left behind, which is exactly the information the daemon's
    elevator had.

    Usage from a process fragment::

        yield queue.acquire(first_offset)
        try:
            ... service, updating head ...
        finally:
            queue.release(new_head)
    """

    def __init__(self, env: "Environment", policy: SchedulerPolicy) -> None:
        self.env = env
        self.policy = policy
        self.waiting: List[QueuedRequest] = []
        self.busy = False
        self._order = 0
        #: Longest wait-queue observed (depth histogram feeds from callers).
        self.max_waiting = 0

    def __repr__(self) -> str:
        state = "busy" if self.busy else "idle"
        return f"<DiskQueue {self.policy.name} {state} waiting={len(self.waiting)}>"

    @property
    def depth(self) -> int:
        """Requests in the system (waiting + in service)."""
        return len(self.waiting) + (1 if self.busy else 0)

    def acquire(self, offset: int) -> Event:
        """Request the disk for a run starting at physical ``offset``."""
        event = Event(self.env)
        if not self.busy:
            self.busy = True
            event.succeed()
        else:
            self._order += 1
            self.waiting.append(
                QueuedRequest(offset=int(offset), order=self._order, event=event)
            )
            if len(self.waiting) > self.max_waiting:
                self.max_waiting = len(self.waiting)
        return event

    def release(self, head: int) -> None:
        """Finish service at ``head`` and grant the policy's next choice."""
        if not self.busy:
            raise SimulationError("DiskQueue.release without a matching acquire")
        if not self.waiting:
            self.busy = False
            return
        index = self.policy.select(self.waiting, head)
        chosen = self.waiting.pop(index)
        for waiter in self.waiting:
            waiter.passes += 1
        chosen.event.succeed()

    def reset(self) -> None:
        """Forget pre-restart scheduling state (daemon restart).

        A rebooted daemon's elevator starts from scratch: aging counters
        accumulated before the outage are gone, so the post-restart grant
        order for the surviving waiters must match what a *fresh* elevator
        would choose given the same waiting set.  Relative arrival order
        (the FIFO tiebreak) is a property of the requests, not the daemon,
        so ``order`` values are left alone — a fresh queue would number
        the same arrivals in the same relative order.
        """
        for waiter in self.waiting:
            waiter.passes = 0
