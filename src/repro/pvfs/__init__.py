"""Simulated PVFS2: striped parallel file system with list-I/O support."""

from .bytestore import ByteStore, OverlapError
from .disk import DiskModel
from .filesystem import FileSystem, PVFSConfig, PVFSFile
from .layout import Piece, Region, StripingLayout
from .server import IOServer, MetadataServer, ServerStats

__all__ = [
    "ByteStore",
    "DiskModel",
    "FileSystem",
    "IOServer",
    "MetadataServer",
    "OverlapError",
    "PVFSConfig",
    "PVFSFile",
    "Piece",
    "Region",
    "ServerStats",
    "StripingLayout",
]
