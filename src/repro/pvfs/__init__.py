"""Simulated PVFS2: striped parallel file system with list-I/O support."""

from .bytestore import ByteStore, OverlapError, merge_extents
from .cache import WriteBackCache
from .disk import DiskModel
from .filesystem import FileSystem, PVFSConfig, PVFSFile
from .layout import REPLICA_SLOT_B, Piece, Region, StripingLayout
from .replica import MissedLedger
from .sched import (
    SCHEDULERS,
    DiskQueue,
    ElevatorPolicy,
    FifoPolicy,
    make_policy,
)
from .server import IOServer, MetadataServer, ServerStats

__all__ = [
    "ByteStore",
    "DiskModel",
    "DiskQueue",
    "ElevatorPolicy",
    "FifoPolicy",
    "FileSystem",
    "IOServer",
    "MetadataServer",
    "MissedLedger",
    "OverlapError",
    "PVFSConfig",
    "PVFSFile",
    "Piece",
    "REPLICA_SLOT_B",
    "Region",
    "SCHEDULERS",
    "ServerStats",
    "StripingLayout",
    "WriteBackCache",
    "make_policy",
    "merge_extents",
]
