"""Simulated PVFS2: striped parallel file system with list-I/O support."""

from .bytestore import ByteStore, OverlapError
from .cache import WriteBackCache
from .disk import DiskModel
from .filesystem import FileSystem, PVFSConfig, PVFSFile
from .layout import Piece, Region, StripingLayout
from .sched import (
    SCHEDULERS,
    DiskQueue,
    ElevatorPolicy,
    FifoPolicy,
    make_policy,
)
from .server import IOServer, MetadataServer, ServerStats

__all__ = [
    "ByteStore",
    "DiskModel",
    "DiskQueue",
    "ElevatorPolicy",
    "FifoPolicy",
    "FileSystem",
    "IOServer",
    "MetadataServer",
    "OverlapError",
    "PVFSConfig",
    "PVFSFile",
    "Piece",
    "Region",
    "SCHEDULERS",
    "ServerStats",
    "StripingLayout",
    "WriteBackCache",
    "make_policy",
]
