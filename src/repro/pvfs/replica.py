"""Degraded-write bookkeeping for the replicated PVFS model.

When an I/O server is unreachable, writes destined for it are *not*
stalled behind the outage: the surviving replicas of the chain absorb
them and the skipped copy is recorded here as a **missed extent**.  The
same ledger absorbs dirty cache extents a failing server dropped (a
volatile buffer cache loses its contents on crash) — both gaps are closed
the same way, by the background rebuild that runs when the server
returns.

The ledger is pure bookkeeping: it schedules no events and draws no
randomness, so it can be consulted from the read-failover path (a replica
with an outstanding miss overlapping a read must not serve it) without
perturbing determinism.
"""

from __future__ import annotations

from typing import List, Tuple

from .bytestore import merge_extents

Region = Tuple[int, int]  # (offset, length)
Extent = Tuple[int, int]  # (start, end) half-open


class MissedLedger:
    """Per-server record of bytes acked to clients but not yet durable here.

    Extents are kept sorted/disjoint ([start, end) in the server's own
    physical address space, replica partitions included).  ``recorded_bytes``
    and ``rebuilt_bytes`` are cumulative; ``abandoned_bytes`` counts
    extents discarded because the server was killed permanently (no
    rebuild will ever run — the live replicas are the data's only home).
    """

    __slots__ = (
        "extents",
        "inflight",
        "recorded_bytes",
        "rebuilt_bytes",
        "abandoned_bytes",
    )

    def __init__(self) -> None:
        self.extents: List[Extent] = []
        # Regions drained by the rebuild but not yet landed on disk: still
        # stale for readers, no longer queued for a second drain.
        self.inflight: List[Extent] = []
        self.recorded_bytes = 0
        self.rebuilt_bytes = 0
        self.abandoned_bytes = 0

    def __repr__(self) -> str:
        return (
            f"<MissedLedger outstanding={self.outstanding_bytes()} "
            f"recorded={self.recorded_bytes} rebuilt={self.rebuilt_bytes}>"
        )

    def outstanding_bytes(self) -> int:
        """Bytes still missing from this server."""
        return sum(end - start for start, end in self.extents)

    @property
    def empty(self) -> bool:
        return not self.extents

    def record(self, regions: List[Region]) -> int:
        """Add missed ``(offset, length)`` regions; returns bytes newly missing.

        Overlaps with already-missed extents (a second outage re-losing
        partially re-driven data) merge rather than double-count.
        """
        before = self.outstanding_bytes()
        self.extents = merge_extents(
            self.extents + [(o, o + l) for o, l in regions if l > 0]
        )
        grown = self.outstanding_bytes() - before
        self.recorded_bytes += grown
        return grown

    def drain(self, max_bytes: int) -> List[Region]:
        """Pop up to ``max_bytes`` of missed extents from the front.

        Returns ``(offset, length)`` regions in ascending offset order —
        the shape the disk stack services.  Splits the last extent when it
        straddles the budget, so rebuild chunks are exactly rate-sized.
        The drained regions stay **in flight** (stale for readers) until
        :meth:`mark_rebuilt` lands them or :meth:`requeue` aborts them.
        """
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        taken: List[Region] = []
        budget = max_bytes
        while self.extents and budget > 0:
            start, end = self.extents[0]
            size = end - start
            if size <= budget:
                taken.append((start, size))
                budget -= size
                self.extents.pop(0)
            else:
                taken.append((start, budget))
                self.extents[0] = (start + budget, end)
                budget = 0
        self.inflight = merge_extents(
            self.inflight + [(o, o + l) for o, l in taken]
        )
        return taken

    def mark_rebuilt(self, nbytes: int) -> None:
        self.rebuilt_bytes += nbytes
        self.inflight = []

    def requeue(self, regions: List[Region]) -> None:
        """Put drained-but-not-landed regions back (rebuild aborted).

        Unlike :meth:`record` this does not touch ``recorded_bytes`` —
        the bytes were already counted when first missed.
        """
        self.inflight = []
        self.extents = merge_extents(
            self.extents + [(o, o + l) for o, l in regions if l > 0]
        )

    def abandon(self) -> int:
        """Discard all outstanding extents (permanent kill); returns bytes.

        An in-flight rebuild chunk is cleared but *not* counted: the
        still-running rebuild process requeues and abandons it itself when
        it wakes to find the server dead (counting it here too would
        double-book the same bytes).
        """
        dropped = self.outstanding_bytes()
        self.extents = []
        self.inflight = []
        self.abandoned_bytes += dropped
        return dropped

    def overlaps(self, regions: List[Region]) -> bool:
        """True when any region intersects a missed extent, queued or in flight."""
        for offset, length in regions:
            if length <= 0:
                continue
            end = offset + length
            for extents in (self.extents, self.inflight):
                for lo, hi in extents:
                    if lo >= end:
                        break
                    if hi > offset:
                        return True
        return False
