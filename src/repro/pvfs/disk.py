"""Disk service-time model for one I/O server.

A 2006-era commodity server disk: every request pays a fixed per-operation
overhead (request decode, buffer setup, kernel crossing), each discontiguous
jump pays a seek penalty, and bytes stream at the platter rate.  A sync
(``MPI_File_sync`` reaches every server) pays a flush cost.

The head position persists across requests, so a master writing one large
contiguous stream per query gets near-streaming service while interleaved
worker regions pay seeks — the contiguous-vs-noncontiguous asymmetry the
paper's Section 2.1 leans on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

MIB = 1024 * 1024


@dataclass(frozen=True)
class DiskModel:
    """Timing parameters of one server's storage stack.

    Attributes
    ----------
    op_overhead_s:
        Fixed cost per server request (regardless of region count).
    region_overhead_s:
        Additional cost per region within a list request (PVFS2 processes
        each (offset, length) pair of a listio request individually but
        amortizes the request setup).
    seek_penalty_s:
        Cost of repositioning when a region does not start where the
        previous one ended (beyond ``seek_free_gap_B``).
    bandwidth_Bps:
        Streaming transfer rate.
    sync_s:
        Cost of a flush/sync request.
    seek_free_gap_B:
        Forward gaps up to this size count as sequential (read-ahead /
        track cache absorbs them).
    """

    op_overhead_s: float = 8e-4
    region_overhead_s: float = 5e-5
    seek_penalty_s: float = 4.5e-3
    bandwidth_Bps: float = 45 * MIB
    sync_s: float = 4e-3
    seek_free_gap_B: int = 64 * 1024

    def __post_init__(self) -> None:
        if self.bandwidth_Bps <= 0:
            raise ValueError("bandwidth_Bps must be positive")
        for name in ("op_overhead_s", "region_overhead_s", "seek_penalty_s", "sync_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.seek_free_gap_B < 0:
            raise ValueError("seek_free_gap_B must be non-negative")

    def service_detail(
        self, regions: Sequence[Tuple[int, int]], head_position: int
    ) -> "ServiceDetail":
        """Service a request and report how the time was spent.

        Regions are serviced in the order given (clients sort them by
        offset).  Zero-length regions transfer nothing: they are skipped
        without charging ``region_overhead_s``, without a seek, and —
        crucially — without moving the head (an empty write must not
        reposition the disk arm).
        """
        total = self.op_overhead_s
        head = head_position
        serviced = seeks = sequential = 0
        nbytes = 0
        for offset, length in regions:
            if length < 0:
                raise ValueError("region length must be non-negative")
            if length == 0:
                continue
            total += self.region_overhead_s
            gap = offset - head
            if gap < 0 or gap > self.seek_free_gap_B:
                total += self.seek_penalty_s
                seeks += 1
            else:
                sequential += 1
            total += length / self.bandwidth_Bps
            head = offset + length
            serviced += 1
            nbytes += length
        return ServiceDetail(
            seconds=total,
            new_head=head,
            regions=serviced,
            seeks=seeks,
            sequential=sequential,
            bytes=nbytes,
        )

    def service_time(
        self, regions: Sequence[Tuple[int, int]], head_position: int
    ) -> Tuple[float, int]:
        """Time to service a request of physical ``regions``.

        Returns ``(seconds, new_head_position)``; see :meth:`service_detail`
        for the seek/sequential breakdown.
        """
        detail = self.service_detail(regions, head_position)
        return detail.seconds, detail.new_head

    def sync_time(self) -> float:
        return self.sync_s


@dataclass(frozen=True)
class ServiceDetail:
    """Accounting for one serviced request (feeds the metrics layer).

    ``regions`` counts only non-empty regions; ``seeks + sequential ==
    regions`` always holds.
    """

    seconds: float
    new_head: int
    regions: int
    seeks: int
    sequential: int
    bytes: int
