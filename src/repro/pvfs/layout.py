"""File striping: mapping logical file extents onto I/O servers.

PVFS2 round-robin striping (``simple_stripe``): the file is cut into strips
of ``strip_size`` bytes; strip ``i`` lives on server ``i % nservers`` at
physical position ``(i // nservers) * strip_size`` plus the in-strip offset.
The paper's deployment: 16 servers, 64 KiB strips, i.e. a 1 MiB stripe.

Replication (``replicas > 1``) uses *rotated placement* (chained
declustering): copy ``r`` of every strip whose primary lives on server
``p`` is stored on server ``(p + r) % nservers``, inside a per-chain-slot
partition of that server's address space (``r * REPLICA_SLOT_B`` plus the
primary physical offset).  Rotation spreads each server's replica load
evenly over its successors, so losing one server raises every survivor's
load by ``1/(replicas-1)`` of the victim's — the classic argument for
chained declustering over mirrored pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

Region = Tuple[int, int]  # (offset, length) in bytes

#: Per-chain-slot partition stride on each server's disk.  Replica copies
#: live at ``r * REPLICA_SLOT_B + primary_physical_offset`` so chain slot
#: ``r`` never collides with primary data or with other slots.  The disk
#: model charges seeks by discontiguity, not distance, so the stride's
#: magnitude costs nothing; it only has to exceed any primary offset.
REPLICA_SLOT_B = 1 << 40


@dataclass(frozen=True)
class Piece:
    """A server-local chunk of a logical extent."""

    server: int
    physical_offset: int
    length: int
    logical_offset: int

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError("piece length must be positive")


class StripingLayout:
    """Round-robin strip placement over ``nservers`` servers."""

    def __init__(
        self,
        strip_size: int = 64 * 1024,
        nservers: int = 16,
        replicas: int = 1,
    ) -> None:
        if strip_size <= 0:
            raise ValueError("strip_size must be positive")
        if nservers <= 0:
            raise ValueError("nservers must be positive")
        if not 1 <= replicas <= nservers:
            raise ValueError(
                f"replicas must be in [1, nservers={nservers}], got {replicas}"
            )
        self.strip_size = strip_size
        self.nservers = nservers
        self.replicas = replicas

    def __repr__(self) -> str:
        extra = f", replicas={self.replicas}" if self.replicas > 1 else ""
        return (
            f"StripingLayout(strip_size={self.strip_size}, "
            f"nservers={self.nservers}{extra})"
        )

    @property
    def stripe_size(self) -> int:
        """One full round across all servers."""
        return self.strip_size * self.nservers

    def server_of(self, offset: int) -> int:
        """The server holding the byte at logical ``offset``."""
        if offset < 0:
            raise ValueError("offset must be non-negative")
        return (offset // self.strip_size) % self.nservers

    def physical_offset(self, offset: int) -> int:
        """Server-local offset of the byte at logical ``offset``."""
        if offset < 0:
            raise ValueError("offset must be non-negative")
        strip = offset // self.strip_size
        return (strip // self.nservers) * self.strip_size + offset % self.strip_size

    def map_extent(self, offset: int, length: int) -> List[Piece]:
        """Split a logical extent into per-server pieces, in logical order."""
        if offset < 0:
            raise ValueError("offset must be non-negative")
        if length < 0:
            raise ValueError("length must be non-negative")
        pieces: List[Piece] = []
        position = offset
        remaining = length
        while remaining > 0:
            in_strip = position % self.strip_size
            take = min(self.strip_size - in_strip, remaining)
            pieces.append(
                Piece(
                    server=self.server_of(position),
                    physical_offset=self.physical_offset(position),
                    length=take,
                    logical_offset=position,
                )
            )
            position += take
            remaining -= take
        return pieces

    def map_regions(self, regions: Iterable[Region]) -> Dict[int, List[Piece]]:
        """Group the pieces of many regions by server.

        Within each server the pieces keep the caller's region order (which
        for sorted input means ascending physical offset — what a real
        server would service sequentially).
        """
        by_server: Dict[int, List[Piece]] = {}
        for offset, length in regions:
            for piece in self.map_extent(offset, length):
                by_server.setdefault(piece.server, []).append(piece)
        return by_server

    def servers_touched(self, regions: Iterable[Region]) -> List[int]:
        """Sorted list of servers holding any byte of ``regions``."""
        return sorted(self.map_regions(regions).keys())

    # -- replication ----------------------------------------------------------
    def replica_chain(self, primary: int) -> List[int]:
        """Ordered replica set for strips whose primary is ``primary``.

        Slot 0 is the primary itself; slot ``r`` is the rotated successor
        ``(primary + r) % nservers``.  Every strip with the same primary
        shares one chain, so a per-server subrequest replicates as a unit.
        """
        if not 0 <= primary < self.nservers:
            raise ValueError(f"primary {primary} outside [0, {self.nservers})")
        return [(primary + r) % self.nservers for r in range(self.replicas)]

    @staticmethod
    def replica_physical(physical_offset: int, slot: int) -> int:
        """Server-local offset of chain slot ``slot``'s copy of a byte."""
        if slot < 0:
            raise ValueError("slot must be non-negative")
        return slot * REPLICA_SLOT_B + physical_offset

    @classmethod
    def replica_regions(
        cls, regions: Iterable[Region], slot: int
    ) -> List[Region]:
        """Physical regions shifted into chain slot ``slot``'s partition.

        Slot 0 is the identity (primary data stays where the plain layout
        put it — which is what keeps ``replicas=1`` bit-identical).
        """
        if slot == 0:
            return list(regions)
        return [
            (cls.replica_physical(offset, slot), length)
            for offset, length in regions
        ]
