"""Execution tracing — the MPE/Jumpshot integration S3aSim advertises.

The paper highlights S3aSim's "integration with the multiprocessing
environment (MPE) and Jumpshot for easy debugging": per-rank timelines of
colored state intervals.  :class:`TraceRecorder` collects such intervals
(one per phase-measured span), and the exporters render them as JSON (a
SLOG-2-like interchange) or as an ASCII timeline for terminals.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TextIO


@dataclass(frozen=True)
class Interval:
    """One colored bar on a rank's timeline."""

    rank: int
    state: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("interval ends before it starts")

    @property
    def duration(self) -> float:
        return self.end - self.start


class TraceRecorder:
    """Collects per-rank state intervals during a run."""

    def __init__(self) -> None:
        self.intervals: List[Interval] = []
        self._open: Dict[tuple, float] = {}

    def __len__(self) -> int:
        return len(self.intervals)

    def record(self, rank: int, state: str, start: float, end: float) -> None:
        """Add a closed interval."""
        self.intervals.append(Interval(rank, state, start, end))

    def begin(self, rank: int, state: str, now: float) -> None:
        """Open an interval (pair with :meth:`end`)."""
        key = (rank, state)
        if key in self._open:
            raise ValueError(f"interval {key} already open")
        self._open[key] = now

    def end(self, rank: int, state: str, now: float) -> None:
        key = (rank, state)
        try:
            start = self._open.pop(key)
        except KeyError:
            raise ValueError(f"interval {key} was never opened") from None
        self.record(rank, state, start, now)

    # -- queries ---------------------------------------------------------------
    def ranks(self) -> List[int]:
        return sorted({i.rank for i in self.intervals})

    def states(self) -> List[str]:
        seen: List[str] = []
        for i in self.intervals:
            if i.state not in seen:
                seen.append(i.state)
        return seen

    def for_rank(self, rank: int) -> List[Interval]:
        return sorted(
            (i for i in self.intervals if i.rank == rank),
            key=lambda i: (i.start, i.end),
        )

    def span(self) -> tuple:
        if not self.intervals:
            return (0.0, 0.0)
        return (
            min(i.start for i in self.intervals),
            max(i.end for i in self.intervals),
        )

    def total_time(self, rank: int, state: str) -> float:
        return sum(
            i.duration
            for i in self.intervals
            if i.rank == rank and i.state == state
        )


def export_json(recorder: TraceRecorder, stream: TextIO) -> None:
    """SLOG-2-flavoured JSON: header + interval records."""
    lo, hi = recorder.span()
    doc = {
        "format": "s3asim-trace-1",
        "start": lo,
        "end": hi,
        "ranks": recorder.ranks(),
        "states": recorder.states(),
        "intervals": [
            {
                "rank": i.rank,
                "state": i.state,
                "start": i.start,
                "end": i.end,
            }
            for i in sorted(recorder.intervals, key=lambda i: (i.rank, i.start))
        ],
    }
    json.dump(doc, stream, indent=1)


def load_json(stream: TextIO) -> TraceRecorder:
    doc = json.load(stream)
    if doc.get("format") != "s3asim-trace-1":
        raise ValueError(f"not an s3asim trace: format={doc.get('format')!r}")
    recorder = TraceRecorder()
    for item in doc["intervals"]:
        recorder.record(item["rank"], item["state"], item["start"], item["end"])
    return recorder
