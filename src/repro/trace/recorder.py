"""Execution tracing — the MPE/Jumpshot integration S3aSim advertises.

The paper highlights S3aSim's "integration with the multiprocessing
environment (MPE) and Jumpshot for easy debugging": per-rank timelines of
colored state intervals.  :class:`TraceRecorder` collects such intervals
(one per phase-measured span), and the exporters render them as JSON (a
SLOG-2-like interchange) or as an ASCII timeline for terminals.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TextIO


@dataclass(frozen=True)
class Interval:
    """One colored bar on a rank's timeline."""

    rank: int
    state: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("interval ends before it starts")

    @property
    def duration(self) -> float:
        return self.end - self.start


class TraceRecorder:
    """Collects per-rank state intervals during a run."""

    def __init__(self) -> None:
        self.intervals: List[Interval] = []
        self._open: Dict[tuple, float] = {}

    def __len__(self) -> int:
        return len(self.intervals)

    def record(self, rank: int, state: str, start: float, end: float) -> None:
        """Add a closed interval."""
        self.intervals.append(Interval(rank, state, start, end))

    def begin(self, rank: int, state: str, now: float) -> None:
        """Open an interval (pair with :meth:`end`)."""
        key = (rank, state)
        if key in self._open:
            raise ValueError(f"interval {key} already open")
        self._open[key] = now

    def end(self, rank: int, state: str, now: float) -> None:
        key = (rank, state)
        try:
            start = self._open.pop(key)
        except KeyError:
            raise ValueError(f"interval {key} was never opened") from None
        self.record(rank, state, start, now)

    def abort(self, rank: int, now: float) -> List[Interval]:
        """Close every open interval for ``rank`` at ``now``.

        A worker crash cuts its phases short mid-interval; without this the
        ``(rank, state)`` keys stay in ``_open`` forever and the rebooted
        incarnation's :meth:`begin` raises "already open".  The truncated
        intervals are still recorded — the timeline shows work up to the
        crash instant.  Returns the intervals closed.
        """
        closed: List[Interval] = []
        for key in sorted(k for k in self._open if k[0] == rank):
            start = self._open.pop(key)
            interval = Interval(rank, key[1], start, now)
            self.intervals.append(interval)
            closed.append(interval)
        return closed

    def discard(self, rank: int, state: Optional[str] = None) -> int:
        """Drop open intervals for ``rank`` without recording them.

        With ``state``, only that one interval is dropped (used when an
        admitted query is shed or a cutoff run abandons still-pending
        queries — their wait must not appear as a closed latency bar).
        Returns the number of intervals discarded.
        """
        keys = [
            k
            for k in self._open
            if k[0] == rank and (state is None or k[1] == state)
        ]
        for key in keys:
            del self._open[key]
        return len(keys)

    def open_states(self, rank: int) -> List[str]:
        """States with an interval currently open for ``rank``."""
        return sorted(state for r, state in self._open if r == rank)

    # -- queries ---------------------------------------------------------------
    def ranks(self) -> List[int]:
        return sorted({i.rank for i in self.intervals})

    def states(self) -> List[str]:
        seen: List[str] = []
        for i in self.intervals:
            if i.state not in seen:
                seen.append(i.state)
        return seen

    def for_rank(self, rank: int) -> List[Interval]:
        return sorted(
            (i for i in self.intervals if i.rank == rank),
            key=lambda i: (i.start, i.end),
        )

    def span(self) -> tuple:
        if not self.intervals:
            return (0.0, 0.0)
        return (
            min(i.start for i in self.intervals),
            max(i.end for i in self.intervals),
        )

    def total_time(self, rank: int, state: str) -> float:
        return sum(
            i.duration
            for i in self.intervals
            if i.rank == rank and i.state == state
        )


def export_json(recorder: TraceRecorder, stream: TextIO) -> None:
    """SLOG-2-flavoured JSON: header + interval records."""
    lo, hi = recorder.span()
    doc = {
        "format": "s3asim-trace-1",
        "start": lo,
        "end": hi,
        "ranks": recorder.ranks(),
        "states": recorder.states(),
        "intervals": [
            {
                "rank": i.rank,
                "state": i.state,
                "start": i.start,
                "end": i.end,
            }
            for i in sorted(recorder.intervals, key=lambda i: (i.rank, i.start))
        ],
    }
    json.dump(doc, stream, indent=1)


def load_json(stream: TextIO, source: str = "<trace>") -> TraceRecorder:
    """Parse an exported trace, validating every interval record.

    ``source`` (typically the file name) prefixes every error so a bad
    record points at the offending file and index instead of surfacing as
    a bare ``Interval.__post_init__`` failure.
    """
    try:
        doc = json.load(stream)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{source}: not valid JSON: {exc}") from None
    if not isinstance(doc, dict):
        raise ValueError(f"{source}: expected a JSON object at top level")
    if doc.get("format") != "s3asim-trace-1":
        raise ValueError(
            f"{source}: not an s3asim trace: format={doc.get('format')!r}"
        )
    items = doc.get("intervals")
    if not isinstance(items, list):
        raise ValueError(f"{source}: 'intervals' must be a list")
    recorder = TraceRecorder()
    for index, item in enumerate(items):
        where = f"{source}: intervals[{index}]"
        if not isinstance(item, dict):
            raise ValueError(f"{where}: expected an object, got {type(item).__name__}")
        rank = item.get("rank")
        if isinstance(rank, bool) or not isinstance(rank, int):
            raise ValueError(f"{where}: 'rank' must be an integer, got {rank!r}")
        state = item.get("state")
        if not isinstance(state, str) or not state:
            raise ValueError(
                f"{where}: 'state' must be a non-empty string, got {state!r}"
            )
        bounds = {}
        for fieldname in ("start", "end"):
            value = item.get(fieldname)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(
                    f"{where}: '{fieldname}' must be a number, got {value!r}"
                )
            bounds[fieldname] = float(value)
        if bounds["end"] < bounds["start"]:
            raise ValueError(
                f"{where}: ends at {bounds['end']} before it starts "
                f"at {bounds['start']}"
            )
        recorder.record(rank, state, bounds["start"], bounds["end"])
    return recorder
