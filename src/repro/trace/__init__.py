"""MPE/Jumpshot-style execution tracing for the simulator."""

from .recorder import Interval, TraceRecorder, export_json, load_json
from .timeline import DEFAULT_GLYPHS, render_timeline

__all__ = [
    "DEFAULT_GLYPHS",
    "Interval",
    "TraceRecorder",
    "export_json",
    "load_json",
    "render_timeline",
]
