"""ASCII rendering of trace timelines (a terminal Jumpshot).

One row per rank; time flows left to right; each column shows the state
occupying the majority of that time slice.  States map to single
characters so interleavings of compute/I-O/waiting are visible at a
glance.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .recorder import TraceRecorder

#: Default state → glyph mapping, matching the paper's phase names.
DEFAULT_GLYPHS: Dict[str, str] = {
    "setup": "s",
    "data_distribution": "d",
    "compute": "C",
    "merge_results": "m",
    "gather_results": "g",
    "io": "W",
    "sync": "=",
    "other": ".",
    # Fault-injection states ("crashed" on worker rows; server windows on
    # synthetic negative ranks, one per I/O server).
    "crashed": "X",
    "server_degraded": "!",
    "server_outage": "#",
    # Write-back cache flush windows, on the same negative server rows.
    "server_flush": "F",
}


def render_timeline(
    recorder: TraceRecorder,
    width: int = 100,
    glyphs: Optional[Dict[str, str]] = None,
) -> str:
    """Render the whole trace as one ASCII chart."""
    if width <= 0:
        raise ValueError("width must be positive")
    glyphs = dict(DEFAULT_GLYPHS, **(glyphs or {}))
    lo, hi = recorder.span()
    span = hi - lo
    lines: List[str] = []
    if span <= 0:
        return "(empty trace)"

    def glyph_for(state: str) -> str:
        if state in glyphs:
            return glyphs[state]
        return state[0].upper() if state else "?"

    for rank in recorder.ranks():
        # For each column pick the state with the largest overlap.
        weights: List[Dict[str, float]] = [dict() for _ in range(width)]
        for interval in recorder.for_rank(rank):
            c0 = (interval.start - lo) / span * width
            c1 = (interval.end - lo) / span * width
            col0 = max(0, min(width - 1, int(c0)))
            col1 = max(0, min(width - 1, int(c1 - 1e-12)))
            for col in range(col0, col1 + 1):
                seg_lo = max(c0, col)
                seg_hi = min(c1, col + 1)
                if seg_hi > seg_lo:
                    w = weights[col]
                    w[interval.state] = w.get(interval.state, 0.0) + (seg_hi - seg_lo)
        row = "".join(
            glyph_for(max(w, key=w.get)) if w else " " for w in weights
        )
        lines.append(f"rank {rank:>3d} |{row}|")

    legend = "  ".join(
        f"{glyph_for(s)}={s}" for s in recorder.states()
    )
    lines.append(f"{'':>9s} 0{'':{width - 2}s}{span:.3g}s")
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
