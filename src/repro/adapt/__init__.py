"""Per-query adaptive I/O strategy selection (the ``hybrid-auto`` mode).

The paper's conclusion is that no single strategy wins everywhere: master
writing is best when queries are small (one contiguous write, no offset
round-trip), worker writing when result volumes are large (parallel
clients, no master funnel).  ``repro.adapt`` closes the loop: a
:class:`StrategySelector` scores the static strategies per query from live
run signals — the deterministic result-size estimate, the PVFS servers'
queue depths, the fault-recovery backlog — and the master/worker protocol
executes each query under its chosen strategy.
"""

from .selector import (
    CANDIDATES,
    PolicyWeights,
    QuerySignals,
    ScoredPolicy,
    StrategyPolicy,
    StrategySelector,
)

__all__ = [
    "CANDIDATES",
    "PolicyWeights",
    "QuerySignals",
    "ScoredPolicy",
    "StrategyPolicy",
    "StrategySelector",
]
