"""The per-query strategy selector behind ``--strategy hybrid-auto``.

Selection happens at the master, once per query, at the moment the query's
first task is assigned (the strategy must be stamped into the assignment:
a worker processes an MW task and a WW task differently — ship the payload
vs. store the batch for a later offset list).  The decision is a pure
function of deterministic simulation state, so hybrid-auto runs are as
bit-reproducible as the static strategies.

The default :class:`ScoredPolicy` encodes the paper's findings:

* **MW** wins small queries — one contiguous master write, no offset
  round-trip — but funnels every payload byte through rank 0's NIC, so it
  is penalized as the estimated result volume, the server queue depth, and
  the fault-recovery backlog grow (a crashed worker's MW payloads must be
  reshipped through the same funnel).
* **WW-POSIX** issues one file-system request per result region; tolerable
  only for queries with very few results and lightly-loaded servers.
* **WW-List** is the paper's proposed robust default.

WW-Coll is *not* a candidate: its assignment gating ("workers cannot begin
upcoming queries until after the I/O") is a whole-run protocol property
that cannot be switched per query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Static strategies hybrid-auto picks among, in tie-break order.
CANDIDATES: Tuple[str, ...] = ("mw", "ww-posix", "ww-list")


@dataclass(frozen=True)
class QuerySignals:
    """The live observations one choice is scored on."""

    query_id: int
    #: Estimated output volume of the query: the deterministic per-fragment
    #: hit counts times the policy's calibrated mean result size.
    result_bytes: int
    #: Total result (region) count of the query across all fragments.
    result_count: int
    #: Mean disk-queue depth across the PVFS servers at choice time.
    queue_depth: float
    #: Dead workers plus unacknowledged reissues at choice time.
    outstanding_faults: int
    nworkers: int


class StrategyPolicy:
    """Pluggable scoring interface.

    ``score`` returns a comparable figure of merit for executing the query
    under ``name``; the selector picks the highest, breaking ties toward
    the earlier entry of its candidate tuple.  Implementations must be
    deterministic functions of their inputs.
    """

    def score(self, name: str, signals: QuerySignals) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class PolicyWeights:
    """Calibration constants of :class:`ScoredPolicy`."""

    #: Calibrated mean bytes per result used to turn hit counts into a
    #: volume estimate (the true sizes are only known after the search).
    est_result_B: int = 8 * 1024
    #: Below roughly this estimated volume, MW's single contiguous write
    #: beats the worker-writing offset round-trip.
    small_query_B: int = 256 * 1024
    #: Below roughly this many regions, POSIX's per-region requests are
    #: tolerable.
    few_regions: int = 24
    #: Score subtracted from MW per outstanding fault (crashed workers'
    #: payloads re-funnel through the master).
    fault_penalty: float = 1.0
    #: Score subtracted from MW per unit of mean server queue depth; the
    #: POSIX candidate pays double (per-region requests pile up fastest).
    queue_penalty: float = 0.05
    mw_bias: float = 0.25
    posix_bias: float = 0.1
    list_bias: float = 0.75


@dataclass(frozen=True)
class ScoredPolicy(StrategyPolicy):
    """The default linear scoring policy."""

    weights: PolicyWeights = field(default_factory=PolicyWeights)

    def score(self, name: str, signals: QuerySignals) -> float:
        w = self.weights
        if name == "mw":
            small = 1.0 - min(1.0, signals.result_bytes / w.small_query_B)
            return (
                w.mw_bias
                + small
                - w.fault_penalty * signals.outstanding_faults
                - w.queue_penalty * signals.queue_depth
            )
        if name == "ww-posix":
            few = 0.8 * (1.0 - min(1.0, signals.result_count / w.few_regions))
            return w.posix_bias + few - 2.0 * w.queue_penalty * signals.queue_depth
        if name == "ww-list":
            return w.list_bias
        return float("-inf")


class StrategySelector:
    """Chooses and remembers one static strategy per query.

    ``results`` is the run's :class:`~repro.workload.results.ResultGenerator`
    (hit counts are a pure function of the seed, so the estimate is free
    of look-ahead bias: the master would know them from the score messages
    anyway before any I/O decision takes effect); ``fs`` supplies the live
    server queue-depth gauge.
    """

    def __init__(
        self,
        results,
        fs,
        nworkers: int,
        policy: Optional[StrategyPolicy] = None,
        candidates: Tuple[str, ...] = CANDIDATES,
    ) -> None:
        if not candidates:
            raise ValueError("need at least one candidate strategy")
        self.results = results
        self.fs = fs
        self.nworkers = nworkers
        self.policy = policy if policy is not None else ScoredPolicy()
        self.candidates = tuple(candidates)
        #: query id -> chosen strategy name (the selector's own ledger).
        self.choices: Dict[int, str] = {}

    def _queue_depth(self) -> float:
        servers = self.fs.servers
        if not servers:
            return 0.0
        return sum(s.queue_depth() for s in servers) / len(servers)

    def signals_for(
        self, query_id: int, content: Optional[int] = None, outstanding_faults: int = 0
    ) -> QuerySignals:
        """Assemble the live signal vector for one query.

        ``content`` is the workload content id (differs from the slot id
        in sharded serve runs).
        """
        content = query_id if content is None else content
        count = int(self.results.fragment_counts(content).sum())
        est_B = getattr(self.policy, "weights", PolicyWeights()).est_result_B
        return QuerySignals(
            query_id=query_id,
            result_bytes=count * est_B,
            result_count=count,
            queue_depth=self._queue_depth(),
            outstanding_faults=outstanding_faults,
            nworkers=self.nworkers,
        )

    def choose(
        self, query_id: int, content: Optional[int] = None, outstanding_faults: int = 0
    ) -> str:
        """The strategy for ``query_id`` (sticky: chosen exactly once)."""
        prior = self.choices.get(query_id)
        if prior is not None:
            return prior
        signals = self.signals_for(query_id, content, outstanding_faults)
        best = self.candidates[0]
        best_score = self.policy.score(best, signals)
        for name in self.candidates[1:]:
            score = self.policy.score(name, signals)
            if score > best_score:
                best, best_score = name, score
        self.choices[query_id] = best
        m = self.fs.env.metrics
        if m.enabled:
            m.inc("adapt.choices", 1.0, chosen=best)
        return best
