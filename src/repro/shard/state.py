"""Shard-level configuration and query placement for multi-master runs.

A sharded run partitions the MPI world into ``nshards`` contiguous rank
blocks; each block runs one independent master (its rank 0) plus a worker
pool, all sharing the simulated network and PVFS volume.  Placement
decides, at the arrival instant, which shard admits a query; the
work-stealing protocol (see :mod:`repro.shard.group`) rebalances later if
placement turns out skewed.

Placement consumes no randomness — it is a pure function of the global
arrival index — so the arrival *stream* (times, priorities) of a sharded
run is bit-identical to the single-master run at the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

#: Supported placement functions, in documentation order.
PLACEMENTS: Tuple[str, ...] = ("hash", "range")


@dataclass(frozen=True)
class ShardConfig:
    """One run's master-sharding layout and steal policy."""

    #: Number of shards (masters).  1 degenerates to the plain runner.
    nshards: int = 1
    #: Query placement at admission: ``hash`` spreads arrivals via an
    #: integer mix (uniform, the default); ``range`` assigns contiguous
    #: arrival-index blocks per shard (deliberately skewed under open-loop
    #: arrivals — the work-stealing showcase).
    placement: str = "hash"
    #: Allow masters with drained pending queues to steal unstarted
    #: queries from loaded peers.
    steal: bool = True
    #: Thief back-off between unsuccessful steal rounds while arrivals are
    #: still open (simulated seconds).
    steal_retry_s: float = 0.05

    def __post_init__(self) -> None:
        if self.nshards < 1:
            raise ValueError(f"nshards must be >= 1, got {self.nshards}")
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"placement must be one of {PLACEMENTS}, got {self.placement!r}"
            )
        if not self.steal_retry_s > 0:
            raise ValueError(
                f"steal_retry_s must be positive, got {self.steal_retry_s}"
            )


def partition_ranks(nprocs: int, nshards: int, index: int) -> List[int]:
    """World ranks of shard ``index``: contiguous blocks, remainder spread
    over the first shards (the same arithmetic as the hybrid topology)."""
    base = nprocs // nshards
    extra = nprocs % nshards
    start = index * base + min(index, extra)
    size = base + (1 if index < extra else 0)
    return list(range(start, start + size))


def _mix(x: int) -> int:
    """splitmix64 finalizer: a cheap, well-spread integer hash."""
    x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


def place(arrival_index: int, nshards: int, placement: str, nqueries: int) -> int:
    """Owning shard of the ``arrival_index``-th arrival."""
    if nshards <= 1:
        return 0
    if placement == "hash":
        return _mix(arrival_index) % nshards
    # range: contiguous arrival-index blocks (skewed under open arrivals:
    # early shards fill first and later shards sit idle until their block).
    return min(arrival_index * nshards // max(nqueries, 1), nshards - 1)
