"""Multi-master sharding: ``MasterGroup`` and its placement/steal policy.

``ShardConfig`` lives in :mod:`repro.shard.state` and is imported eagerly
(:mod:`repro.core.config` needs it at class-definition time); the runner
side (:class:`MasterGroup` et al.) imports :mod:`repro.core` back, so it
loads lazily to keep the import graph acyclic.
"""

from .state import PLACEMENTS, ShardConfig, partition_ranks, place

__all__ = [
    "PLACEMENTS",
    "ShardConfig",
    "partition_ranks",
    "place",
    "MasterGroup",
    "ShardedRunResult",
    "run_sharded",
]

_LAZY = {"MasterGroup", "ShardedRunResult", "run_sharded"}


def __getattr__(name):
    if name in _LAZY:
        from . import group

        return getattr(group, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
