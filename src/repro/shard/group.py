"""MasterGroup: M independent masters sharing one cluster and volume.

The group partitions the MPI world into contiguous rank blocks (the hybrid
topology's arithmetic), one shard each: rank 0 of a block runs a
:class:`~repro.core.master.Master`, the rest its worker pool.  All shards
share the simulated network and the PVFS volume — their I/O genuinely
contends — but each writes its own output file (``<path>.shard<i>``),
because the offset ledger is a per-master, strictly-in-order structure.

A single global arrival process drives an :class:`_ArrivalRouter`, which
places each arrival on a shard (hash or range of the arrival index; the
placement consumes no randomness, so the arrival stream is bit-identical
to a single-master run at the same seed) and stamps it with its global
*content id*.  The workload is addressed by content id, so a query keeps
its identity when work-stealing moves it between shards.

Work stealing (``ShardConfig.steal``): a master whose pending queue drains
while workers are parked probes its peers round-robin over the
out-of-band channel (``Steal``/``Donate``); a donor ships the youngest
half of its unstarted, non-priority queries.  Latency is measured end to
end — a stolen query's clock starts at its original arrival.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..adapt.selector import StrategySelector
from ..check.invariants import InvariantChecker
from ..core.app import S3aSim
from ..core.config import SimulationConfig, Workload
from ..core.master import Master
from ..core.report import FileStats
from ..core.worker import Worker
from ..mpi.world import MpiWorld
from ..mpiio.file import MPIIOFile
from ..obs.metrics import MetricsRegistry
from ..pvfs.filesystem import FileSystem, PVFSFile
from ..serve.arrivals import arrival_process
from ..sim.environment import Environment
from .state import ShardConfig, partition_ranks, place


class _ShardResults:
    """Result-generator view translating a shard's local query slots to
    global content ids (a live mapping — slots appear at admission and a
    stolen query brings its content id along)."""

    def __init__(self, results, content: Dict[int, int]) -> None:
        self._results = results
        self._content = content

    def batch(self, query_id: int, fragment_id: int):
        return self._results.batch(self._content[query_id], fragment_id)

    def query_total_bytes(self, query_id: int) -> int:
        return self._results.query_total_bytes(self._content[query_id])


class _ShardWorkload:
    """Workload view handed to one shard's workers."""

    def __init__(self, workload: Workload, content: Dict[int, int]) -> None:
        self.queries = workload.queries
        self.database = workload.database
        self.results = _ShardResults(workload.results, content)


class _ArrivalRouter:
    """The object the global arrival process drives.

    Quacks like a master (``on_arrival`` / ``arrivals_finished``) but only
    places: the ``i``-th arrival goes to ``place(i)`` with content id
    ``i``.  All masters learn of arrival exhaustion at the same instant.
    """

    def __init__(
        self, masters: List[Master], shard_cfg: ShardConfig, nqueries: int
    ) -> None:
        self._masters = masters
        self._shard_cfg = shard_cfg
        self._nqueries = nqueries
        self._index = 0

    def on_arrival(self, priority: bool) -> None:
        index = self._index
        self._index += 1
        shard = place(
            index, len(self._masters), self._shard_cfg.placement, self._nqueries
        )
        self._masters[shard].on_arrival(priority, content=index)

    def arrivals_finished(self) -> None:
        for master in self._masters:
            master.arrivals_finished()


@dataclass(frozen=True)
class ShardedRunResult:
    """Everything one multi-master run produced.

    Duck-types the parts of :class:`~repro.core.report.RunResult` the
    sweep/CLI layers consume (``elapsed``, ``serve_stats``,
    ``file_stats``, ``summary_line``, ``as_dict``); adds the per-shard
    serve statistics the imbalance analysis needs.
    """

    strategy: str
    query_sync: bool
    nprocs: int
    nshards: int
    compute_speed: float
    elapsed: float
    file_stats: FileStats
    server_stats: Dict[str, float] = field(default_factory=dict)
    #: Merged serve summary: global counters, merged-histogram latency
    #: percentiles, plus ``masters``, ``steals``, ``donated`` and the
    #: completion ``imbalance`` (max/mean of per-shard completions).
    serve_stats: Dict[str, float] = field(default_factory=dict)
    #: One ``ServeState.stats()`` dict per shard, in shard order.
    shard_serve_stats: List[Dict[str, float]] = field(default_factory=list)
    metrics: Optional[object] = None

    def summary_line(self) -> str:
        s = self.serve_stats
        sync = "sync" if self.query_sync else "no-sync"
        return (
            f"{self.strategy:8s} {sync:7s} np={self.nprocs:<3d} "
            f"masters={self.nshards} total={self.elapsed:8.2f}s  "
            f"[completed={s.get('completed', 0.0):g} "
            f"steals={s.get('steals', 0.0):g} "
            f"imbalance={s.get('imbalance', 0.0):.2f}]"
        )

    def as_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "query_sync": self.query_sync,
            "nprocs": self.nprocs,
            "masters": self.nshards,
            "compute_speed": self.compute_speed,
            "elapsed": self.elapsed,
            "file": {
                "total_bytes": self.file_stats.total_bytes,
                "expected_bytes": self.file_stats.expected_bytes,
                "dense": self.file_stats.dense,
            },
            "servers": self.server_stats,
            "serve": self.serve_stats,
            "shards": list(self.shard_serve_stats),
            **(
                {"metrics": self.metrics.as_dict()}
                if self.metrics is not None
                else {}
            ),
        }


class MasterGroup:
    """One configured multi-master simulation (``shard.nshards >= 2``)."""

    def __init__(self, config: SimulationConfig, recorder=None) -> None:
        shard = config.shard
        if shard is None or shard.nshards < 2:
            raise ValueError("MasterGroup needs shard.nshards >= 2")
        if config.arrival is None:
            raise ValueError("MasterGroup needs serve mode (config.arrival)")
        self.config = config
        self.shard_cfg = shard
        self.recorder = recorder
        self.world = MpiWorld(
            nranks=config.nprocs,
            network=config.network,
            env=Environment(scheduler=config.scheduler),
        )
        if config.collect_metrics:
            self.world.env.metrics = MetricsRegistry(
                constant_labels={"strategy": config.strategy}
            )
        if config.check:
            self.world.env.check = InvariantChecker(self.world.env)
        self.fs = FileSystem(
            self.world.env,
            config.effective_pvfs(),
            client_nic=lambda rank: self.world.network.nic(rank),
            recorder=recorder,
        )
        self.workload: Workload = config.build_workload()

        nshards = shard.nshards
        self.partitions = [
            partition_ranks(config.nprocs, nshards, i) for i in range(nshards)
        ]
        # Master-to-master communicator: local rank == shard index.
        mcomm = self.world.comm.sub([ranks[0] for ranks in self.partitions])
        store = config.effective_pvfs().store_data
        strategy = config.io_strategy()
        self.masters: List[Master] = []
        self.workers: List[List[Worker]] = []
        self.files: List[PVFSFile] = []
        for i, ranks in enumerate(self.partitions):
            comm = self.world.comm.sub(ranks)
            wcomm = comm.sub(list(range(1, len(ranks))))
            path = f"{config.output_path}.shard{i}"
            file = PVFSFile(path, self.fs.layout, store)
            self.fs.files[path] = file
            self.files.append(file)
            fh = MPIIOFile(
                self.fs,
                file,
                strategy.hints(sync_after_write=config.sync_after_write),
            )
            sub_cfg = config.with_(
                nprocs=len(ranks), output_path=path, shard=None
            )
            selector = None
            if sub_cfg.adaptive:
                # Per-shard selector over the *global* result generator —
                # the master hands in the slot's content id at choice time,
                # so hit-count estimates survive work-stealing transfers.
                selector = StrategySelector(
                    self.workload.results, self.fs, nworkers=sub_cfg.nworkers
                )
            master = Master(
                comm.view(0), sub_cfg, fh, recorder=recorder, selector=selector
            )
            master.attach_shard(i, mcomm.view(i), shard)
            self.masters.append(master)
            pool = []
            for local in range(1, len(ranks)):
                worker = Worker(
                    comm.view(local),
                    wcomm.view(local - 1),
                    sub_cfg,
                    _ShardWorkload(self.workload, master.serve.content),
                    fh,
                    recorder=recorder,
                )
                worker.shard_id = i
                pool.append(worker)
            self.workers.append(pool)

    def run(self, until: Optional[float] = None) -> ShardedRunResult:
        cfg = self.config
        env = self.world.env
        for i, ranks in enumerate(self.partitions):
            master = self.masters[i]
            self.world.spawn(ranks[0], lambda _v, m=master: m.run())
            for local, worker in enumerate(self.workers[i], start=1):
                self.world.spawn(ranks[local], lambda _v, w=worker: w.run())
        router = _ArrivalRouter(self.masters, self.shard_cfg, cfg.nqueries)
        env.process(
            arrival_process(env, router, cfg.arrival, cfg.streams(), cfg.nqueries),
            name="arrivals",
        )

        reports = self.world.run(until=until)
        elapsed = env.now
        cutoff = any(report is None for report in reports.values())
        if cutoff and self.recorder is not None:
            for master in self.masters:
                rank = master.comm.global_rank
                for q in list(master.serve.arrival_t):
                    self.recorder.discard(rank, state=f"serve_q{q}")
            for rank in range(cfg.nprocs):
                self.recorder.abort(rank, elapsed)

        # Per-shard output files: each must hold exactly the bytes of the
        # queries its master completed locally (donated slots are zero-size
        # placeholders; the thief's file carries those bytes instead).
        total = expected_total = nextents = 0
        dense = True
        for i, master in enumerate(self.masters):
            s = master.serve
            expected = sum(
                self.workload.results.query_total_bytes(s.content[q])
                for q in range(s.admitted)
                if q not in s.donated_q
            )
            store = self.files[i].bytestore
            total += store.total_bytes()
            expected_total += expected
            nextents += len(store.extents())
            dense = dense and store.extents() == (
                [(0, expected)] if expected else []
            )
        file_stats = FileStats(
            total_bytes=total,
            expected_bytes=expected_total,
            nextents=nextents,
            dense=dense,
        )
        server_stats = {
            "requests": float(self.fs.total_requests()),
            "bytes_written": float(self.fs.total_bytes_written()),
            "syncs": float(self.fs.total_syncs()),
            "mean_busy_s": sum(s.stats.busy_s for s in self.fs.servers)
            / len(self.fs.servers),
        }
        shard_stats = [m.serve.stats() for m in self.masters]
        serve_stats = self._merged_serve_stats(shard_stats)

        metrics_registry = env.metrics
        if metrics_registry.enabled:
            metrics_registry.set_gauge("run.elapsed_seconds", elapsed)
            metrics_registry.set_gauge("run.nprocs", float(cfg.nprocs))
            metrics_registry.set_gauge(
                "shard.masters", float(self.shard_cfg.nshards)
            )
        metrics = metrics_registry.snapshot() if metrics_registry.enabled else None

        checker = env.check
        if checker.enabled:
            checker.finalize(
                now=elapsed,
                recorder=self.recorder,
                fault_free=not cutoff,
                open_queries={
                    i: m.serve.admitted - m.serve.completed - m.serve.donated
                    for i, m in enumerate(self.masters)
                },
            )
        return ShardedRunResult(
            strategy=cfg.strategy,
            query_sync=cfg.query_sync,
            nprocs=cfg.nprocs,
            nshards=self.shard_cfg.nshards,
            compute_speed=cfg.compute.speed,
            elapsed=elapsed,
            file_stats=file_stats,
            server_stats=server_stats,
            serve_stats=serve_stats,
            shard_serve_stats=shard_stats,
            metrics=metrics,
        )

    def _merged_serve_stats(self, shard_stats) -> Dict[str, float]:
        masters = self.masters
        merged = masters[0].serve.latency_summary()
        for master in masters[1:]:
            merged = merged.merged(master.serve.latency_summary())
        completions = [float(m.serve.completed) for m in masters]
        mean = sum(completions) / len(completions)
        completed = sum(completions)
        no_data = float("nan")
        return {
            "masters": float(len(masters)),
            "offered": float(sum(m.serve.offered for m in masters)),
            "admitted": float(sum(m.serve.admitted for m in masters)),
            "rejected": float(sum(m.serve.rejected for m in masters)),
            "shed": float(sum(m.serve.shed for m in masters)),
            "completed": completed,
            "pending": float(sum(m.serve.pending for m in masters)),
            "donated": float(sum(m.serve.donated for m in masters)),
            "steals": float(sum(m.serve.stolen for m in masters)),
            "imbalance": (max(completions) / mean) if mean else 0.0,
            "latency_mean_s": merged.mean if completed else no_data,
            "latency_p50_s": merged.quantile(0.50) if completed else no_data,
            "latency_p95_s": merged.quantile(0.95) if completed else no_data,
            "latency_p99_s": merged.quantile(0.99) if completed else no_data,
            "latency_max_s": merged.max if completed else no_data,
        }


def run_sharded(
    config: SimulationConfig, recorder=None, until: Optional[float] = None
):
    """Run a (possibly sharded) configuration.

    ``shard=None`` or a single shard degenerates to the plain
    single-master runner — bit-identical to the seed implementation.
    """
    if config.shard is None or config.shard.nshards < 2:
        return S3aSim(config.with_(shard=None), recorder=recorder).run(until=until)
    return MasterGroup(config, recorder=recorder).run(until=until)
