"""repro — a full reproduction of "Exploring I/O Strategies for Parallel
Sequence-Search Tools with S3aSim" (HPDC 2006).

The package simulates the complete stack the paper ran on: a
discrete-event kernel (:mod:`repro.sim`), MPI messaging
(:mod:`repro.mpi`), a PVFS2-like parallel file system (:mod:`repro.pvfs`),
a ROMIO-like MPI-IO layer (:mod:`repro.mpiio`), the sequence-search
workload model (:mod:`repro.workload`), and S3aSim itself
(:mod:`repro.core`) with its four result-writing strategies (MW, WW-POSIX,
WW-List, WW-Coll).

Quickstart::

    from repro.core import SimulationConfig, run_simulation

    result = run_simulation(SimulationConfig(nprocs=32, strategy="ww-list"))
    print(result.summary_line())
"""

from .core import RunResult, S3aSim, SimulationConfig, run_simulation
from .faults import FaultPlan, FaultToleranceConfig

__version__ = "1.0.0"

__all__ = [
    "FaultPlan",
    "FaultToleranceConfig",
    "RunResult",
    "S3aSim",
    "SimulationConfig",
    "run_simulation",
    "__version__",
]
