"""End-to-end fault injection and recovery across the four strategies."""

import pytest

from repro.core import S3aSim, SimulationConfig
from repro.faults import FaultPlan, FaultToleranceConfig, MessageLoss
from repro.trace import TraceRecorder

SMALL = dict(nprocs=4, nqueries=4, nfragments=8)

#: Completion times of the seed implementation (no fault code on the event
#: path).  An *empty* FaultPlan must reproduce these to the last bit — the
#: fault subsystem is required to add zero events to healthy runs.
GOLDEN = {
    ("mw", False): 24.024963431041648,
    ("mw", True): 24.480207967324148,
    ("ww-posix", False): 26.503042752488053,
    ("ww-posix", True): 28.29374387238095,
    ("ww-list", False): 20.375905478186557,
    ("ww-list", True): 22.55064420848763,
    ("ww-coll", False): 21.832816896715293,
    ("ww-coll", True): 21.83288989320763,
}

STRATEGIES = ("mw", "ww-posix", "ww-list", "ww-coll")


class TestBitIdentity:
    @pytest.mark.parametrize("strategy,query_sync", sorted(GOLDEN))
    def test_empty_plan_matches_seed_exactly(self, strategy, query_sync):
        cfg = SimulationConfig(
            strategy=strategy, query_sync=query_sync, **SMALL
        )
        result = S3aSim(cfg).run()
        assert result.elapsed == GOLDEN[(strategy, query_sync)]
        assert not result.fault_stats


class TestCannedScenario:
    """One worker crash mid-search plus a degraded-server window."""

    PLAN = FaultPlan.standard(
        crash_rank=1,
        crash_time=6.0,
        downtime_s=2.0,
        server_id=0,
        slow_start=3.0,
        slow_duration=4.0,
    )

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_recovers_with_zero_lost_bytes(self, strategy):
        cfg = SimulationConfig(
            strategy=strategy,
            store_data=True,
            fault_plan=self.PLAN,
            **SMALL,
        )
        result = S3aSim(cfg).run()
        # store_data=True makes completeness byte-exact: every hole or
        # overlap in the output file would fail the run.
        assert result.file_stats.complete
        stats = result.fault_stats
        assert stats["crashes"] == 1
        assert stats["failures_detected"] + stats.get("rejoins", 0) >= 1
        assert stats.get("tasks_reassigned", 0) >= 1

    @pytest.mark.parametrize("query_sync", [False, True])
    def test_ww_coll_recovers_under_sync(self, query_sync):
        cfg = SimulationConfig(
            strategy="ww-coll",
            query_sync=query_sync,
            store_data=True,
            fault_plan=self.PLAN,
            **SMALL,
        )
        result = S3aSim(cfg).run()
        assert result.file_stats.complete

    def test_fault_events_reach_the_trace(self):
        recorder = TraceRecorder()
        cfg = SimulationConfig(strategy="ww-list", fault_plan=self.PLAN, **SMALL)
        result = S3aSim(cfg, recorder=recorder).run()
        assert result.file_stats.complete
        states = {i.state for i in recorder.intervals}
        assert "crashed" in states
        assert "server_degraded" in states
        # Server rows are keyed by negative ranks to stay clear of MPI ranks.
        degraded = [i for i in recorder.intervals if i.state == "server_degraded"]
        assert all(i.rank < 0 for i in degraded)
        # The injector also reports its events in the run result.
        kinds = {e["kind"] for e in result.fault_events}
        assert {"worker-crash", "server-degraded", "server-restored"} <= kinds


class TestDeterminism:
    def test_same_seed_and_plan_replay_identically(self):
        plan = FaultPlan.standard(crash_time=6.0)
        cfg = SimulationConfig(strategy="ww-list", fault_plan=plan, **SMALL)

        def one_run():
            recorder = TraceRecorder()
            result = S3aSim(cfg, recorder=recorder).run()
            intervals = [
                (i.rank, i.state, i.start, i.end) for i in recorder.intervals
            ]
            return result.elapsed, intervals

        first = one_run()
        second = one_run()
        assert first[0] == second[0]
        assert first[1] == second[1]

    def test_different_seed_differs(self):
        plan = FaultPlan.standard(crash_time=6.0)
        cfg = SimulationConfig(strategy="ww-list", fault_plan=plan, **SMALL)
        a = S3aSim(cfg).run().elapsed
        b = S3aSim(cfg.with_(seed=cfg.seed + 1)).run().elapsed
        assert a != b


class TestMessageLoss:
    def test_lossy_window_is_recovered_by_retransmission(self):
        plan = FaultPlan(
            message_loss=(MessageLoss(drop_prob=0.2, start=0.0, end=10.0),)
        )
        cfg = SimulationConfig(strategy="ww-list", fault_plan=plan, **SMALL)
        result = S3aSim(cfg).run()
        assert result.file_stats.complete
        assert result.fault_stats["messages_dropped"] > 0
        assert (
            result.fault_stats["retransmits"]
            == result.fault_stats["messages_dropped"]
        )
        assert result.fault_stats["link_failures"] == 0

    def test_loss_slows_the_run_down(self):
        cfg = SimulationConfig(strategy="ww-list", **SMALL)
        clean = S3aSim(cfg).run().elapsed
        plan = FaultPlan(message_loss=(MessageLoss(drop_prob=0.3),))
        lossy = S3aSim(cfg.with_(fault_plan=plan)).run().elapsed
        assert lossy > clean


class TestExplicitTolerance:
    def test_tolerance_without_faults_still_completes(self):
        """Heartbeats/acks active but nothing ever fails."""
        cfg = SimulationConfig(
            strategy="ww-coll",
            fault_tolerance=FaultToleranceConfig(),
            **SMALL,
        )
        result = S3aSim(cfg).run()
        assert result.file_stats.complete
        assert result.fault_stats.get("failures_detected", 0) == 0
        assert result.fault_stats.get("writes_acked", 0) > 0


class TestFaultCli:
    def test_run_with_fault_plan_file(self, capsys, tmp_path):
        from repro.cli import main

        path = tmp_path / "plan.json"
        with open(path, "w") as fh:
            FaultPlan.standard(crash_time=6.0).to_json(fh)
        code = main(
            [
                "run", "--nprocs", "4", "--nqueries", "4", "--nfragments", "8",
                "--fault-plan", str(path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "complete=True" in out
        assert "faults/recovery:" in out
        assert "crashes" in out

    def test_fault_sweep_smoke(self, capsys):
        from repro.cli import main

        code = main(
            [
                "fault-sweep", "--nprocs", "4", "--nqueries", "4",
                "--nfragments", "8", "--crash-time", "6.0",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        for strategy in STRATEGIES:
            assert strategy in out
        assert "inflation" in out
