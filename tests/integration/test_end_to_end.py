"""End-to-end S3aSim runs: correctness across every strategy and option."""

import pytest

from repro.core import Phase, S3aSim, SimulationConfig, run_simulation
from repro.workload import ComputeModel

ALL = ("mw", "ww-posix", "ww-list", "ww-coll")


def small(strategy="ww-list", **kwargs):
    defaults = dict(
        nprocs=4,
        strategy=strategy,
        nqueries=4,
        nfragments=8,
        store_data=True,
    )
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


class TestFileCorrectness:
    @pytest.mark.parametrize("strategy", ALL)
    @pytest.mark.parametrize("query_sync", [False, True])
    def test_output_file_complete(self, strategy, query_sync):
        result = run_simulation(small(strategy, query_sync=query_sync))
        assert result.file_stats.complete, result.file_stats
        assert result.file_stats.nextents == 1

    @pytest.mark.parametrize("write_every", [1, 2, 4])
    @pytest.mark.parametrize("strategy", ALL)
    def test_write_groups(self, strategy, write_every):
        """Writing every n queries (incl. write-at-end, the mpiBLAST-1.2 /
        pioBLAST mode at write_every == nqueries) stays correct."""
        result = run_simulation(small(strategy, write_every=write_every))
        assert result.file_stats.complete

    def test_cross_strategy_content_identical(self):
        stores = {}
        for strategy in ALL:
            app = S3aSim(small(strategy))
            app.run()
            stores[strategy] = app.fh.file.bytestore
        reference = stores["ww-list"]
        for strategy, store in stores.items():
            assert reference.content_equal(store), f"{strategy} differs"

    def test_content_independent_of_nprocs(self):
        stores = []
        for nprocs in (2, 3, 7):
            app = S3aSim(small(nprocs=nprocs))
            app.run()
            stores.append(app.fh.file.bytestore)
        assert stores[0].content_equal(stores[1])
        assert stores[0].content_equal(stores[2])

    def test_content_independent_of_query_sync_and_write_every(self):
        base = S3aSim(small())
        base.run()
        for kwargs in (dict(query_sync=True), dict(write_every=4)):
            app = S3aSim(small(**kwargs))
            app.run()
            assert base.fh.file.bytestore.content_equal(app.fh.file.bytestore)


class TestDeterminism:
    def test_elapsed_reproducible(self):
        a = run_simulation(small("ww-coll", query_sync=True))
        b = run_simulation(small("ww-coll", query_sync=True))
        assert a.elapsed == b.elapsed
        assert a.worker_mean.as_dict() == b.worker_mean.as_dict()

    def test_different_seed_different_workload(self):
        a = run_simulation(small(seed=1))
        b = run_simulation(small(seed=2))
        assert a.file_stats.expected_bytes != b.file_stats.expected_bytes


class TestPhaseAccounting:
    @pytest.mark.parametrize("strategy", ALL)
    def test_master_never_computes(self, strategy):
        result = run_simulation(small(strategy))
        assert result.master[Phase.COMPUTE] == 0.0
        assert result.master[Phase.MERGE] == 0.0

    @pytest.mark.parametrize("strategy", ALL)
    def test_workers_compute(self, strategy):
        result = run_simulation(small(strategy))
        assert result.worker_mean[Phase.COMPUTE] > 0

    def test_only_parallel_io_strategies_merge_on_workers(self):
        mw = run_simulation(small("mw"))
        ww = run_simulation(small("ww-list"))
        assert mw.worker_mean[Phase.MERGE] == 0.0
        assert ww.worker_mean[Phase.MERGE] > 0.0

    @pytest.mark.parametrize("strategy", ["ww-posix", "ww-list", "ww-coll"])
    def test_worker_writers_have_io_phase(self, strategy):
        result = run_simulation(small(strategy))
        assert result.worker_mean[Phase.IO] > 0

    def test_mw_workers_do_no_io(self):
        result = run_simulation(small("mw"))
        assert result.worker_mean[Phase.IO] == 0.0
        assert result.master[Phase.IO] > 0.0

    @pytest.mark.parametrize("strategy", ALL)
    def test_phases_account_for_total(self, strategy):
        """Measured phases + OTHER == each worker's lifetime."""
        result = run_simulation(small(strategy))
        for report in result.workers:
            assert sum(report.times.values()) == pytest.approx(report.total)

    def test_query_sync_adds_sync_or_wait_time(self):
        nosync = run_simulation(small("ww-posix", nprocs=6))
        sync = run_simulation(small("ww-posix", nprocs=6, query_sync=True))
        assert sync.elapsed >= nosync.elapsed * 0.99


class TestResultObject:
    def test_run_result_fields(self):
        cfg = small("ww-list", query_sync=True)
        result = run_simulation(cfg)
        assert result.strategy == "ww-list"
        assert result.query_sync is True
        assert result.nprocs == 4
        assert result.compute_speed == 1.0
        assert len(result.workers) == 3
        assert result.elapsed > 0
        assert result.server_stats["bytes_written"] == result.file_stats.total_bytes

    def test_summary_line_and_dict(self):
        result = run_simulation(small())
        line = result.summary_line()
        assert "ww-list" in line and "no-sync" in line
        doc = result.as_dict()
        assert doc["file"]["dense"] is True
        assert set(doc["worker_mean"]) == {p.value for p in Phase}

    def test_compute_speed_recorded(self):
        cfg = small(compute=ComputeModel(speed=3.2))
        assert run_simulation(cfg).compute_speed == 3.2


class TestScaleEdgeCases:
    def test_minimum_two_processes(self):
        result = run_simulation(small(nprocs=2))
        assert result.file_stats.complete

    def test_more_workers_than_tasks(self):
        cfg = small(nprocs=12, nqueries=2, nfragments=4)  # 8 tasks, 11 workers
        result = run_simulation(cfg)
        assert result.file_stats.complete

    def test_single_query_single_fragment(self):
        result = run_simulation(small(nqueries=1, nfragments=1))
        assert result.file_stats.complete

    @pytest.mark.parametrize("strategy", ALL)
    def test_single_worker_all_strategies(self, strategy):
        result = run_simulation(small(strategy, nprocs=2, query_sync=True))
        assert result.file_stats.complete

    def test_write_every_exceeding_nqueries(self):
        result = run_simulation(small(write_every=100))
        assert result.file_stats.complete


class TestStragglerResilience:
    """A degraded I/O server slows every strategy but never breaks
    correctness (PVFS2 has no redundancy; a slow disk just throttles)."""

    @pytest.mark.parametrize("strategy", ALL)
    def test_straggler_preserves_correctness(self, strategy):
        app = S3aSim(small(strategy, nprocs=5))
        app.fs.degrade_server(3, 16.0)
        result = app.run()
        assert result.file_stats.complete

    def test_straggler_slows_the_run(self):
        healthy = run_simulation(small("ww-list", nprocs=5))
        app = S3aSim(small("ww-list", nprocs=5))
        app.fs.degrade_server(3, 16.0)
        degraded = app.run()
        assert degraded.elapsed > healthy.elapsed
