"""CLI smoke tests (argument parsing + each subcommand end to end)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.nprocs == 16
        assert args.strategy == "ww-list"
        assert not args.query_sync

    def test_bad_strategy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--strategy", "bogus"])


SMALL = ["--nprocs", "4", "--nqueries", "2", "--nfragments", "4"]


class TestCommands:
    def test_run(self, capsys):
        code = main(["run", *SMALL])
        out = capsys.readouterr().out
        assert code == 0
        assert "output file" in out
        assert "complete=True" in out

    def test_run_with_options(self, capsys):
        code = main(
            ["run", *SMALL, "--strategy", "mw", "--query-sync",
             "--compute-speed", "2.0", "--cluster", "modern"]
        )
        assert code == 0
        assert "mw" in capsys.readouterr().out

    def test_sweep_processes(self, capsys):
        code = main(["sweep", "processes", *SMALL, "--counts", "2,3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Overall Execution Time - no-sync" in out
        assert "Ratios vs" in out

    def test_sweep_speed_with_phases(self, capsys):
        code = main(
            ["sweep", "speed", *SMALL, "--speeds", "1", "--phases"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "worker process" in out

    def test_trace(self, capsys, tmp_path):
        out_file = tmp_path / "trace.json"
        code = main(["trace", *SMALL, "--width", "40", "--output", str(out_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert "rank   0" in out
        assert out_file.exists()

    def test_validate(self, capsys):
        code = main(["validate", *SMALL])
        out = capsys.readouterr().out
        assert code == 0
        assert "VALIDATION PASSED" in out

    def test_hybrid(self, capsys):
        code = main(["hybrid", *SMALL, "--partitions", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "hybrid k=2" in out
        assert "complete: True" in out

    def test_scenario_flag(self, capsys):
        code = main(["run", *SMALL, "--scenario", "pioblast"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ww-coll" in out

    def test_workload_save_and_load(self, capsys, tmp_path):
        path = tmp_path / "workload.json"
        code = main(["run", *SMALL, "--save-workload", str(path)])
        assert code == 0 and path.exists()
        code = main(["run", "--nprocs", "4", "--workload", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "complete=True" in out

    def test_stats(self, capsys):
        code = main(["stats", *SMALL])
        out = capsys.readouterr().out
        assert code == 0
        assert "--- ww-list ---" in out
        assert "requests" in out and "seeks" in out and "syncs" in out
        assert "per-rank phase seconds:" in out
        assert "mpi:" in out and "mpiio:" in out

    def test_stats_compare_and_export(self, capsys, tmp_path):
        json_path = tmp_path / "metrics.json"
        csv_path = tmp_path / "metrics.csv"
        code = main([
            "stats", *SMALL, "--compare", "--jobs", "2",
            "--json", str(json_path), "--csv", str(csv_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        # Comparison table: one summary row per strategy.
        for strategy in ("mw", "ww-posix", "ww-list", "ww-coll"):
            assert f"--- {strategy} ---" in out
        assert "regions/req" in out
        assert json_path.exists() and csv_path.exists()
        from repro.obs import load_metrics_json

        with open(json_path) as fh:
            doc = load_metrics_json(fh)
        names = {c["name"] for c in doc["counters"]}
        assert {"pvfs.requests", "pvfs.seeks", "app.phase_seconds"} <= names
        # Aggregated across strategies but still sliceable per strategy.
        strategies = {c["labels"].get("strategy") for c in doc["counters"]}
        assert {"mw", "ww-posix", "ww-list", "ww-coll"} <= strategies

    def test_sweep_export_files(self, capsys, tmp_path):
        json_path = tmp_path / "sweep.json"
        csv_path = tmp_path / "sweep.csv"
        code = main([
            "sweep", "processes", *SMALL, "--counts", "2,3",
            "--json", str(json_path), "--csv", str(csv_path),
        ])
        assert code == 0
        assert json_path.exists() and csv_path.exists()
        import json as json_mod

        doc = json_mod.loads(json_path.read_text())
        assert doc["format"] == "s3asim-sweep-1"

    def test_run_with_check(self, capsys):
        code = main(["run", *SMALL, "--check"])
        out = capsys.readouterr().out
        assert code == 0
        assert "invariants:" in out
        assert "checks passed" in out

    def test_check_subcommand(self, capsys):
        code = main(["check", "--cases", "1", "--seed", "3",
                     "--relations", "query-sync,empty-faults"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 failure(s)" in out

    def test_check_replay(self, capsys, tmp_path):
        from repro.check import metamorphic as M

        path = str(tmp_path / "repro.json")
        M.write_artifact(
            path, "empty-faults",
            M.CheckCase(seed=11, nprocs=3, nqueries=1, nfragments=2,
                        nservers=2, write_every=1, strategy="ww-list"),
            "stale error",
        )
        code = main(["check", "--replay", path])
        out = capsys.readouterr().out
        assert code == 0
        assert "HOLDS" in out
