"""Full-application equivalence of the two kernel scheduler backends.

The calendar queue is a pure performance feature: ``scheduler="calendar"``
must produce *bit-identical* results to the default heap on every
configuration — same elapsed time, same per-phase breakdowns, same server
stats, same fault recovery timeline.  These tests run whole S3aSim jobs
(including the fault stack and the invariant checker) under both backends
and diff the results field by field.
"""

import pytest

from repro.core import S3aSim, SimulationConfig
from repro.faults import FaultPlan, ServerOutage, WorkerCrash
from repro.pvfs import PVFSConfig

MIB = 1024 * 1024
SMALL = dict(nprocs=4, nqueries=2, nfragments=6)


def _fingerprint(result, app):
    """Everything observable about a run, hashable for exact comparison."""
    return (
        result.elapsed,
        tuple(sorted(result.master.as_dict().items())),
        tuple(tuple(sorted(w.as_dict().items())) for w in result.workers),
        result.file_stats,
        tuple(sorted(result.server_stats.items())),
        tuple(sorted(result.fault_stats.items())),
        app.fh.file.bytestore.extents(),
    )


def _run(config):
    app = S3aSim(config)
    result = app.run()
    return _fingerprint(result, app)


def _pair(config):
    return (
        _run(config.with_(scheduler="heap")),
        _run(config.with_(scheduler="calendar")),
    )


class TestSchedulerEquivalence:
    @pytest.mark.parametrize("strategy", ("mw", "ww-posix", "ww-list", "ww-coll"))
    def test_clean_run_identical(self, strategy):
        heap, calendar = _pair(
            SimulationConfig(strategy=strategy, check=True, **SMALL)
        )
        assert heap == calendar

    def test_query_sync_identical(self):
        heap, calendar = _pair(
            SimulationConfig(strategy="ww-coll", query_sync=True, **SMALL)
        )
        assert heap == calendar

    def test_fault_stack_identical(self):
        """Outage + worker crash + replication + write-back cache: the
        heaviest event-path mix in the repo must not diverge either."""
        plan = FaultPlan(
            server_outages=(ServerOutage(server_id=0, start=6.0, duration=2.0),),
            worker_crashes=(WorkerCrash(rank=1, at_time=4.0, downtime_s=2.0),),
        )
        heap, calendar = _pair(
            SimulationConfig(
                strategy="ww-list",
                store_data=True,
                check=True,
                fault_plan=plan,
                pvfs=PVFSConfig(server_cache_B=4 * MIB, replicas=2),
                **SMALL,
            )
        )
        assert heap == calendar

    def test_fluid_mode_identical_across_schedulers(self):
        """Fluid flows change timing vs packet mode, but heap and calendar
        must still agree with each other."""
        from dataclasses import replace

        base = SimulationConfig(strategy="mw", check=True, **SMALL)
        config = base.with_(
            network=replace(
                base.network, eager_threshold_B=2048, fluid_threshold_B=4096
            )
        )
        heap, calendar = _pair(config)
        assert heap == calendar

    def test_medium_scale_identical(self):
        """32 ranks: enough event churn to force calendar resizes mid-run
        (the scale that exposed the resize re-anchoring bug — small runs
        never resized with pending pushes in flight)."""
        heap, calendar = _pair(
            SimulationConfig(
                strategy="ww-coll", nprocs=32, nqueries=4, nfragments=16
            )
        )
        assert heap == calendar

    def test_calendar_run_twice_is_bit_identical(self):
        config = SimulationConfig(
            strategy="ww-coll", scheduler="calendar", **SMALL
        )
        assert _run(config) == _run(config)
