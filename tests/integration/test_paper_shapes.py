"""Paper-shape acceptance tests at reduced (fast) scale.

These check the *qualitative* results of the paper's Section 4 using a
scaled-down workload (fewer queries/fragments than the full benchmarks in
``benchmarks/``, which regenerate the figures at paper scale).  The shapes
under test:

* WW-List is the fastest strategy (no-sync and sync),
* all no-sync runs are at least as fast as their sync counterparts,
* WW-Coll barely changes under forced query sync (its collective write is
  already synchronized),
* MW barely changes under forced query sync at base compute speed,
* MW barely benefits from large compute-speed increases while the
  worker-writing strategies do,
* list I/O beats POSIX I/O for the workers' noncontiguous writes.
"""

import pytest

from repro.core import SimulationConfig, run_simulation
from repro.workload import ComputeModel

pytestmark = pytest.mark.slow

NPROCS = 24
SMALL = dict(nqueries=8, nfragments=32)


def run(strategy, query_sync=False, speed=1.0, nprocs=NPROCS):
    cfg = SimulationConfig(
        nprocs=nprocs,
        strategy=strategy,
        query_sync=query_sync,
        compute=ComputeModel(speed=speed),
        **SMALL,
    )
    return run_simulation(cfg)


@pytest.fixture(scope="module")
def matrix():
    """All strategy × sync results at the test scale."""
    return {
        (s, q): run(s, query_sync=q)
        for s in ("mw", "ww-posix", "ww-list", "ww-coll")
        for q in (False, True)
    }


class TestHeadlineOrdering:
    def test_ww_list_fastest_no_sync(self, matrix):
        best = matrix[("ww-list", False)].elapsed
        for s in ("mw", "ww-posix", "ww-coll"):
            assert best <= matrix[(s, False)].elapsed

    def test_ww_list_fastest_sync(self, matrix):
        best = matrix[("ww-list", True)].elapsed
        for s in ("mw", "ww-posix", "ww-coll"):
            assert best <= matrix[(s, True)].elapsed

    def test_mw_is_worst_at_scale(self, matrix):
        """MW trails every worker-writing strategy once the master's
        single-client write path saturates."""
        mw = matrix[("mw", False)].elapsed
        for s in ("ww-posix", "ww-list", "ww-coll"):
            assert mw > matrix[(s, False)].elapsed

    def test_no_sync_never_slower(self, matrix):
        """"All no-sync I/O strategies perform as good as or better than
        their sync counterparts" (within a small tolerance for timing
        noise in the simulated schedules)."""
        for s in ("mw", "ww-posix", "ww-list", "ww-coll"):
            assert matrix[(s, False)].elapsed <= matrix[(s, True)].elapsed * 1.05


class TestSyncSensitivity:
    def test_ww_coll_insensitive_to_query_sync(self, matrix):
        """Paper: "WW-Coll performance is about the same with or without
        the sync option" (at most ~6%)."""
        nosync = matrix[("ww-coll", False)].elapsed
        sync = matrix[("ww-coll", True)].elapsed
        assert abs(sync - nosync) / nosync < 0.10

    def test_mw_insensitive_to_query_sync_at_base_speed(self, matrix):
        """Paper: at most ~5% at base compute speed."""
        nosync = matrix[("mw", False)].elapsed
        sync = matrix[("mw", True)].elapsed
        assert abs(sync - nosync) / nosync < 0.15

    def test_ww_individual_pays_for_query_sync(self, matrix):
        """WW-POSIX/WW-List get measurably slower under forced sync."""
        for s in ("ww-posix", "ww-list"):
            assert matrix[(s, True)].elapsed > matrix[(s, False)].elapsed


class TestComputeSpeedScaling:
    def test_mw_insensitive_to_compute_speed(self):
        """Paper: 25.6x faster compute changes MW by <2% (we allow 15% at
        the reduced test scale)."""
        slow = run("mw", speed=1.0)
        fast = run("mw", speed=25.6)
        assert abs(slow.elapsed - fast.elapsed) / slow.elapsed < 0.15

    def test_ww_list_benefits_from_compute_speed(self):
        slow = run("ww-list", speed=1.0)
        fast = run("ww-list", speed=25.6)
        assert fast.elapsed < slow.elapsed * 0.8

    def test_slow_compute_hurts_ww_coll_most(self):
        """Large compute-time variance makes WW-Coll pay the biggest
        synchronization penalty (paper Section 4, Figures 5-7)."""
        coll = run("ww-coll", speed=0.1)
        lst = run("ww-list", speed=0.1)
        assert coll.elapsed > lst.elapsed


class TestListVsPosix:
    def test_list_io_beats_posix_io(self, matrix):
        assert (
            matrix[("ww-list", False)].elapsed
            < matrix[("ww-posix", False)].elapsed
        )

    def test_list_io_issues_fewer_requests(self):
        lst = run("ww-list")
        posix = run("ww-posix")
        assert lst.server_stats["requests"] < posix.server_stats["requests"]


class TestScalingKnee:
    def test_adding_processes_helps_then_saturates(self):
        """Figure 2's shape: near-linear early gains, knee once I/O
        dominates."""
        t4 = run("ww-list", nprocs=4).elapsed
        t12 = run("ww-list", nprocs=12).elapsed
        t24 = run("ww-list", nprocs=24).elapsed
        assert t12 < t4 / 1.8  # strong early speedup
        early_gain = t4 / t12
        late_gain = t12 / t24
        assert late_gain < early_gain  # diminishing returns
