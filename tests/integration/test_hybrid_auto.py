"""End-to-end adaptive strategy selection (``--strategy hybrid-auto``).

A hybrid-auto run must produce the same dense, checkable output file as
any static strategy, while the selector's choices stay visible in three
places that must agree: the selector ledger inside the invariant
checker, the ``adapt.choices`` counter, and the per-query trace stamps.
"""

from dataclasses import replace

import pytest

from repro.adapt import CANDIDATES
from repro.core import SCENARIOS, SimulationConfig, get_scenario, run_simulation
from repro.core.app import S3aSim
from repro.serve.arrivals import ArrivalConfig
from repro.workload.results import ResultModel


def cfg(**kwargs):
    defaults = dict(
        nprocs=4,
        strategy="hybrid-auto",
        nqueries=6,
        nfragments=8,
        seed=77,
        write_every=1,
        store_data=True,
        check=True,
        collect_metrics=True,
    )
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


def run_app(config):
    app = S3aSim(config)
    result = app.run()
    return app, result


class TestBatch:
    def test_checked_run_is_dense_and_ledgered(self):
        app, result = run_app(cfg())
        assert result.file_stats.complete
        extents = app.fh.file.bytestore.extents()
        assert len(extents) == 1 and extents[0][0] == 0

        strategies = app.world.env.check.summary()["strategies"]
        assert len(strategies) == cfg().nqueries
        assert set(strategies.values()) <= set(CANDIDATES)

        snap = result.metrics
        assert snap.counter_total("adapt.choices") == float(cfg().nqueries)
        per_name = {
            name: snap.counter_total("adapt.choices", chosen=name)
            for name in CANDIDATES
        }
        assert sum(per_name.values()) == float(cfg().nqueries)

    def test_small_results_prefer_master_writes(self):
        app, result = run_app(
            cfg(result_model=ResultModel(min_count=1, max_count=3))
        )
        strategies = app.world.env.check.summary()["strategies"]
        assert set(strategies.values()) == {"mw"}

    def test_large_results_prefer_list_io(self):
        app, result = run_app(
            cfg(result_model=ResultModel(min_count=800, max_count=1200))
        )
        strategies = app.world.env.check.summary()["strategies"]
        assert set(strategies.values()) == {"ww-list"}

    def test_matches_static_output_bytes(self):
        """hybrid-auto writes the same file content as any static
        strategy on the same workload (the metamorphic relation, pinned
        here on one concrete case)."""
        app_h, _ = run_app(cfg())
        app_s, _ = run_app(cfg(strategy="ww-list"))
        img = lambda a: a.fh.file.bytestore.read(0, a.fh.file.bytestore.extents()[0][1])
        assert img(app_h) == img(app_s)


class TestServe:
    def test_serve_mode_stamps_every_admitted_query(self):
        app, result = run_app(
            cfg(arrival=ArrivalConfig(process="poisson", rate=50.0, max_pending=8))
        )
        assert result.serve_stats["completed"] >= 1
        strategies = app.world.env.check.summary()["strategies"]
        assert len(strategies) == int(result.serve_stats["completed"])
        assert set(strategies.values()) <= set(CANDIDATES)


class TestScenarios:
    def test_preload_scenario_prefetches_fragments(self):
        base = SimulationConfig(
            nprocs=4, nqueries=3, nfragments=6, collect_metrics=True
        )
        result = run_simulation(get_scenario("preload", base))
        assert result.file_stats.complete
        preloads = result.metrics.counter_total("app.fragments_preloaded")
        assert preloads >= float(base.nfragments)

    def test_checkpoint_restart_scenario_resumes(self):
        base = SimulationConfig(nprocs=4, nqueries=4, nfragments=6)
        result = run_simulation(get_scenario("checkpoint-restart", base))
        assert result.file_stats.complete
