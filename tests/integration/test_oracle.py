"""The independent output-file oracle vs simulated runs."""

import pytest

from repro.core import (
    S3aSim,
    SimulationConfig,
    build_reference_bytestore,
    reference_layout,
    verify_against_reference,
)


def cfg(**kwargs):
    defaults = dict(
        nprocs=4, strategy="ww-list", nqueries=3, nfragments=6,
        store_data=True,
    )
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


class TestReferenceLayout:
    def test_layout_tiles_densely(self):
        config = cfg()
        layout = reference_layout(
            config.build_workload(), config.nqueries, config.nfragments
        )
        cursor = 0
        for _, _, _, offset, size in layout:
            assert offset == cursor
            cursor += size
        total = config.build_workload().results.run_total_bytes()
        assert cursor == total

    def test_reference_store_matches_expected_volume(self):
        config = cfg()
        store = build_reference_bytestore(config)
        expected = config.build_workload().results.run_total_bytes()
        assert store.is_dense(expected)


class TestOracleAgreement:
    @pytest.mark.parametrize("strategy", ["mw", "ww-posix", "ww-list", "ww-coll"])
    def test_every_strategy_matches_the_oracle(self, strategy):
        config = cfg(strategy=strategy)
        app = S3aSim(config)
        result = app.run()
        assert result.file_stats.complete
        problems = verify_against_reference(config, app.fh.file.bytestore)
        assert problems == []

    def test_oracle_catches_corruption(self):
        config = cfg()
        app = S3aSim(config)
        app.run()
        store = app.fh.file.bytestore
        # Corrupt one byte in place.
        start, end = store.extents()[0]
        segment = store._segments[0]
        segment[2][10] ^= 0xFF
        problems = verify_against_reference(config, store)
        assert problems and "mismatch at byte 10" in problems[0]

    def test_oracle_catches_missing_extent(self):
        config = cfg()
        from repro.pvfs import ByteStore

        empty = ByteStore(store_data=True)
        problems = verify_against_reference(config, empty)
        assert problems and "extents differ" in problems[0]
