"""Query segmentation baseline (the intro's comparison point)."""

import pytest

from repro.core import (
    Phase,
    QuerySegS3aSim,
    S3aSim,
    SimulationConfig,
    run_query_segmentation,
    run_simulation,
)

MIB = 1024 * 1024


def cfg(**kwargs):
    defaults = dict(
        nprocs=4, nqueries=6, nfragments=8, db_total_bytes=128 * MIB,
    )
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


class TestCorrectness:
    def test_output_complete(self):
        result = run_query_segmentation(cfg())
        assert result.file_stats.complete
        assert result.strategy == "query-seg"

    def test_output_identical_to_database_segmentation(self):
        """Same deterministic search results, different parallelization —
        the bytes in the output file must match exactly."""
        config = cfg(store_data=True)
        dbseg = S3aSim(config)
        dbseg.run()
        qseg = QuerySegS3aSim(config, worker_memory_B=64 * MIB)
        result = qseg.run()
        assert result.file_stats.complete
        assert dbseg.fh.file.bytestore.content_equal(qseg.fh.file.bytestore)

    def test_invalid_memory(self):
        with pytest.raises(ValueError):
            QuerySegS3aSim(cfg(), worker_memory_B=0)

    def test_master_does_not_compute(self):
        result = run_query_segmentation(cfg())
        assert result.master[Phase.COMPUTE] == 0
        assert result.worker_mean[Phase.COMPUTE] > 0


class TestIntroClaims:
    def test_repeated_io_when_database_exceeds_memory(self):
        """"query segmentation suffers repeated I/O introduced by loading
        sequence data back and forth".

        A small result volume keeps output writes out of the I/O phase so
        the comparison isolates the database re-reads.
        """
        from repro.workload import ResultModel

        config = cfg(
            nprocs=3, nqueries=8, db_total_bytes=256 * MIB,
            result_model=ResultModel(min_count=40, max_count=80),
        )
        fits = run_query_segmentation(config, worker_memory_B=512 * MIB)
        thrash = run_query_segmentation(config, worker_memory_B=32 * MIB)
        assert (
            thrash.worker_mean[Phase.IO] > fits.worker_mean[Phase.IO] * 1.3
        )
        assert thrash.elapsed >= fits.elapsed

    def test_under_utilization_with_few_queries(self):
        """"searching a query against the whole database ... will result
        in resource under-utilization when the number of sequences is
        relatively small compared to the number of processors" — extra
        workers beyond nqueries buy nothing under query segmentation but
        keep helping under database segmentation."""
        base = dict(nqueries=3, nfragments=24, db_total_bytes=64 * MIB)
        q_small = run_query_segmentation(cfg(nprocs=4, **base))
        q_large = run_query_segmentation(cfg(nprocs=16, **base))
        d_small = run_simulation(cfg(nprocs=4, **base))
        d_large = run_simulation(cfg(nprocs=16, **base))
        qseg_gain = q_small.elapsed / q_large.elapsed
        dbseg_gain = d_small.elapsed / d_large.elapsed
        assert dbseg_gain > qseg_gain * 1.5

    def test_database_segmentation_wins_at_scale(self):
        """The paper's bottom line for why database segmentation is "the
        inevitable trend"."""
        config = cfg(nprocs=8, nqueries=8, db_total_bytes=512 * MIB)
        qseg = run_query_segmentation(config, worker_memory_B=64 * MIB)
        dbseg = run_simulation(config)
        assert dbseg.elapsed < qseg.elapsed
