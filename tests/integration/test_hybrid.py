"""Hybrid query/database segmentation (the paper's future-work strategy)."""

import pytest

from repro.core import HybridS3aSim, SimulationConfig, run_hybrid, run_simulation


def cfg(**kwargs):
    defaults = dict(
        nprocs=12, strategy="ww-list", nqueries=8, nfragments=16,
        store_data=True,
    )
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


class TestValidation:
    def test_partition_bounds(self):
        with pytest.raises(ValueError):
            HybridS3aSim(cfg(), 0)
        with pytest.raises(ValueError):
            HybridS3aSim(cfg(nprocs=4), 3)  # needs >= 2 procs/partition
        with pytest.raises(ValueError):
            HybridS3aSim(cfg(nqueries=2), 3)  # needs >= 1 query/partition

    def test_no_resume(self):
        with pytest.raises(ValueError):
            HybridS3aSim(cfg(resume_from_query=2), 2)


class TestPartitioning:
    def test_ranks_partition_the_machine(self):
        hybrid = HybridS3aSim(cfg(nprocs=13), 3)
        all_ranks = sorted(
            r for i in range(3) for r in hybrid.partition_ranks(i)
        )
        assert all_ranks == list(range(13))

    def test_queries_partition_the_query_set(self):
        hybrid = HybridS3aSim(cfg(nqueries=10), 3)
        all_queries = sorted(
            q for i in range(3) for q in hybrid.partition_queries(i)
        )
        assert all_queries == list(range(10))


class TestExecution:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_all_partitions_complete(self, k):
        result = run_hybrid(cfg(), k)
        assert result.complete
        assert len(result.partition_results) == k
        assert result.elapsed >= max(
            r.elapsed for r in result.partition_results
        ) - 1e-9

    def test_partition_outputs_match_pure_run_content(self):
        """Every partition's file content equals the corresponding query
        blocks of a pure database-segmentation run."""
        pure = run_simulation(cfg())  # noqa: F841  (builds reference sizes)
        from repro.core import S3aSim

        ref_app = S3aSim(cfg())
        ref_app.run()
        ref_store = ref_app.fh.file.bytestore
        sizes = [
            ref_app.workload.results.query_total_bytes(q) for q in range(8)
        ]

        hybrid = HybridS3aSim(cfg(), 2)
        result = hybrid.run()
        assert result.complete
        # Partition 0 holds queries 0..3; its file must equal the
        # concatenation of those blocks in the reference file.
        part0 = hybrid.fs.lookup(cfg().output_path + ".part0").bytestore
        nbytes = sum(sizes[:4])
        assert part0.read(0, nbytes) == ref_store.read(0, nbytes)
        # Partition 1 holds queries 4..7.
        part1 = hybrid.fs.lookup(cfg().output_path + ".part1").bytestore
        tail = sum(sizes[4:])
        assert part1.read(0, tail) == ref_store.read(nbytes, tail)

    def test_single_partition_equals_pure_database_segmentation(self):
        pure = run_simulation(cfg())
        hybrid = run_hybrid(cfg(), 1)
        assert hybrid.partition_results[0].elapsed == pytest.approx(
            pure.elapsed, rel=0.02
        )

    def test_mw_hybrid_runs(self):
        result = run_hybrid(cfg(strategy="mw"), 2)
        assert result.complete

    def test_collective_hybrid_runs(self):
        result = run_hybrid(cfg(strategy="ww-coll"), 2)
        assert result.complete
