"""CLI surface of the online service mode (serve / sweep arrival / stats)."""

import json

import pytest

from repro.cli import build_parser, main

SMALL = ["--nprocs", "4", "--nqueries", "4", "--nfragments", "4"]
ARRIVAL = ["--arrival", "poisson", "--arrival-rate", "10", "--max-pending", "8"]


class TestParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.preset == "poisson"
        assert args.arrival is None
        assert args.until is None
        assert args.max_pending == 64
        assert args.admission == "reject"

    def test_sweep_arrival_axis(self):
        args = build_parser().parse_args(["sweep", "arrival"])
        assert args.axis == "arrival"
        assert args.rates == "5,10,20,40"

    def test_bad_arrival_process_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--arrival", "sawtooth"])


class TestServe:
    def test_serve_smoke(self, capsys):
        code = main(["serve", *SMALL, "--check"])
        out = capsys.readouterr().out
        assert code == 0
        assert "arrivals: offered=4" in out
        assert "p99=" in out
        assert "invariants:" in out

    def test_serve_preset_and_json(self, tmp_path, capsys):
        path = tmp_path / "serve.json"
        code = main(
            ["serve", *SMALL, "--preset", "bursty", "--json", str(path)]
        )
        assert code == 0
        payload = json.loads(path.read_text())
        serve = payload["serve"]
        assert serve["offered"] == 4.0
        assert "latency_p99_s" in serve

    def test_serve_until_cutoff(self, capsys):
        code = main(
            ["serve", *SMALL, "--arrival-rate", "2", "--until", "3.0"]
        )
        out = capsys.readouterr().out
        assert code == 0  # a horizon cutoff is not a failure
        assert "pending=" in out

    def test_serve_bad_rate(self):
        with pytest.raises(SystemExit):
            main(["serve", *SMALL, "--arrival-rate", "-5"])

    def test_run_with_arrival_prints_serve_stats(self, capsys):
        code = main(["run", *SMALL, *ARRIVAL])
        out = capsys.readouterr().out
        assert code == 0
        assert "arrivals: offered=4" in out
        assert "latency:" in out

    def test_stats_with_arrival(self, capsys):
        code = main(["stats", *SMALL, *ARRIVAL])
        out = capsys.readouterr().out
        assert code == 0
        assert "arrivals: offered=4" in out
        assert "p50=" in out


class TestSweepArrival:
    def test_sweep_arrival_table(self, capsys):
        code = main(
            ["sweep", "arrival", *SMALL, "--rates", "5,20",
             "--strategy", "ww-list"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "rate qps" in out
        assert "p99 s" in out
        # One row per (strategy, rate): 4 strategies x 2 rates.
        rows = [
            line
            for line in out.splitlines()
            if line.split() and line.split()[0] in
            ("mw", "ww-posix", "ww-list", "ww-coll")
        ]
        assert len(rows) == 8


class TestGuards:
    def test_jobs_zero_rejected(self):
        with pytest.raises(SystemExit, match="--jobs must be >= 1"):
            main(["run", *SMALL, "--jobs", "0"])

    def test_jobs_negative_rejected(self):
        with pytest.raises(SystemExit, match="--jobs must be >= 1"):
            main(["stats", *SMALL, "--jobs", "-2"])

    def test_hybrid_rejects_arrival(self):
        with pytest.raises(SystemExit, match="hybrid"):
            main(["hybrid", *SMALL, *ARRIVAL])

    def test_serve_rejects_write_every(self):
        with pytest.raises(SystemExit, match="write_every"):
            main(["serve", *SMALL, "--write-every", "2"])
