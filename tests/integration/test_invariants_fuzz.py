"""Property-based whole-simulation fuzzing.

Hypothesis drives random (small) configurations through a complete run and
checks the invariants that must hold for *any* configuration:

* the output file is one dense extent of exactly the expected bytes;
* the file-system servers wrote exactly the file's bytes;
* phase times are non-negative and bounded by each rank's lifetime;
* the run is deterministic (same config -> same elapsed time).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import Phase, S3aSim, SimulationConfig
from repro.workload import ResultModel

configs = st.fixed_dictionaries(
    {
        "nprocs": st.integers(2, 7),
        "strategy": st.sampled_from(["mw", "ww-posix", "ww-list", "ww-coll"]),
        "query_sync": st.booleans(),
        "nqueries": st.integers(1, 4),
        "nfragments": st.integers(1, 6),
        "write_every": st.integers(1, 3),
        "seed": st.integers(0, 50),
    }
)


@given(params=configs)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_property_any_config_produces_a_complete_file(params):
    cfg = SimulationConfig(
        result_model=ResultModel(min_count=20, max_count=60),
        **params,
    )
    app = S3aSim(cfg)
    result = app.run()

    # 1. Output completeness.
    assert result.file_stats.complete, (params, result.file_stats)

    # 2. Conservation: servers wrote exactly the file's bytes.
    assert app.fs.total_bytes_written() == result.file_stats.total_bytes

    # 3. Phase sanity on every rank.
    for report in [result.master, *result.workers]:
        for phase in Phase:
            assert report[phase] >= 0
        assert sum(report.times.values()) == pytest.approx(report.total)
        assert report.total <= result.elapsed + 1e-9

    # 4. The master never computes or writes unless master-writing.
    assert result.master[Phase.COMPUTE] == 0
    if cfg.io_strategy().parallel_io:
        assert result.master[Phase.IO] == 0


@given(
    seed=st.integers(0, 20),
    strategy=st.sampled_from(["mw", "ww-list", "ww-coll"]),
)
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_property_runs_are_deterministic(seed, strategy):
    cfg = SimulationConfig(
        nprocs=4,
        strategy=strategy,
        nqueries=2,
        nfragments=4,
        seed=seed,
        result_model=ResultModel(min_count=20, max_count=60),
    )
    first = S3aSim(cfg).run()
    second = S3aSim(cfg).run()
    assert first.elapsed == second.elapsed
    assert first.worker_mean.as_dict() == second.worker_mean.as_dict()


# -- the cross-layer checker under fire (repro.check + faults) --------------

from repro.faults.plan import FaultPlan, MessageLoss, ServerOutage, WorkerCrash
from repro.trace import TraceRecorder

fault_cases = st.fixed_dictionaries(
    {
        "nprocs": st.integers(3, 6),
        "strategy": st.sampled_from(["mw", "ww-posix", "ww-list", "ww-coll"]),
        "nqueries": st.integers(1, 3),
        "nfragments": st.integers(1, 5),
        "seed": st.integers(0, 30),
        "crash_rank": st.integers(1, 2),
        "crash_time": st.floats(0.5, 6.0, allow_nan=False),
        "outage_start": st.floats(0.5, 6.0, allow_nan=False),
        "drop_prob": st.floats(0.0, 0.15, allow_nan=False),
    }
)


@given(params=fault_cases)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_property_checker_holds_under_faults(params):
    """Crashes, outages, and message loss must not break any audited law.

    The checker runs with a trace recorder attached so the trace
    well-formedness laws are exercised too (crash-truncated intervals,
    injector plan-window rows).
    """
    plan = FaultPlan(
        worker_crashes=(
            WorkerCrash(
                rank=params["crash_rank"],
                at_time=params["crash_time"],
                downtime_s=1.5,
            ),
        ),
        server_outages=(
            ServerOutage(server_id=0, start=params["outage_start"], duration=1.0),
        ),
        message_loss=(
            (MessageLoss(drop_prob=params["drop_prob"], start=0.0, end=8.0),)
            if params["drop_prob"] > 0
            else ()
        ),
    )
    cfg = SimulationConfig(
        nprocs=params["nprocs"],
        strategy=params["strategy"],
        nqueries=params["nqueries"],
        nfragments=params["nfragments"],
        seed=params["seed"],
        check=True,
        fault_plan=plan,
        result_model=ResultModel(min_count=20, max_count=60),
    )
    app = S3aSim(cfg, recorder=TraceRecorder())
    result = app.run()  # any InvariantViolation fails the example

    assert result.file_stats.complete, (params, result.file_stats)
    checker = app.world.env.check
    assert checker.checks > 0
    summary = checker.summary()
    # The monotone wire law holds even when strict equality is waived.
    assert (
        summary["rx_bytes"] + summary["dropped_bytes"] <= summary["tx_bytes"]
    )
