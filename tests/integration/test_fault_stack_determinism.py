"""Determinism goldens for faults landing on the full server-side stack.

Two canned scenarios that exercise the riskiest interactions this layer
has grown — an outage hitting a server with a dirty write-back cache
(volatile loss + replica failover + background rebuild) and a slowdown
under the elevator scheduler (degraded service with reordered grants) —
pinned to exact completion times for all four strategies.

The goldens serve two purposes: any *unintentional* event-path change
shows up as a bit-level diff here before it reaches the paper figures,
and the run-twice tests prove the fault machinery itself introduces no
hidden state (module globals, dict-order dependence) between runs.  All
runs carry ``check=True`` so every cross-layer invariant is live.
"""

import pytest

from repro.core import S3aSim, SimulationConfig
from repro.faults import FaultPlan, ServerOutage, ServerSlowdown
from repro.pvfs import PVFSConfig

MIB = 1024 * 1024
SMALL = dict(nprocs=4, nqueries=3, nfragments=6)
STRATEGIES = ("mw", "ww-posix", "ww-list", "ww-coll")

#: Outage of server 0 during t=[8, 11): mid-io-phase for this workload,
#: so the 4 MiB write-back cache is dirty when the daemon drops.
OUTAGE_MID_FLUSH = FaultPlan(
    server_outages=(ServerOutage(server_id=0, start=8.0, duration=3.0),)
)

#: Server 1 serves 4x slower during t=[6, 12) with the elevator active.
SLOWDOWN_ELEVATOR = FaultPlan(
    server_slowdowns=(
        ServerSlowdown(server_id=1, start=6.0, duration=6.0, factor=4.0),
    )
)

GOLDEN_OUTAGE_MID_FLUSH = {
    "mw": 25.433174060448717,
    "ww-posix": 21.602049995008596,
    "ww-list": 21.394507533325722,
    "ww-coll": 21.819089646821208,
}

GOLDEN_SLOWDOWN_ELEVATOR = {
    "mw": 25.421562385477948,
    "ww-posix": 25.228198654828642,
    "ww-list": 21.406985657038742,
    "ww-coll": 21.883711505501353,
}


def _outage_config(strategy):
    return SimulationConfig(
        strategy=strategy,
        store_data=True,
        check=True,
        fault_plan=OUTAGE_MID_FLUSH,
        pvfs=PVFSConfig(server_cache_B=4 * MIB, replicas=2),
        **SMALL,
    )


def _slowdown_config(strategy):
    return SimulationConfig(
        strategy=strategy,
        store_data=True,
        check=True,
        fault_plan=SLOWDOWN_ELEVATOR,
        pvfs=PVFSConfig(disk_sched="elevator"),
        **SMALL,
    )


class TestOutageMidFlush:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_matches_golden(self, strategy):
        result = S3aSim(_outage_config(strategy)).run()
        assert result.elapsed == GOLDEN_OUTAGE_MID_FLUSH[strategy]
        assert result.file_stats.complete

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_run_twice_is_bit_identical(self, strategy):
        first = S3aSim(_outage_config(strategy)).run()
        second = S3aSim(_outage_config(strategy)).run()
        assert first.elapsed == second.elapsed
        assert first.fault_stats == second.fault_stats

    def test_cache_loss_and_rebuild_observed(self):
        # The scenario is only a regression gate if it actually exercises
        # the volatile-loss + rebuild path.
        app = S3aSim(_outage_config("ww-posix"))
        result = app.run()
        assert result.fault_stats["cache_lost_bytes"] > 0
        assert result.fault_stats["rebuild_bytes"] > 0
        assert app.world.env.check.summary()["replica_outstanding_bytes"] == 0


class TestSlowdownUnderElevator:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_matches_golden(self, strategy):
        result = S3aSim(_slowdown_config(strategy)).run()
        assert result.elapsed == GOLDEN_SLOWDOWN_ELEVATOR[strategy]
        assert result.file_stats.complete

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_run_twice_is_bit_identical(self, strategy):
        first = S3aSim(_slowdown_config(strategy)).run()
        second = S3aSim(_slowdown_config(strategy)).run()
        assert first.elapsed == second.elapsed
        assert first.fault_stats == second.fault_stats
