"""Resuming a failed run at a write-group boundary.

The paper motivates frequent result writes with exactly this capability:
"More frequently writing out the results also allows users to resume a
failed application run at the appropriate input query."
"""

import pytest

from repro.core import S3aSim, SimulationConfig, run_simulation


def cfg(**kwargs):
    defaults = dict(
        nprocs=4, strategy="ww-list", nqueries=6, nfragments=8,
        store_data=True,
    )
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


class TestValidation:
    def test_resume_must_be_in_range(self):
        with pytest.raises(ValueError):
            cfg(resume_from_query=6)
        with pytest.raises(ValueError):
            cfg(resume_from_query=-1)

    def test_resume_must_align_with_write_groups(self):
        with pytest.raises(ValueError):
            cfg(resume_from_query=3, write_every=2)
        cfg(resume_from_query=4, write_every=2)  # aligned: fine

    def test_resume_group_property(self):
        assert cfg(resume_from_query=4, write_every=2).resume_group == 2
        assert cfg().resume_group == 0


class TestResumedRuns:
    @pytest.mark.parametrize("strategy", ["mw", "ww-posix", "ww-list", "ww-coll"])
    def test_resumed_run_writes_exactly_the_remainder(self, strategy):
        full = S3aSim(cfg(strategy=strategy))
        full.run()
        full_store = full.fh.file.bytestore

        resumed = S3aSim(cfg(strategy=strategy, resume_from_query=3))
        result = resumed.run()
        assert result.file_stats.complete
        store = resumed.fh.file.bytestore

        # The resumed run's bytes are exactly the tail of the full run.
        (start, end) = store.extents()[0]
        assert store.read(start, end - start) == full_store.read(
            start, end - start
        )
        assert start == sum(
            full.workload.results.query_total_bytes(q) for q in range(3)
        )

    def test_resumed_run_is_faster(self):
        full = run_simulation(cfg())
        resumed = run_simulation(cfg(resume_from_query=4))
        assert resumed.elapsed < full.elapsed

    def test_resume_with_query_sync(self):
        result = run_simulation(cfg(resume_from_query=2, query_sync=True))
        assert result.file_stats.complete

    def test_resume_with_write_groups(self):
        result = run_simulation(
            cfg(resume_from_query=4, write_every=2, strategy="ww-coll")
        )
        assert result.file_stats.complete
