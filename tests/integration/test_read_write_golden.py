"""Differential read/write golden battery.

Every write strategy stores a file; every read strategy must hand those
exact bytes back.  The grid crosses the 4 write strategies with
replication (1 and 2 copies) and the server write-back cache (off and
4 MiB), all under the cross-layer invariant checker — 16 written files,
each read back 5 ways (POSIX, list, sieving, contiguous, collective).
"""

from dataclasses import replace

import pytest

from repro.core.app import S3aSim
from repro.core.config import SimulationConfig
from repro.core.strategies import STRATEGIES
from repro.mpiio.hints import IND_LIST, IND_POSIX, IND_SIEVE
from repro.pvfs.filesystem import PVFSConfig
from repro.workload.results import ResultModel

MIB = 1024 * 1024


def golden_config(strategy, replicas, cache_B):
    return SimulationConfig(
        nprocs=4,
        strategy=strategy,
        nqueries=2,
        nfragments=4,
        seed=1234,
        write_every=1,
        store_data=True,
        check=True,
        result_model=ResultModel(min_count=20, max_count=60),
        pvfs=replace(
            PVFSConfig.feynman(),
            nservers=3,
            replicas=replicas,
            server_cache_B=cache_B,
        ),
    )


def written_image(app):
    bytestore = app.fh.file.bytestore
    extents = bytestore.extents()
    assert len(extents) == 1, extents
    start, end = extents[0]
    return start, end, bytestore.read(start, end - start)


def read_back_all_ways(app, start, end):
    """Drive every read path over the written extent on the run's own
    environment; returns {reader name: bytes}."""
    env = app.world.env
    chunk = 4099  # prime: misaligned against strips and regions
    regions = [(off, min(chunk, end - off)) for off in range(start, end, chunk)]
    out = {}

    def read_list(method):
        datas = yield from app.fh.read_at_list(0, regions, method=method)
        return b"".join(datas)

    for method in (IND_POSIX, IND_LIST, IND_SIEVE):
        out[method] = env.run(env.process(read_list(method)))

    def read_contig():
        data = yield from app.fh.read_at(0, start, end - start)
        return data

    out["contig"] = env.run(env.process(read_contig()))

    comm2 = app.world.comm.sub([1, 2])
    mid = len(regions) // 2
    parts = {}

    def read_coll(rank, mine):
        datas = yield from app.fh.read_at_all(comm2.view(rank), mine)
        parts[rank] = b"".join(datas)

    p0 = env.process(read_coll(0, regions[:mid]))
    p1 = env.process(read_coll(1, regions[mid:]))
    env.run(env.all_of([p0, p1]))
    out["collective"] = parts[0] + parts[1]
    return out


@pytest.mark.parametrize("cache_B", [0, 4 * MIB], ids=["nocache", "cache4M"])
@pytest.mark.parametrize("replicas", [1, 2])
@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
def test_every_reader_returns_written_bytes(strategy, replicas, cache_B):
    app = S3aSim(golden_config(strategy, replicas, cache_B))
    app.run()
    start, end, expected = written_image(app)
    assert expected  # the workload writes something
    for reader, got in read_back_all_ways(app, start, end).items():
        assert got == expected, (
            f"{reader} read diverged from the stored bytes "
            f"({strategy}, replicas={replicas}, cache={cache_B})"
        )


def test_golden_grid_writes_identical_content():
    """The 16 cells differ in timing only: same bytes in every file."""
    images = set()
    for strategy in sorted(STRATEGIES):
        for replicas in (1, 2):
            for cache_B in (0, 4 * MIB):
                app = S3aSim(golden_config(strategy, replicas, cache_B))
                app.run()
                images.add(written_image(app))
    assert len(images) == 1
