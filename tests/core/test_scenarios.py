"""Named historical scenarios (mpiBLAST 1.2/1.4, pioBLAST, proposed)."""

import pytest

from repro.core import SCENARIOS, SimulationConfig, get_scenario, run_simulation


class TestScenarioDefinitions:
    def test_registry(self):
        assert set(SCENARIOS) == {
            "mpiblast-1.2",
            "mpiblast-1.4",
            "pioblast",
            "proposed",
            "proposed-posix",
            "preload",
            "checkpoint-restart",
        }

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            get_scenario("blastzilla")

    def test_mpiblast_12_writes_at_end(self):
        cfg = get_scenario("mpiblast-1.2")
        assert cfg.strategy == "mw"
        assert cfg.write_every == cfg.nqueries
        assert cfg.ngroups == 1

    def test_mpiblast_14_writes_per_query(self):
        cfg = get_scenario("mpiblast-1.4")
        assert cfg.strategy == "mw"
        assert cfg.write_every == 1

    def test_pioblast_collective_at_end(self):
        cfg = get_scenario("pioblast")
        assert cfg.strategy == "ww-coll"
        assert cfg.write_every == cfg.nqueries

    def test_proposed_variants(self):
        assert get_scenario("proposed").strategy == "ww-list"
        assert get_scenario("proposed-posix").strategy == "ww-posix"

    def test_preload_is_read_dominated_adaptive(self):
        cfg = get_scenario("preload")
        assert cfg.strategy == "hybrid-auto"
        assert cfg.preload_fragments
        assert cfg.pvfs.readahead_B > 0
        assert cfg.adaptive

    def test_checkpoint_restart_resumes_verified(self):
        base = SimulationConfig(nqueries=8)
        cfg = get_scenario("checkpoint-restart", base)
        assert cfg.resume_from_query == 4
        assert cfg.verify_resume
        assert cfg.pvfs.replicas == 2
        assert cfg.fault_plan.server_kills

    def test_checkpoint_restart_needs_two_queries(self):
        with pytest.raises(ValueError):
            get_scenario("checkpoint-restart", SimulationConfig(nqueries=1))

    def test_base_config_preserved(self):
        base = SimulationConfig(nprocs=7, nqueries=5, seed=99)
        cfg = get_scenario("pioblast", base)
        assert cfg.nprocs == 7
        assert cfg.seed == 99
        assert cfg.write_every == 5


class TestScenarioRuns:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_every_scenario_runs(self, name):
        base = SimulationConfig(nprocs=4, nqueries=3, nfragments=6)
        result = run_simulation(get_scenario(name, base))
        assert result.file_stats.complete

    def test_paper_narrative_mpiblast_14_resumable_but_slower_at_scale(self):
        """mpiBLAST 1.4's per-query writes trade time for resumability
        against 1.2's write-at-end — and the proposed strategy beats both."""
        base = SimulationConfig(nprocs=10, nqueries=6, nfragments=24)
        t12 = run_simulation(get_scenario("mpiblast-1.2", base)).elapsed
        t14 = run_simulation(get_scenario("mpiblast-1.4", base)).elapsed
        proposed = run_simulation(get_scenario("proposed", base)).elapsed
        assert proposed < min(t12, t14)
