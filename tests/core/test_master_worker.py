"""Targeted behavioural tests of the master/worker algorithms."""

import pytest

from repro.core import Phase, S3aSim, SimulationConfig
from repro.sim import SimulationError


def small(strategy="ww-list", **kwargs):
    defaults = dict(nprocs=4, strategy=strategy, nqueries=4, nfragments=8)
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


class TestMasterBehaviour:
    def test_all_tasks_assigned_exactly_once(self):
        app = S3aSim(small())
        master_holder = {}

        # Wrap run() to capture the Master object.
        from repro.core.master import Master

        original_init = Master.__init__

        def spy_init(self, *args, **kwargs):
            original_init(self, *args, **kwargs)
            master_holder["master"] = self

        Master.__init__ = spy_init
        try:
            app.run()
        finally:
            Master.__init__ = original_init

        master = master_holder["master"]
        assert master.next_task == len(master.tasks) == 4 * 8
        owners = master.task_owner
        assert len(owners) == 32
        assert set(owners.values()) <= {1, 2, 3}

    def test_groups_dispatched_in_order(self):
        """The offset ledger enforces query-order block assignment; a run
        completing proves no group was dispatched early."""
        app = S3aSim(small(write_every=2))
        result = app.run()
        assert result.file_stats.complete

    def test_mw_master_accrues_io_time(self):
        app = S3aSim(small("mw"))
        result = app.run()
        assert result.master[Phase.IO] > 0
        assert all(w[Phase.IO] == 0 for w in result.workers)

    def test_ww_master_does_no_io(self):
        app = S3aSim(small("ww-list"))
        result = app.run()
        assert result.master[Phase.IO] == 0


class TestCollectiveGating:
    def test_gated_master_defers_next_group(self):
        """Under WW-Coll the master must not hand out group g+1 tasks
        before group g's offsets are dispatched — visible as workers
        spending time waiting (data distribution) even though tasks
        remain."""
        coll = S3aSim(small("ww-coll", nprocs=6)).run()
        individual = S3aSim(small("ww-list", nprocs=6)).run()
        assert (
            coll.worker_mean[Phase.DATA_DISTRIBUTION]
            > individual.worker_mean[Phase.DATA_DISTRIBUTION]
        )

    def test_collective_joined_by_all_workers_every_group(self):
        """Each group produces exactly one collective write; all complete
        (a worker missing one would deadlock the run)."""
        cfg = small("ww-coll", nqueries=6, write_every=2)
        result = S3aSim(cfg).run()
        assert result.file_stats.complete


class TestWorkerBehaviour:
    def test_workers_overlap_io_with_compute_individual(self):
        """Individual WW: a worker that wrote data also computed after its
        first write (overlap) — total elapsed is less than the sum of a
        serialized schedule."""
        result = S3aSim(small("ww-list", nprocs=3)).run()
        worker = result.worker_mean
        # Phases sum to at most the elapsed time (with slack for OTHER).
        assert worker.total <= result.elapsed + 1e-9

    def test_worker_crash_propagates(self):
        """A worker dying mid-run surfaces as an exception, not a hang."""
        app = S3aSim(small())

        from repro.core.worker import Worker

        original = Worker._do_task
        calls = {"n": 0}

        def sabotaged(self, task):
            calls["n"] += 1
            if calls["n"] == 5:
                raise RuntimeError("injected worker failure")
            return original(self, task)

        Worker._do_task = sabotaged
        try:
            with pytest.raises(RuntimeError, match="injected worker failure"):
                app.run()
        finally:
            Worker._do_task = original

    def test_query_sync_barrier_counts(self):
        """With query sync on, every worker syncs once per write group
        plus the final barrier."""
        cfg = small("ww-list", nprocs=4, nqueries=4, write_every=1,
                    query_sync=True)
        app = S3aSim(cfg)
        result = app.run()
        assert result.file_stats.complete
        # Sync phase present on workers (4 group barriers + final barrier).
        assert result.worker_mean[Phase.SYNC] > 0


class TestOffsetTrafficPolicy:
    def test_individual_no_sync_messages_only_to_contributors(self):
        """A worker with no results for a group gets no offset message —
        run a 2-worker job where worker task counts differ and confirm
        completion (over-sending would also complete, so check message
        counts via the master)."""
        from repro.core.master import Master

        sent = []
        original = Master._send_offsets

        def spy(self, group):
            before = len(self.pending_sends)
            result = yield from original(self, group)
            sent.append(len(self.pending_sends) - before)
            return result

        Master._send_offsets = spy
        try:
            cfg = small("ww-list", nprocs=4, nqueries=2, nfragments=2)
            S3aSim(cfg).run()
        finally:
            Master._send_offsets = original
        # 2 fragments per query: at most 2 contributing workers of the 3.
        assert all(n <= 2 for n in sent)

    def test_collective_messages_broadcast_to_all_workers(self):
        from repro.core.master import Master

        sent = []
        original = Master._send_offsets

        def spy(self, group):
            before = len(self.pending_sends)
            result = yield from original(self, group)
            sent.append(len(self.pending_sends) - before)
            return result

        Master._send_offsets = spy
        try:
            cfg = small("ww-coll", nprocs=4, nqueries=2, nfragments=2)
            S3aSim(cfg).run()
        finally:
            Master._send_offsets = original
        assert all(n == 3 for n in sent)  # every worker, every group


def _bare_world(cfg):
    """A real env/communicator but no running ranks — handler-level tests."""
    from repro.mpi import Communicator
    from repro.mpi.network import Network, NetworkConfig
    from repro.sim import Environment

    env = Environment()
    network = Network(env, cfg.nprocs, NetworkConfig())
    return env, Communicator(env, network)


def _drive(env, frag):
    """Run one process fragment to completion inside the bare world."""
    out = {}

    def runner(env):
        yield from frag
        out["done"] = True

    env.process(runner(env))
    env.run()
    assert out.get("done"), "handler fragment did not finish"


def _score_message(query_id, fragment_id, worker, count=4):
    import numpy as np

    from repro.core.protocol import ScoreMessage

    return ScoreMessage(
        query_id=query_id,
        fragment_id=fragment_id,
        worker=worker,
        scores=np.arange(count, dtype=np.float64),
        sizes=np.full(count, 128, dtype=np.int64),
    )


class TestProtocolEdgeCases:
    """Handler-level tests of the master/worker message protocol."""

    def _master(self, cfg):
        from repro.core.master import Master

        env, comm = _bare_world(cfg)
        return env, Master(comm.view(0), cfg, fh=None)

    def test_request_after_exhaustion_releases_idempotently(self):
        env, master = self._master(small())
        master.next_task = len(master.tasks)
        _drive(env, master._handle_request(1))
        assert master.done_set == {1}
        # The same worker asking again is released again, not double-counted.
        _drive(env, master._handle_request(1))
        assert master.done_set == {1}
        assert master.done_workers == 1

    def test_duplicate_score_message_dropped(self):
        env, master = self._master(small())
        _drive(env, master._handle_scores(_score_message(0, 0, worker=1)))
        assert len(master.received[0]) == 1
        first = master.received[0][0]
        _drive(env, master._handle_scores(_score_message(0, 0, worker=2)))
        assert master.received[0][0] is first
        assert master.fault_counters["duplicate_scores_dropped"] == 1

    def test_duplicate_from_owner_keeps_its_batch(self):
        """Regression: a worker that computes the same task twice (requeue
        raced its reborn mailbox) must NOT be told to discard — its single
        stored copy is the one the group dispatch will write."""
        from repro.faults import FaultToleranceConfig

        cfg = small(fault_tolerance=FaultToleranceConfig())
        env, master = self._master(cfg)
        _drive(env, master._handle_scores(_score_message(0, 0, worker=1)))
        assert master.task_owner[(0, 0)] == 1
        sends_before = len(master.pending_sends)
        _drive(env, master._handle_scores(_score_message(0, 0, worker=1)))
        assert "discards_issued" not in master.fault_counters
        assert len(master.pending_sends) == sends_before
        # A duplicate from a *different* worker is stranded: discard it.
        _drive(env, master._handle_scores(_score_message(0, 0, worker=2)))
        assert master.fault_counters["discards_issued"] == 1
        assert len(master.pending_sends) == sends_before + 1

    def test_out_of_order_written_notice_keeps_sync_monotonic(self):
        from repro.core.protocol import WrittenNotice
        from repro.core.worker import Worker

        cfg = small("mw", query_sync=True)
        env, comm = _bare_world(cfg)
        wcomm = comm.sub([1])
        worker = Worker(
            comm.view(1), wcomm.view(0), cfg, workload=None, fh=None
        )
        _drive(env, worker._handle_notice(WrittenNotice(group=2)))
        assert worker.groups_synced == 3
        # A notice for an earlier group arriving late never rewinds.
        _drive(env, worker._handle_notice(WrittenNotice(group=0)))
        assert worker.groups_synced == 3
