"""Wire-protocol message types and their simulated sizes."""

import numpy as np
import pytest

from repro.core import (
    OffsetEntry,
    OffsetMessage,
    ScoreMessage,
    TaskAssignment,
    WrittenNotice,
)
from repro.core.protocol import (
    ASSIGN_BYTES,
    NOTICE_BYTES,
    REQUEST_BYTES,
    TAG_ASSIGN,
    TAG_OFFSETS,
    TAG_REQUEST,
    TAG_SCORES,
    TAG_WRITTEN,
)


class TestTags:
    def test_tags_distinct_and_valid(self):
        tags = {TAG_REQUEST, TAG_ASSIGN, TAG_SCORES, TAG_OFFSETS, TAG_WRITTEN}
        assert len(tags) == 5
        assert all(t >= 0 for t in tags)  # user tag space

    def test_control_sizes_positive(self):
        assert REQUEST_BYTES > 0 and ASSIGN_BYTES > 0 and NOTICE_BYTES > 0


class TestScoreMessage:
    def make(self, count=10, payload_bytes=0):
        return ScoreMessage(
            query_id=1,
            fragment_id=2,
            worker=3,
            scores=np.linspace(1, 0, count),
            sizes=np.full(count, 100, dtype=np.int64),
            payload_bytes=payload_bytes,
        )

    def test_wire_bytes_scale_with_count(self):
        small = self.make(count=10)
        large = self.make(count=100)
        assert large.wire_bytes() - small.wire_bytes() == 90 * 16

    def test_wire_bytes_include_payload(self):
        """Under master-writing the result bytes ride along — that is the
        volume asymmetry between MW and the WW strategies."""
        bare = self.make(payload_bytes=0)
        loaded = self.make(payload_bytes=50_000)
        assert loaded.wire_bytes() == bare.wire_bytes() + 50_000

    def test_count(self):
        assert self.make(count=7).count == 7


class TestOffsetMessage:
    def test_wire_bytes(self):
        entries = (
            OffsetEntry(0, 1, np.arange(10, dtype=np.int64)),
            OffsetEntry(0, 2, np.arange(5, dtype=np.int64)),
        )
        message = OffsetMessage(group=0, entries=entries)
        assert message.count == 15
        # 32-byte header + per-entry 16 + 8 per offset ("a list of 64-bit
        # offsets sent to each worker").
        assert message.wire_bytes() == 32 + (16 + 80) + (16 + 40)

    def test_empty_message_still_has_header(self):
        message = OffsetMessage(group=3, entries=())
        assert message.count == 0
        assert message.wire_bytes() == 32


class TestSimpleMessages:
    def test_task_assignment_fields(self):
        task = TaskAssignment(query_id=4, fragment_id=9)
        assert (task.query_id, task.fragment_id) == (4, 9)

    def test_written_notice(self):
        assert WrittenNotice(group=2).group == 2
