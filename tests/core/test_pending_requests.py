"""The pending-request queue must never be linearly scanned.

``Master.pending_requests`` is a FIFO deque; membership ("is this worker
already parked?") is answered by the ``_pending_set`` mirror.  A deque
``in`` test or ``remove`` is an O(n) scan — quadratic across a run — so
the regression guard here swaps the deque class for a counting subclass
and asserts the hot path performs zero scans.  (``remove`` is still
legitimate on the fault-recovery path, which these fault-free runs never
take.)
"""

from collections import deque

import pytest

import repro.core.master as master_module
from repro.core import S3aSim, SimulationConfig
from repro.core.master import Master
from repro.serve import ArrivalConfig


class CountingDeque(deque):
    contains_calls = 0
    remove_calls = 0

    def __contains__(self, item):
        CountingDeque.contains_calls += 1
        return super().__contains__(item)

    def remove(self, item):
        CountingDeque.remove_calls += 1
        return super().remove(item)


@pytest.fixture
def counting_deque(monkeypatch):
    CountingDeque.contains_calls = 0
    CountingDeque.remove_calls = 0
    monkeypatch.setattr(master_module, "deque", CountingDeque)
    return CountingDeque


@pytest.mark.parametrize("strategy", ["mw", "ww-list"])
def test_batch_run_never_scans_the_deque(counting_deque, strategy):
    cfg = SimulationConfig(
        strategy=strategy, nprocs=6, nqueries=4, nfragments=8, check=True
    )
    result = S3aSim(cfg).run()
    assert result.file_stats.complete
    assert counting_deque.contains_calls == 0
    assert counting_deque.remove_calls == 0


def test_serve_run_never_scans_the_deque(counting_deque):
    # Serve mode parks and re-parks workers across arrival lulls — the
    # membership test fires constantly and must hit the set, not the deque.
    cfg = SimulationConfig(
        strategy="ww-posix", nprocs=4, nqueries=8, nfragments=4, check=True,
        arrival=ArrivalConfig(process="poisson", rate=3.0, max_pending=4),
    )
    result = S3aSim(cfg).run()
    assert result.serve_stats["completed"] > 0
    assert counting_deque.contains_calls == 0
    assert counting_deque.remove_calls == 0


def test_park_and_pop_keep_set_in_sync():
    cfg = SimulationConfig(
        strategy="ww-list", nprocs=4, nqueries=3, nfragments=6
    )
    app = S3aSim(cfg)
    master = Master(app.world.comm.view(0), cfg, app.fh)
    master._park(1)
    master._park(2)
    assert list(master.pending_requests) == [1, 2]
    assert master._pending_set == {1, 2}
    assert master._pop_parked() == 1  # FIFO order comes from the deque
    assert master._pending_set == {2}
    assert master._pop_parked() == 2
    assert master._pending_set == set()
    assert not master.pending_requests
