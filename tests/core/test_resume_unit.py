"""Master-side resume validation (unit level)."""

import pytest

from repro.core import SimulationConfig
from repro.core.master import Master
from repro.mpi import MpiWorld


def make_master(cfg, resume_block_sizes=None):
    world = MpiWorld(nranks=cfg.nprocs)
    from repro.mpiio import MPIIOFile, MPIIOHints
    from repro.pvfs import FileSystem, PVFSFile

    fs = FileSystem(world.env, cfg.effective_pvfs())
    file = PVFSFile(cfg.output_path, fs.layout, False)
    fs.files[cfg.output_path] = file
    fh = MPIIOFile(fs, file, MPIIOHints())
    return Master(
        world.comm.view(0), cfg, fh, resume_block_sizes=resume_block_sizes
    )


class TestResumeValidation:
    def test_missing_block_sizes_rejected(self):
        cfg = SimulationConfig(nprocs=3, nqueries=4, nfragments=2,
                               resume_from_query=2)
        with pytest.raises(ValueError, match="prior block size"):
            make_master(cfg, resume_block_sizes=None)
        with pytest.raises(ValueError, match="prior block size"):
            make_master(cfg, resume_block_sizes=[10])  # needs 2

    def test_ledger_preseeded(self):
        cfg = SimulationConfig(nprocs=3, nqueries=4, nfragments=2,
                               resume_from_query=2)
        master = make_master(cfg, resume_block_sizes=[100, 50])
        assert master.ledger.next_query == 2
        assert master.ledger.assigned_bytes == 150
        assert master.groups_dispatched == 2

    def test_task_queue_skips_resumed_queries(self):
        cfg = SimulationConfig(nprocs=3, nqueries=4, nfragments=2,
                               resume_from_query=2)
        master = make_master(cfg, resume_block_sizes=[100, 50])
        queries = {t.query_id for t in master.tasks}
        assert queries == {2, 3}
        assert len(master.tasks) == 4

    def test_fresh_run_needs_no_sizes(self):
        cfg = SimulationConfig(nprocs=3, nqueries=4, nfragments=2)
        master = make_master(cfg)
        assert master.ledger.next_query == 0
        assert len(master.tasks) == 8
