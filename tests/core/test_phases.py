"""Phase timers and reports."""

import pytest

from repro.core import Phase, PhaseReport, PhaseTimer
from repro.sim import Environment
from repro.trace import TraceRecorder


@pytest.fixture
def env():
    return Environment()


class TestPhaseTimer:
    def test_sleep_accrues(self, env):
        timer = PhaseTimer(env)

        def proc():
            yield from timer.sleep(Phase.COMPUTE, 2.5)
            yield from timer.sleep(Phase.IO, 1.0)
            yield from timer.sleep(Phase.COMPUTE, 0.5)

        env.run(env.process(proc()))
        assert timer.times[Phase.COMPUTE] == pytest.approx(3.0)
        assert timer.times[Phase.IO] == pytest.approx(1.0)

    def test_measure_wraps_fragment(self, env):
        timer = PhaseTimer(env)

        def inner():
            yield env.timeout(1.5)
            return "inner-result"

        def proc():
            result = yield from timer.measure(Phase.GATHER, inner())
            return result

        assert env.run(env.process(proc())) == "inner-result"
        assert timer.times[Phase.GATHER] == pytest.approx(1.5)

    def test_wait_on_event(self, env):
        timer = PhaseTimer(env)

        def proc():
            value = yield from timer.wait(Phase.SYNC, env.timeout(2.0, value="v"))
            return value

        assert env.run(env.process(proc())) == "v"
        assert timer.times[Phase.SYNC] == pytest.approx(2.0)

    def test_add_span(self, env):
        timer = PhaseTimer(env)

        def proc():
            start = env.now
            yield env.timeout(0.7)
            timer.add_span(Phase.DATA_DISTRIBUTION, start)

        env.run(env.process(proc()))
        assert timer.times[Phase.DATA_DISTRIBUTION] == pytest.approx(0.7)

    def test_invalid_adds(self, env):
        timer = PhaseTimer(env)
        with pytest.raises(ValueError):
            timer.add(Phase.COMPUTE, -1)
        with pytest.raises(ValueError):
            timer.add(Phase.OTHER, 1)

    def test_recorder_integration(self, env):
        recorder = TraceRecorder()
        timer = PhaseTimer(env, rank=3, recorder=recorder)

        def proc():
            yield from timer.sleep(Phase.COMPUTE, 1.0)
            yield from timer.sleep(Phase.IO, 0.5)

        env.run(env.process(proc()))
        assert len(recorder) == 2
        assert recorder.total_time(3, "compute") == pytest.approx(1.0)


class TestPhaseReport:
    def test_other_is_remainder(self, env):
        timer = PhaseTimer(env)

        def proc():
            yield from timer.sleep(Phase.COMPUTE, 3.0)
            yield env.timeout(2.0)  # unattributed
            timer.finish()

        env.run(env.process(proc()))
        report = timer.report()
        assert report[Phase.COMPUTE] == pytest.approx(3.0)
        assert report[Phase.OTHER] == pytest.approx(2.0)
        assert report.total == pytest.approx(5.0)

    def test_mean_of_reports(self):
        r1 = PhaseReport.from_times({Phase.COMPUTE: 2.0}, total=4.0)
        r2 = PhaseReport.from_times({Phase.COMPUTE: 4.0}, total=6.0)
        mean = PhaseReport.mean([r1, r2])
        assert mean[Phase.COMPUTE] == pytest.approx(3.0)
        assert mean.total == pytest.approx(5.0)

    def test_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            PhaseReport.mean([])

    def test_as_dict_covers_all_phases(self):
        report = PhaseReport.from_times({Phase.IO: 1.0}, total=1.0)
        d = report.as_dict()
        assert set(d) == {p.value for p in Phase}

    def test_measured_excludes_other(self):
        assert Phase.OTHER not in Phase.measured()
        assert len(Phase.measured()) == 7
