"""SimulationConfig: validation, derived quantities, strategy lookup."""

import pytest

from repro.core import SimulationConfig, get_strategy
from repro.core.strategies import (
    LABELS,
    MASTER_WRITING,
    STRATEGIES,
    WORKER_COLLECTIVE,
    WORKER_LIST,
    WORKER_POSIX,
)
from repro.mpiio import IND_LIST, IND_POSIX


class TestStrategies:
    def test_registry_complete(self):
        assert set(STRATEGIES) == {"mw", "ww-posix", "ww-list", "ww-coll"}
        # Labels additionally cover the adaptive meta-strategy, which is
        # deliberately NOT in STRATEGIES (it is not a static protocol).
        assert set(LABELS) == set(STRATEGIES) | {"hybrid-auto"}

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            get_strategy("nope")

    def test_axes(self):
        assert MASTER_WRITING.master_writes
        assert not MASTER_WRITING.parallel_io
        assert MASTER_WRITING.workers_send_payload
        assert not MASTER_WRITING.gates_assignment

        assert WORKER_POSIX.parallel_io
        assert WORKER_POSIX.ind_method == IND_POSIX
        assert WORKER_LIST.ind_method == IND_LIST
        assert not WORKER_LIST.collective

        assert WORKER_COLLECTIVE.collective
        assert WORKER_COLLECTIVE.gates_assignment

    def test_hints_follow_strategy(self):
        hints = WORKER_POSIX.hints(sync_after_write=False)
        assert hints.ind_wr_method == IND_POSIX
        assert not hints.sync_after_write


class TestConfig:
    def test_defaults_match_paper_setup(self):
        cfg = SimulationConfig()
        assert cfg.nqueries == 20
        assert cfg.nfragments == 128
        assert cfg.result_model.min_count == 1000
        assert cfg.result_model.max_count == 2000
        assert cfg.write_every == 1
        assert cfg.sync_after_write
        assert cfg.pvfs.nservers == 16
        assert cfg.pvfs.strip_size == 64 * 1024

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(nprocs=1)
        with pytest.raises(ValueError):
            SimulationConfig(nqueries=0)
        with pytest.raises(ValueError):
            SimulationConfig(nfragments=0)
        with pytest.raises(ValueError):
            SimulationConfig(write_every=0)
        with pytest.raises(ValueError):
            SimulationConfig(strategy="bogus")

    def test_derived_counts(self):
        cfg = SimulationConfig(nprocs=9, nqueries=10, nfragments=4, write_every=3)
        assert cfg.nworkers == 8
        assert cfg.ntasks == 40
        assert cfg.ngroups == 4
        assert cfg.group_of(0) == 0
        assert cfg.group_of(9) == 3
        assert list(cfg.queries_in_group(3)) == [9]
        assert list(cfg.queries_in_group(0)) == [0, 1, 2]

    def test_with_(self):
        cfg = SimulationConfig(nprocs=4)
        cfg2 = cfg.with_(nprocs=8, strategy="mw")
        assert cfg2.nprocs == 8
        assert cfg2.strategy == "mw"
        assert cfg.nprocs == 4  # original untouched

    def test_workload_is_deterministic(self):
        a = SimulationConfig(seed=7).build_workload()
        b = SimulationConfig(seed=7).build_workload()
        assert a.queries.total_bytes() == b.queries.total_bytes()
        assert a.results.query_result_count(3) == b.results.query_result_count(3)

    def test_effective_pvfs_store_data(self):
        cfg = SimulationConfig(store_data=True)
        assert cfg.effective_pvfs().store_data
        assert not SimulationConfig().effective_pvfs().store_data
