"""RunResult / FileStats surfaces."""

import pytest

from repro.core import FileStats, Phase
from repro.core.phases import PhaseReport
from repro.core.report import RunResult


def make_report(compute=1.0, io=0.5, total=2.0):
    return PhaseReport.from_times(
        {Phase.COMPUTE: compute, Phase.IO: io}, total=total
    )


def make_result(**kwargs):
    defaults = dict(
        strategy="ww-list",
        query_sync=False,
        nprocs=3,
        compute_speed=1.0,
        elapsed=2.0,
        master=make_report(compute=0.0, io=0.0, total=2.0),
        workers=[make_report(), make_report(compute=2.0, total=3.0)],
        file_stats=FileStats(
            total_bytes=100, expected_bytes=100, nextents=1, dense=True
        ),
    )
    defaults.update(kwargs)
    return RunResult(**defaults)


class TestFileStats:
    def test_complete_requires_dense_and_exact(self):
        ok = FileStats(100, 100, 1, True)
        assert ok.complete
        assert not FileStats(90, 100, 1, True).complete
        assert not FileStats(100, 100, 2, False).complete


class TestRunResult:
    def test_worker_mean_averages(self):
        result = make_result()
        mean = result.worker_mean
        assert mean[Phase.COMPUTE] == pytest.approx(1.5)
        assert mean.total == pytest.approx(2.5)

    def test_phase_seconds_shortcut(self):
        result = make_result()
        assert result.phase_seconds(Phase.IO) == pytest.approx(0.5)

    def test_summary_line_content(self):
        line = make_result(query_sync=True).summary_line()
        assert "ww-list" in line
        assert "sync" in line
        assert "np=3" in line

    def test_as_dict_round_trips_to_json(self):
        import json

        doc = make_result().as_dict()
        json.dumps(doc)
        assert doc["nprocs"] == 3
        assert doc["file"]["total_bytes"] == 100
