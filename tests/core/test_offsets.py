"""Offset assignment: merging scores, dense tilings, the block ledger."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import OffsetLedger, ScoredBatchMeta, merge_query, validate_assignment


def meta(query, frag, scores, sizes):
    return ScoredBatchMeta(
        query_id=query,
        fragment_id=frag,
        scores=np.asarray(scores, dtype=float),
        sizes=np.asarray(sizes, dtype=np.int64),
    )


class TestMergeQuery:
    def test_single_batch(self):
        offsets, block = merge_query(
            [meta(0, 0, [0.9, 0.5], [10, 20])], base_offset=100
        )
        np.testing.assert_array_equal(offsets[0], [100, 110])
        assert block == 30

    def test_interleaves_by_score(self):
        batches = [
            meta(0, 0, [0.9, 0.3], [10, 10]),
            meta(0, 1, [0.7, 0.1], [5, 5]),
        ]
        offsets, block = merge_query(batches, base_offset=0)
        # Global order: 0.9(f0), 0.7(f1), 0.3(f0), 0.1(f1)
        np.testing.assert_array_equal(offsets[0], [0, 15])
        np.testing.assert_array_equal(offsets[1], [10, 25])
        assert block == 30

    def test_tie_broken_by_fragment(self):
        batches = [
            meta(0, 1, [0.5], [7]),
            meta(0, 0, [0.5], [3]),
        ]
        offsets, _ = merge_query(batches, base_offset=0)
        assert offsets[0][0] == 0  # fragment 0 wins the tie
        assert offsets[1][0] == 3

    def test_empty_batches(self):
        offsets, block = merge_query([], base_offset=0)
        assert offsets == {} and block == 0

    def test_zero_count_fragment(self):
        batches = [
            meta(0, 0, [], []),
            meta(0, 1, [0.4], [8]),
        ]
        offsets, block = merge_query(batches, base_offset=50)
        assert len(offsets[0]) == 0
        np.testing.assert_array_equal(offsets[1], [50])
        assert block == 8

    def test_mixed_queries_rejected(self):
        with pytest.raises(ValueError):
            merge_query([meta(0, 0, [1], [1]), meta(1, 1, [1], [1])], 0)

    def test_duplicate_fragment_rejected(self):
        with pytest.raises(ValueError):
            merge_query([meta(0, 0, [1], [1]), meta(0, 0, [1], [1])], 0)

    def test_validate_assignment_happy_path(self):
        batches = [
            meta(0, 0, [0.9, 0.3], [10, 10]),
            meta(0, 1, [0.7], [5]),
        ]
        offsets, block = merge_query(batches, base_offset=40)
        validate_assignment(
            offsets,
            {0: batches[0].sizes, 1: batches[1].sizes},
            base_offset=40,
            block_size=block,
        )

    def test_validate_assignment_detects_gap(self):
        with pytest.raises(ValueError):
            validate_assignment(
                {0: np.array([0, 20])},
                {0: np.array([10, 10])},
                base_offset=0,
                block_size=30,
            )


class TestOffsetLedger:
    def test_sequential_bases(self):
        ledger = OffsetLedger(3)
        assert ledger.base_for(0, 100) == 0
        assert ledger.base_for(1, 50) == 100
        assert ledger.base_for(2, 10) == 150
        assert ledger.complete()
        assert ledger.total_bytes() == 160

    def test_out_of_order_rejected(self):
        ledger = OffsetLedger(3)
        with pytest.raises(ValueError):
            ledger.base_for(1, 10)

    def test_incomplete_total_rejected(self):
        ledger = OffsetLedger(2)
        ledger.base_for(0, 5)
        with pytest.raises(ValueError):
            ledger.total_bytes()

    def test_validation(self):
        with pytest.raises(ValueError):
            OffsetLedger(0)
        ledger = OffsetLedger(1)
        with pytest.raises(ValueError):
            ledger.base_for(0, -1)


# -- property test: merge_query always produces a dense tiling -------------

@st.composite
def query_batches(draw):
    nfrags = draw(st.integers(1, 6))
    batches = []
    for frag in range(nfrags):
        count = draw(st.integers(0, 8))
        scores = sorted(
            draw(
                st.lists(
                    st.floats(0, 1, allow_nan=False), min_size=count, max_size=count
                )
            ),
            reverse=True,
        )
        sizes = draw(
            st.lists(st.integers(1, 1000), min_size=count, max_size=count)
        )
        batches.append(meta(0, frag, scores, sizes))
    return batches


@given(batches=query_batches(), base=st.integers(0, 1 << 30))
@settings(max_examples=150, deadline=None)
def test_property_merge_is_dense_tiling(batches, base):
    offsets, block = merge_query(batches, base_offset=base)
    assert block == sum(b.total_bytes for b in batches)
    validate_assignment(
        offsets,
        {b.fragment_id: b.sizes for b in batches},
        base_offset=base,
        block_size=block,
    )
    # Per-fragment offsets come back in the batch's own order, so each
    # fragment's list pairs 1:1 with its stored sizes.
    for b in batches:
        assert len(offsets.get(b.fragment_id, [])) == b.count


# -- seeded stdlib-random property tests (no hypothesis shrink phase; each
# -- seed is one deterministic, replayable example) -------------------------

def _random_batches(rng, query=0, max_frags=6, max_count=8):
    batches = []
    for frag in range(rng.randint(1, max_frags)):
        count = rng.randint(0, max_count)
        scores = sorted(
            (rng.random() for _ in range(count)), reverse=True
        )
        sizes = [rng.randint(1, 1000) for _ in range(count)]
        batches.append(meta(query, frag, scores, sizes))
    return batches


@pytest.mark.parametrize("seed", range(25))
def test_property_seeded_dense_tiling(seed):
    import random

    rng = random.Random(seed)
    batches = _random_batches(rng)
    base = rng.randrange(1 << 30)
    offsets, block = merge_query(batches, base_offset=base)
    assert block == sum(b.total_bytes for b in batches)
    validate_assignment(
        offsets,
        {b.fragment_id: b.sizes for b in batches},
        base_offset=base,
        block_size=block,
    )


@pytest.mark.parametrize("seed", range(25))
def test_property_scores_descend_in_file_order(seed):
    """Walking the block front to back must visit scores high to low
    (ties broken by (fragment, index) — the paper's output contract)."""
    import random

    rng = random.Random(seed + 1000)
    batches = _random_batches(rng)
    offsets, _ = merge_query(batches, base_offset=0)
    annotated = []
    for b in batches:
        for i, offset in enumerate(offsets[b.fragment_id]):
            annotated.append(
                (int(offset), float(b.scores[i]), b.fragment_id, i)
            )
    annotated.sort()  # file order
    keys = [(-score, frag, idx) for _, score, frag, idx in annotated]
    assert keys == sorted(keys)


@pytest.mark.parametrize("seed", range(25))
def test_property_batch_arrival_order_is_irrelevant(seed):
    """Fragments report in nondeterministic network order; the merge must
    assign identical offsets for any permutation of the batch list."""
    import random

    rng = random.Random(seed + 2000)
    batches = _random_batches(rng)
    base = rng.randrange(1 << 20)
    reference, ref_block = merge_query(batches, base_offset=base)
    for _ in range(3):
        shuffled = batches[:]
        rng.shuffle(shuffled)
        offsets, block = merge_query(shuffled, base_offset=base)
        assert block == ref_block
        assert set(offsets) == set(reference)
        for frag in reference:
            np.testing.assert_array_equal(offsets[frag], reference[frag])
