"""Point-to-point messaging: matching, protocols, requests, ordering."""

import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, MpiWorld, NetworkConfig
from repro.sim import SimulationError

KIB = 1024


def make_world(n=2, **net_kwargs):
    defaults = dict(latency_s=1e-5, bandwidth_Bps=100 * 1024 * 1024)
    defaults.update(net_kwargs)
    return MpiWorld(nranks=n, network=NetworkConfig(**defaults))


class TestBlockingSendRecv:
    def test_payload_and_status(self):
        world = make_world()

        def main(comm):
            if comm.rank == 0:
                yield from comm.send(1, tag=7, nbytes=100, payload={"k": 1})
            else:
                payload, status = yield from comm.recv(source=0, tag=7)
                assert payload == {"k": 1}
                assert status.source == 0
                assert status.tag == 7
                assert status.nbytes == 100
                return "ok"

        out = world.spawn_all(main) and world.run()
        assert out[1] == "ok"

    def test_send_before_recv_posted(self):
        world = make_world()

        def main(comm):
            if comm.rank == 0:
                yield from comm.send(1, tag=1, nbytes=10, payload="early")
            else:
                yield comm.env.timeout(0.5)  # recv posted long after arrival
                payload, _ = yield from comm.recv(source=0, tag=1)
                return payload

        world.spawn_all(main)
        assert world.run()[1] == "early"

    def test_recv_before_send(self):
        world = make_world()

        def main(comm):
            if comm.rank == 0:
                yield comm.env.timeout(0.5)
                yield from comm.send(1, tag=1, nbytes=10, payload="late")
            else:
                payload, _ = yield from comm.recv(source=0, tag=1)
                return (payload, comm.env.now)

        world.spawn_all(main)
        payload, when = world.run()[1]
        assert payload == "late"
        assert when > 0.5

    def test_wildcard_source_and_tag(self):
        world = make_world(3)

        def main(comm):
            if comm.rank == 0:
                got = []
                for _ in range(2):
                    payload, status = yield from comm.recv(
                        source=ANY_SOURCE, tag=ANY_TAG
                    )
                    got.append((status.source, payload))
                return sorted(got)
            yield from comm.send(0, tag=comm.rank, nbytes=10, payload=f"r{comm.rank}")

        world.spawn_all(main)
        assert world.run()[0] == [(1, "r1"), (2, "r2")]

    def test_tag_selectivity(self):
        world = make_world()

        def main(comm):
            if comm.rank == 0:
                yield from comm.send(1, tag=1, nbytes=10, payload="first")
                yield from comm.send(1, tag=2, nbytes=10, payload="second")
            else:
                payload2, _ = yield from comm.recv(source=0, tag=2)
                payload1, _ = yield from comm.recv(source=0, tag=1)
                return (payload1, payload2)

        world.spawn_all(main)
        assert world.run()[1] == ("first", "second")

    def test_non_overtaking_same_tag(self):
        world = make_world()

        def main(comm):
            if comm.rank == 0:
                for i in range(5):
                    yield from comm.send(1, tag=3, nbytes=64, payload=i)
            else:
                got = []
                for _ in range(5):
                    payload, _ = yield from comm.recv(source=0, tag=3)
                    got.append(payload)
                return got

        world.spawn_all(main)
        assert world.run()[1] == [0, 1, 2, 3, 4]


class TestProtocols:
    def test_eager_send_completes_without_recv(self):
        """Small sends are buffered: the sender finishes even if the
        receiver never posts a matching receive."""
        world = make_world()

        def main(comm):
            if comm.rank == 0:
                request = comm.isend(1, tag=1, nbytes=100, payload="buffered")
                yield from request.wait()
                return comm.env.now
            yield comm.env.timeout(1.0)  # rank 1 never receives

        world.spawn_all(main)
        out = world.run()
        assert out[0] < 0.1

    def test_rendezvous_send_blocks_until_recv(self):
        """Large sends complete only after the receiver matches."""
        world = make_world(eager_threshold_B=1 * KIB)

        def main(comm):
            if comm.rank == 0:
                request = comm.isend(1, tag=1, nbytes=1_000_000, payload="big")
                yield from request.wait()
                return comm.env.now
            yield comm.env.timeout(0.5)
            payload, _ = yield from comm.recv(source=0, tag=1)
            assert payload == "big"

        world.spawn_all(main)
        assert world.run()[0] > 0.5

    def test_rendezvous_payload_delivered_intact(self):
        world = make_world(eager_threshold_B=1 * KIB)
        blob = {"data": list(range(100))}

        def main(comm):
            if comm.rank == 0:
                yield from comm.send(1, tag=9, nbytes=100_000, payload=blob)
            else:
                payload, status = yield from comm.recv()
                assert status.nbytes == 100_000
                return payload

        world.spawn_all(main)
        assert world.run()[1] == blob

    def test_bigger_messages_take_longer(self):
        durations = {}
        for nbytes in (10 * KIB, 10 * 1024 * KIB):
            world = make_world()

            def main(comm, n=nbytes):
                if comm.rank == 0:
                    yield from comm.send(1, tag=1, nbytes=n)
                else:
                    yield from comm.recv(source=0, tag=1)

            world.spawn_all(main)
            world.run()
            durations[nbytes] = world.env.now
        assert durations[10 * 1024 * KIB] > durations[10 * KIB] * 100


class TestRequests:
    def test_test_polls_without_blocking(self):
        world = make_world()

        def main(comm):
            if comm.rank == 0:
                yield comm.env.timeout(0.2)
                yield from comm.send(1, tag=1, nbytes=10, payload="x")
            else:
                recv = comm.irecv(source=0, tag=1)
                polls = 0
                while not recv.test():
                    polls += 1
                    yield comm.env.timeout(0.05)
                return polls

        world.spawn_all(main)
        assert world.run()[1] >= 3

    def test_cancel_unmatched_recv(self):
        world = make_world()

        def main(comm):
            if comm.rank == 1:
                recv = comm.irecv(source=0, tag=55)
                recv.cancel()
                assert recv.cancelled
                yield comm.env.timeout(0.01)

        world.spawn_all(main)
        world.run()

    def test_cancel_matched_recv_rejected(self):
        world = make_world()

        def main(comm):
            if comm.rank == 0:
                yield from comm.send(1, tag=1, nbytes=10)
            else:
                recv = comm.irecv(source=0, tag=1)
                yield from recv.wait()
                with pytest.raises(SimulationError):
                    recv.cancel()

        world.spawn_all(main)
        world.run()

    def test_status_before_completion_raises(self):
        world = make_world()

        def main(comm):
            if comm.rank == 1:
                recv = comm.irecv(source=0, tag=1)
                with pytest.raises(SimulationError):
                    _ = recv.status
                yield comm.env.timeout(0.01)

        world.spawn_all(main)
        world.run()

    def test_iprobe(self):
        world = make_world()

        def main(comm):
            if comm.rank == 0:
                yield from comm.send(1, tag=4, nbytes=32, payload="probe-me")
            else:
                yield comm.env.timeout(0.1)
                status = comm.iprobe(source=0, tag=4)
                assert status is not None and status.nbytes == 32
                assert comm.iprobe(source=0, tag=99) is None
                payload, _ = yield from comm.recv(source=0, tag=4)
                return payload

        world.spawn_all(main)
        assert world.run()[1] == "probe-me"


class TestValidation:
    def test_bad_destination(self):
        world = make_world()

        def main(comm):
            if comm.rank == 0:
                with pytest.raises(ValueError):
                    comm.isend(5, tag=1, nbytes=10)
            yield comm.env.timeout(0.001)

        world.spawn_all(main)
        world.run()

    def test_reserved_tag_rejected(self):
        world = make_world()

        def main(comm):
            if comm.rank == 0:
                with pytest.raises(ValueError):
                    comm.isend(1, tag=-5, nbytes=10)
            yield comm.env.timeout(0.001)

        world.spawn_all(main)
        world.run()


class TestSubCommunicators:
    def test_sub_comm_traffic_is_isolated(self):
        world = make_world(4)
        sub = world.comm.sub([1, 2, 3])

        def main(comm):
            # World traffic on tag 1 must not match sub-comm receives.
            if comm.rank == 0:
                yield from comm.send(1, tag=1, nbytes=10, payload="world")
            elif comm.rank == 1:
                subview = sub.view(0)
                world_recv = comm.irecv(source=0, tag=1)
                sub_recv = subview.irecv(tag=1)
                payload = yield from world_recv.wait()
                assert payload == "world"
                assert not sub_recv.completed
                sub_recv.cancel()

        world.spawn_all(main)
        world.run()

    def test_sub_comm_rank_mapping(self):
        world = make_world(4)
        sub = world.comm.sub([2, 3])
        assert sub.size == 2
        assert sub.global_rank(0) == 2
        assert sub.view(1).global_rank == 3

    def test_sub_comm_messaging(self):
        world = make_world(4)
        sub = world.comm.sub([1, 3])

        def main(comm):
            if comm.rank == 1:
                view = sub.view(0)
                yield from view.send(1, tag=2, nbytes=10, payload="via-sub")
            elif comm.rank == 3:
                view = sub.view(1)
                payload, status = yield from view.recv(source=0, tag=2)
                assert status.source == 0  # sub-comm local rank
                return payload
            yield comm.env.timeout(0)

        world.spawn_all(main)
        assert world.run()[3] == "via-sub"

    def test_duplicate_ranks_rejected(self):
        world = make_world(4)
        with pytest.raises(ValueError):
            world.comm.sub([1, 1])
