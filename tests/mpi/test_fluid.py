"""Fluid bulk-transfer model: fair sharing, drops, accounting, gating."""

import pytest

from repro.sim import Environment
from repro.mpi.network import (
    LinkFailure,
    LinkFaults,
    MIB,
    Network,
    NetworkConfig,
)


class _ScriptedRng:
    def __init__(self, values):
        self.values = list(values)

    def random(self):
        return self.values.pop(0)


def _cfg(**kw):
    base = dict(
        latency_s=0.0, bandwidth_Bps=100.0, cpu_overhead_s=0.0, fluid_threshold_B=1
    )
    base.update(kw)
    return NetworkConfig(**base)


def _xfer(env, net, src, dst, nbytes, done, key):
    yield from net.transfer(src, dst, nbytes)
    done[key] = env.now


@pytest.fixture
def env():
    return Environment()


class TestConfig:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            NetworkConfig(fluid_threshold_B=0)
        with pytest.raises(ValueError):
            NetworkConfig(fluid_threshold_B=-5)

    def test_default_has_no_scheduler(self, env):
        net = Network(env, 2, NetworkConfig())
        assert net.flows is None

    def test_threshold_gates_path(self, env):
        """Messages under the threshold stay on the packet path."""
        net = Network(env, 2, _cfg(fluid_threshold_B=500))
        done = {}
        env.process(_xfer(env, net, 0, 1, 499, done, "small"))
        env.run()
        assert net.flows.flows_started == 0
        done = {}
        env.process(_xfer(env, net, 0, 1, 500, done, "big"))
        env.run()
        assert net.flows.flows_started == 1


class TestFairSharing:
    def test_single_flow_full_rate(self, env):
        net = Network(env, 2, _cfg())
        done = {}
        env.process(_xfer(env, net, 0, 1, 1000, done, "a"))
        env.run()
        assert done["a"] == pytest.approx(10.0)

    def test_shared_destination_halves_rate(self, env):
        net = Network(env, 3, _cfg())
        done = {}
        env.process(_xfer(env, net, 1, 0, 1000, done, "a"))
        env.process(_xfer(env, net, 2, 0, 1000, done, "b"))
        env.run()
        assert done["a"] == pytest.approx(20.0)
        assert done["b"] == pytest.approx(20.0)

    def test_disjoint_pairs_full_rate(self, env):
        net = Network(env, 4, _cfg())
        done = {}
        env.process(_xfer(env, net, 0, 1, 1000, done, "a"))
        env.process(_xfer(env, net, 2, 3, 1000, done, "b"))
        env.run()
        assert done["a"] == pytest.approx(10.0)
        assert done["b"] == pytest.approx(10.0)

    def test_late_flow_rebalances(self, env):
        """b arrives at t=5: both run at 50 B/s until a drains at t=15,
        then b finishes its remaining 500 B at full rate at t=20."""
        net = Network(env, 3, _cfg())
        done = {}

        def late(env):
            yield env.timeout(5.0)
            yield from net.transfer(2, 0, 1000)
            done["b"] = env.now

        env.process(_xfer(env, net, 1, 0, 1000, done, "a"))
        env.process(late(env))
        env.run()
        assert done["a"] == pytest.approx(15.0)
        assert done["b"] == pytest.approx(20.0)
        # start(a), start(b), finish(a), finish(b) — one recompute each.
        assert net.flows.rate_changes == 4

    def test_max_min_unbalanced_shares(self, env):
        """Three flows into one sink plus one disjoint flow: the sink's
        flows get 1/3 each; the disjoint flow is NOT throttled to the
        bottleneck share (max-min, not global equal split)."""
        net = Network(env, 6, _cfg())
        done = {}
        for i, key in enumerate(("a", "b", "c")):
            env.process(_xfer(env, net, i + 1, 0, 900, done, key))
        env.process(_xfer(env, net, 4, 5, 900, done, "free"))
        env.run()
        for key in ("a", "b", "c"):
            assert done[key] == pytest.approx(27.0)
        assert done["free"] == pytest.approx(9.0)

    def test_fabric_capacity_bounds_aggregate(self, env):
        net = Network(env, 6, _cfg(fabric_capacity=1))
        done = {}
        for i, key in enumerate(("a", "b", "c")):
            env.process(_xfer(env, net, 2 * i, 2 * i + 1, 1000, done, key))
        env.run()
        # Aggregate fabric pipe = 1 × 100 B/s shared three ways.
        for key in ("a", "b", "c"):
            assert done[key] == pytest.approx(30.0)

    def test_same_nic_stays_on_memcpy_path(self, env):
        """Node-local transfers never become flows."""
        net = Network(env, 4, _cfg(ranks_per_nic=2))
        done = {}
        env.process(_xfer(env, net, 0, 1, 1000, done, "local"))
        env.run()
        assert net.flows.flows_started == 0
        # memcpy model: serialization/4.
        assert done["local"] == pytest.approx(2.5)

    def test_latency_and_overhead_charged(self, env):
        net = Network(
            env, 2, _cfg(latency_s=0.5, cpu_overhead_s=0.25)
        )
        done = {}
        env.process(_xfer(env, net, 0, 1, 1000, done, "a"))
        env.run()
        # cpu + flow(10) + latency + cpu
        assert done["a"] == pytest.approx(11.0)


class TestFluidFaults:
    def _loss(self, **kw):
        from repro.faults import MessageLoss

        base = dict(
            drop_prob=0.5,
            start=0.0,
            end=1e9,
            retransmit_timeout_s=0.5,
            backoff=2.0,
            max_retries=3,
        )
        base.update(kw)
        return MessageLoss(**base)

    def test_drop_retransmits_whole_flow(self, env):
        net = Network(env, 2, _cfg())
        net.install_faults(LinkFaults([self._loss()], _ScriptedRng([0.0, 0.9])))
        done = {}
        env.process(_xfer(env, net, 0, 1, 100, done, "a"))
        env.run()
        # flow(1s) + backoff(0.5) + flow(1s)
        assert done["a"] == pytest.approx(2.5)
        assert net.faults.stats.drops == 1
        assert net.faults.stats.retransmits == 1

    def test_budget_exhaustion_raises(self, env):
        net = Network(env, 2, _cfg())
        net.install_faults(
            LinkFaults([self._loss(max_retries=3)], _ScriptedRng([0.0] * 8))
        )

        def doomed():
            yield from net.transfer(0, 1, 100)

        with pytest.raises(LinkFailure):
            env.run(env.process(doomed()))
        assert net.faults.stats.drops == 4
        assert net.faults.stats.link_failures == 1

    def test_byte_conservation_under_drops(self, env):
        """Checker ledger parity: rx + dropped == tx when every loss is
        eventually recovered."""
        from repro.check.invariants import InvariantChecker

        env.check = InvariantChecker(env)
        net = Network(env, 2, _cfg())
        net.install_faults(
            LinkFaults([self._loss()], _ScriptedRng([0.0, 0.0, 0.9]))
        )
        done = {}
        env.process(_xfer(env, net, 0, 1, 100, done, "a"))
        env.run()
        s = env.check.summary()
        assert s["tx_bytes"] == 300  # three attempts
        assert s["rx_bytes"] == 100
        assert s["dropped_bytes"] == 200
        env.check.finalize(now=env.now, fault_free=False)


class TestFluidAccounting:
    def test_nic_stats_and_metrics(self, env):
        from repro.obs.metrics import MetricsRegistry

        env.metrics = MetricsRegistry()
        net = Network(env, 2, _cfg())
        done = {}
        env.process(_xfer(env, net, 0, 1, 1000, done, "a"))
        env.run()
        assert net.nic(0).stats.tx_bytes == 1000
        assert net.nic(0).stats.tx_messages == 1
        assert net.nic(1).stats.rx_bytes == 1000
        snap = env.metrics.snapshot()
        assert snap.counter_total("mpi.fluid_flows") == 1
        assert snap.counter_total("mpi.fluid_bytes") == 1000
        assert snap.counter_total("mpi.nic_tx_bytes", nic=0, rank=0) == 1000
        assert snap.counter_total("mpi.nic_rx_bytes", nic=1, rank=1) == 1000
        assert snap.counter_total("mpi.flow_rate_changes") == 2

    def test_scheduler_repr_and_counters(self, env):
        net = Network(env, 2, _cfg())
        done = {}
        env.process(_xfer(env, net, 0, 1, 1000, done, "a"))
        env.run()
        assert net.flows.flows_started == 1
        assert net.flows.flows_finished == 1
        assert net.flows.active_flows == 0
        assert "FlowScheduler" in repr(net.flows)


class TestFluidEndToEnd:
    def test_full_run_completes_with_fluid_and_calendar(self):
        """A whole S3aSim run with both tentpole features on: completes,
        output file dense, invariants clean."""
        from dataclasses import replace

        from repro.core import S3aSim, SimulationConfig

        base = SimulationConfig(
            nprocs=4, nqueries=2, nfragments=8, strategy="mw", check=True
        )
        # Lower the eager threshold so the worker→master result payloads
        # go rendezvous (the only path that reaches Network.transfer) and
        # thus exercise the fluid model inside a full application run.
        cfg = base.with_(
            scheduler="calendar",
            network=replace(
                base.network, eager_threshold_B=2048, fluid_threshold_B=4096
            ),
        )
        app = S3aSim(cfg)
        result = app.run()
        assert result.file_stats.complete
        assert app.world.network.flows is not None
        # The bulk result writes are big enough to ride the fluid path.
        assert app.world.network.flows.flows_finished > 0

    def test_fluid_matches_packet_byte_totals(self):
        """Fluid mode changes timing, never payload byte totals."""
        from dataclasses import replace

        from repro.core import S3aSim, SimulationConfig

        base = SimulationConfig(nprocs=4, nqueries=2, nfragments=8, strategy="mw")
        packet_net = replace(base.network, eager_threshold_B=2048)
        totals = {}
        for name, net in (
            ("packet", packet_net),
            ("fluid", replace(packet_net, fluid_threshold_B=4096)),
        ):
            app = S3aSim(base.with_(network=net))
            result = app.run()
            assert result.file_stats.complete
            totals[name] = result.file_stats.total_bytes
        assert totals["packet"] == totals["fluid"]
