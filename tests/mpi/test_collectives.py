"""Collective operations over simulated point-to-point messaging."""

import pytest

from repro import mpi
from repro.mpi import MpiWorld, NetworkConfig


def run_collective(n, body):
    """Spawn ``body`` on every rank of an n-rank world; return results."""
    world = MpiWorld(nranks=n, network=NetworkConfig.myrinet2000())
    world.spawn_all(body)
    return world.run(), world


@pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 13])
class TestBarrier:
    def test_barrier_synchronizes(self, n):
        def main(comm):
            # Stagger arrival; everyone leaves no earlier than the last.
            yield comm.env.timeout(0.01 * comm.rank)
            yield from mpi.barrier(comm)
            return comm.env.now

        out, _ = run_collective(n, main)
        latest_arrival = 0.01 * (n - 1)
        for rank, t in out.items():
            assert t >= latest_arrival - 1e-12


@pytest.mark.parametrize("n", [1, 2, 4, 7])
@pytest.mark.parametrize("root", [0, "last"])
class TestBcast:
    def test_bcast_delivers_to_all(self, n, root):
        root_rank = n - 1 if root == "last" else 0

        def main(comm):
            payload = {"v": 42} if comm.rank == root_rank else None
            result = yield from mpi.bcast(comm, root_rank, 1024, payload)
            return result

        out, _ = run_collective(n, main)
        assert all(v == {"v": 42} for v in out.values())


class TestGatherScatter:
    @pytest.mark.parametrize("n", [2, 5, 9])
    def test_gather(self, n):
        def main(comm):
            return (yield from mpi.gather(comm, 0, 64, payload=comm.rank * 10))

        out, _ = run_collective(n, main)
        assert out[0] == [r * 10 for r in range(n)]
        assert all(out[r] is None for r in range(1, n))

    def test_gatherv_sizes_validated(self):
        def main(comm):
            with pytest.raises(ValueError):
                yield from mpi.gatherv(comm, 0, [10], payload=1)

        run_collective(2, main)

    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_scatter(self, n):
        def main(comm):
            payloads = [f"p{i}" for i in range(comm.size)] if comm.rank == 0 else None
            return (yield from mpi.scatter(comm, 0, 64, payloads))

        out, _ = run_collective(n, main)
        assert out == {r: f"p{r}" for r in range(n)}

    def test_scatter_missing_payloads_rejected(self):
        def main(comm):
            if comm.rank == 0:
                with pytest.raises(ValueError):
                    yield from mpi.scatterv(comm, 0, [8, 8], None)
            else:
                recv = comm.irecv()
                yield comm.env.timeout(0.001)
                recv.cancel()

        run_collective(2, main)

    @pytest.mark.parametrize("n", [2, 3, 8])
    def test_allgather(self, n):
        def main(comm):
            return (yield from mpi.allgather(comm, 32, payload=comm.rank**2))

        out, _ = run_collective(n, main)
        expected = [r**2 for r in range(n)]
        assert all(v == expected for v in out.values())


class TestAllToAll:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_alltoallv_routes_payloads(self, n):
        def main(comm):
            outbox = [f"{comm.rank}->{d}" for d in range(comm.size)]
            sizes = [100 * (d + 1) for d in range(comm.size)]
            return (yield from mpi.alltoallv(comm, sizes, outbox))

        out, _ = run_collective(n, main)
        for rank, inbox in out.items():
            assert inbox == [f"{s}->{rank}" for s in range(n)]

    def test_alltoallv_size_validation(self):
        def main(comm):
            with pytest.raises(ValueError):
                yield from mpi.alltoallv(comm, [1], None)

        run_collective(3, main)


class TestReductions:
    @pytest.mark.parametrize("n", [1, 2, 6])
    def test_reduce_sum(self, n):
        def main(comm):
            return (
                yield from mpi.reduce(comm, 0, 8, comm.rank + 1, lambda a, b: a + b)
            )

        out, _ = run_collective(n, main)
        assert out[0] == n * (n + 1) // 2

    @pytest.mark.parametrize("n", [2, 5])
    def test_allreduce_max(self, n):
        def main(comm):
            return (yield from mpi.allreduce(comm, 8, comm.rank, max))

        out, _ = run_collective(n, main)
        assert all(v == n - 1 for v in out.values())


class TestConcurrentCollectives:
    def test_back_to_back_barriers_do_not_cross_match(self):
        def main(comm):
            for _ in range(5):
                yield from mpi.barrier(comm)
            return (yield from mpi.allgather(comm, 8, comm.rank))

        out, _ = run_collective(4, main)
        assert all(v == [0, 1, 2, 3] for v in out.values())

    def test_collectives_interleave_with_user_traffic(self):
        def main(comm):
            if comm.rank == 0:
                yield from comm.send(1, tag=5, nbytes=10, payload="user")
            yield from mpi.barrier(comm)
            if comm.rank == 1:
                payload, _ = yield from comm.recv(source=0, tag=5)
                return payload
            return None

        out, _ = run_collective(3, main)
        assert out[1] == "user"

    def test_barrier_cost_grows_with_ranks(self):
        times = {}
        for n in (2, 16):
            def main(comm):
                yield from mpi.barrier(comm)
                return comm.env.now

            out, world = run_collective(n, main)
            times[n] = world.env.now
        assert times[16] > times[2]
