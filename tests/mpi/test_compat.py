"""The mpi4py-flavoured facade."""

import pytest

from repro.mpi import CompatComm, CompatFile, MpiWorld, NetworkConfig
from repro.mpi.compat import MODE_CREATE, MODE_WRONLY
from repro.pvfs import FileSystem, PVFSConfig

MIB = 1024 * 1024


def make_world(n=3):
    return MpiWorld(nranks=n, network=NetworkConfig.myrinet2000())


class TestPointToPoint:
    def test_tutorial_send_recv(self):
        """The mpi4py tutorial's first example, adapted."""
        world = make_world(2)

        def main(comm):
            C = CompatComm(comm)
            if C.Get_rank() == 0:
                data = {"a": 7, "b": 3.14}
                yield from C.send(data, dest=1, tag=11)
            elif C.Get_rank() == 1:
                data = yield from C.recv(source=0, tag=11)
                return data

        world.spawn_all(main)
        assert world.run()[1] == {"a": 7, "b": 3.14}

    def test_nonblocking_with_test_and_wait(self):
        world = make_world(2)

        def main(comm):
            C = CompatComm(comm)
            if C.rank == 0:
                req = C.isend([1, 2, 3], dest=1, tag=5)
                value = yield from req.Wait()
                return value
            req = C.irecv(source=0, tag=5)
            while not req.Test():
                yield comm.env.timeout(1e-6)
            data = yield from req.Wait()
            return data

        world.spawn_all(main)
        assert world.run()[1] == [1, 2, 3]

    def test_payload_size_drives_timing(self):
        durations = {}
        for size in (10, 200_000):
            world = make_world(2)

            def main(comm, n=size):
                C = CompatComm(comm)
                if C.rank == 0:
                    yield from C.send(list(range(n)), dest=1)
                else:
                    yield from C.recv(source=0)

            world.spawn_all(main)
            world.run()
            durations[size] = world.env.now
        assert durations[200_000] > durations[10] * 10


class TestCollectives:
    def test_bcast_gather_allreduce(self):
        world = make_world(4)

        def main(comm):
            C = CompatComm(comm)
            data = yield from C.bcast("seed" if C.rank == 0 else None, root=0)
            assert data == "seed"
            gathered = yield from C.gather(C.rank * 2, root=0)
            if C.rank == 0:
                assert gathered == [0, 2, 4, 6]
            total = yield from C.allreduce(C.rank)
            assert total == 6
            yield from C.barrier()
            return "done"

        world.spawn_all(main)
        assert all(v == "done" for v in world.run().values())

    def test_scatter(self):
        world = make_world(3)

        def main(comm):
            C = CompatComm(comm)
            objs = ["a", "b", "c"] if C.rank == 0 else None
            mine = yield from C.scatter(objs, root=0)
            return mine

        world.spawn_all(main)
        assert world.run() == {0: "a", 1: "b", 2: "c"}


class TestFile:
    def test_collective_io_tutorial_pattern(self):
        """The mpi4py MPI-IO tutorial: each rank writes its slab at
        rank * nbytes via Write_at_all."""
        world = make_world(4)
        fs = FileSystem(
            world.env,
            PVFSConfig(
                nservers=4,
                network=NetworkConfig(latency_s=1e-6, bandwidth_Bps=1000 * MIB),
                client_pipeline_Bps=1000 * MIB,
                store_data=True,
            ),
        )

        def main(comm):
            C = CompatComm(comm)
            fh = yield from CompatFile.Open(
                C, fs, "./datafile.contig", MODE_WRONLY | MODE_CREATE
            )
            buffer = bytes([C.rank]) * 40
            offset = C.rank * len(buffer)
            yield from fh.Write_at_all(offset, buffer)
            yield from fh.Sync()
            yield from fh.Close()

        world.spawn_all(main)
        world.run()
        store = fs.lookup("./datafile.contig").bytestore
        assert store.is_dense(160)
        assert store.read(40, 1) == bytes([1])

    def test_independent_write_and_read(self):
        world = make_world(2)
        fs = FileSystem(
            world.env,
            PVFSConfig(
                nservers=2,
                network=NetworkConfig(latency_s=1e-6, bandwidth_Bps=1000 * MIB),
                client_pipeline_Bps=1000 * MIB,
                store_data=True,
            ),
        )

        def main(comm):
            C = CompatComm(comm)
            fh = yield from CompatFile.Open(C, fs, "/f")
            if C.rank == 0:
                yield from fh.Write_at(0, b"hello-mpiio")
            yield from C.barrier()
            if C.rank == 1:
                data = yield from fh.Read_at(0, 11)
                return data
            return None

        world.spawn_all(main)
        assert world.run()[1] == b"hello-mpiio"
