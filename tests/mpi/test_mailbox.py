"""Mailbox matching engine unit tests (direct, without a network)."""

import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, Envelope, Mailbox
from repro.mpi.constants import EAGER, RENDEZVOUS_RTS
from repro.mpi.request import RecvRequest
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def make_envelope(env, src=0, dst=1, tag=5, nbytes=100, payload="data",
                  kind=EAGER):
    cts = env.event() if kind == RENDEZVOUS_RTS else None
    data = env.event() if kind == RENDEZVOUS_RTS else None
    return Envelope(
        src=src, dst=dst, tag=tag, nbytes=nbytes, payload=payload,
        kind=kind, cts_event=cts, data_event=data,
    )


class TestDelivery:
    def test_wrong_destination_rejected(self, env):
        mailbox = Mailbox(env, rank=1)
        with pytest.raises(ValueError):
            mailbox.deliver(make_envelope(env, dst=2))

    def test_unmatched_arrival_queues(self, env):
        mailbox = Mailbox(env, rank=1)
        mailbox.deliver(make_envelope(env))
        assert len(mailbox.unexpected) == 1
        assert mailbox.posted == []

    def test_arrival_matches_posted_recv(self, env):
        mailbox = Mailbox(env, rank=1)
        recv = RecvRequest(env, source=0, tag=5, mailbox=mailbox)
        mailbox.post(recv)
        mailbox.deliver(make_envelope(env))
        assert recv.matched
        assert recv.completed
        env.run()
        assert recv.done_event.value == "data"
        assert recv.status.nbytes == 100

    def test_recv_matches_queued_arrival(self, env):
        mailbox = Mailbox(env, rank=1)
        mailbox.deliver(make_envelope(env, payload="early"))
        recv = RecvRequest(env, source=0, tag=5, mailbox=mailbox)
        mailbox.post(recv)
        env.run()
        assert recv.done_event.value == "early"
        assert mailbox.unexpected == []


class TestMatchingRules:
    def test_source_selectivity(self, env):
        mailbox = Mailbox(env, rank=1)
        recv = RecvRequest(env, source=3, tag=ANY_TAG, mailbox=mailbox)
        mailbox.post(recv)
        mailbox.deliver(make_envelope(env, src=0))
        assert not recv.matched
        mailbox.deliver(make_envelope(env, src=3, payload="from-3"))
        assert recv.matched

    def test_tag_selectivity(self, env):
        mailbox = Mailbox(env, rank=1)
        recv = RecvRequest(env, source=ANY_SOURCE, tag=9, mailbox=mailbox)
        mailbox.post(recv)
        mailbox.deliver(make_envelope(env, tag=5))
        assert not recv.matched
        mailbox.deliver(make_envelope(env, tag=9))
        assert recv.matched

    def test_earliest_posted_recv_wins(self, env):
        mailbox = Mailbox(env, rank=1)
        first = RecvRequest(env, ANY_SOURCE, ANY_TAG, mailbox)
        second = RecvRequest(env, ANY_SOURCE, ANY_TAG, mailbox)
        mailbox.post(first)
        mailbox.post(second)
        mailbox.deliver(make_envelope(env))
        assert first.matched and not second.matched

    def test_earliest_arrival_matches_first(self, env):
        mailbox = Mailbox(env, rank=1)
        mailbox.deliver(make_envelope(env, payload="one"))
        mailbox.deliver(make_envelope(env, payload="two"))
        recv = RecvRequest(env, ANY_SOURCE, ANY_TAG, mailbox)
        mailbox.post(recv)
        env.run()
        assert recv.done_event.value == "one"


class TestRendezvousMatching:
    def test_rts_match_triggers_cts_and_defers_completion(self, env):
        mailbox = Mailbox(env, rank=1)
        envelope = make_envelope(env, kind=RENDEZVOUS_RTS, payload=None)
        recv = RecvRequest(env, source=0, tag=5, mailbox=mailbox)
        mailbox.post(recv)
        mailbox.deliver(envelope)
        assert recv.matched
        assert not recv.completed  # payload not yet transferred
        assert envelope.cts_event.triggered
        envelope.data_event.succeed("big-payload")
        env.run()
        assert recv.done_event.value == "big-payload"


class TestProbeAndUnpost:
    def test_probe_sees_queued_arrivals(self, env):
        mailbox = Mailbox(env, rank=1)
        assert mailbox.probe(ANY_SOURCE, ANY_TAG) is None
        mailbox.deliver(make_envelope(env, nbytes=77))
        status = mailbox.probe(0, 5)
        assert status is not None and status.nbytes == 77
        assert mailbox.probe(0, 99) is None
        # Probing is non-destructive.
        assert len(mailbox.unexpected) == 1

    def test_unpost_removes_recv(self, env):
        mailbox = Mailbox(env, rank=1)
        recv = RecvRequest(env, ANY_SOURCE, ANY_TAG, mailbox)
        mailbox.post(recv)
        recv.cancel()
        assert mailbox.posted == []
        mailbox.deliver(make_envelope(env))
        assert not recv.matched

    def test_unpost_twice_is_harmless(self, env):
        mailbox = Mailbox(env, rank=1)
        recv = RecvRequest(env, ANY_SOURCE, ANY_TAG, mailbox)
        mailbox.post(recv)
        mailbox.unpost(recv)
        mailbox.unpost(recv)
        assert mailbox.posted == []
