"""Unit tests for the network timing model."""

import pytest

from repro.mpi import MIB, Network, NetworkConfig
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


class TestNetworkConfig:
    def test_defaults_are_myrinet(self):
        cfg = NetworkConfig.myrinet2000()
        assert cfg.latency_s == pytest.approx(7e-6)
        assert cfg.bandwidth_Bps == pytest.approx(245 * MIB)

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkConfig(latency_s=-1)
        with pytest.raises(ValueError):
            NetworkConfig(bandwidth_Bps=0)
        with pytest.raises(ValueError):
            NetworkConfig(fabric_capacity=0)
        with pytest.raises(ValueError):
            NetworkConfig(eager_threshold_B=-1)

    def test_transfer_time(self):
        cfg = NetworkConfig(latency_s=1e-5, bandwidth_Bps=100 * MIB)
        assert cfg.transfer_time(0) == pytest.approx(1e-5)
        assert cfg.transfer_time(100 * MIB) == pytest.approx(1 + 1e-5)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig().serialization_time(-1)


class TestNetwork:
    def test_bad_sizes(self, env):
        with pytest.raises(ValueError):
            Network(env, 0, NetworkConfig())
        net = Network(env, 2, NetworkConfig())
        with pytest.raises(ValueError):
            net.nic(2)

    def test_transfer_advances_clock(self, env):
        cfg = NetworkConfig(latency_s=1e-3, bandwidth_Bps=1 * MIB, cpu_overhead_s=0)
        net = Network(env, 2, cfg)

        def proc():
            yield from net.transfer(0, 1, 1 * MIB)

        env.run(env.process(proc()))
        # 1 MiB serializes through TX and RX (1s each) plus latency.
        assert env.now == pytest.approx(2 + 1e-3, rel=1e-6)

    def test_loopback_is_cheap(self, env):
        cfg = NetworkConfig(latency_s=1e-3, bandwidth_Bps=1 * MIB, cpu_overhead_s=0)
        net = Network(env, 2, cfg)

        def proc():
            yield from net.transfer(0, 0, 1 * MIB)

        env.run(env.process(proc()))
        assert env.now < 0.5  # far less than the network path

    def test_tx_serializes_concurrent_sends(self, env):
        cfg = NetworkConfig(latency_s=0, bandwidth_Bps=1 * MIB, cpu_overhead_s=0)
        net = Network(env, 3, cfg)
        done = []

        def sender(dst):
            yield from net.occupy_tx(0, 1 * MIB)
            done.append((env.now, dst))

        env.process(sender(1))
        env.process(sender(2))
        env.run()
        times = sorted(t for t, _ in done)
        assert times[0] == pytest.approx(1.0)
        assert times[1] == pytest.approx(2.0)  # second waits for the NIC

    def test_rx_serializes_concurrent_receives(self, env):
        cfg = NetworkConfig(latency_s=0, bandwidth_Bps=1 * MIB, cpu_overhead_s=0)
        net = Network(env, 3, cfg)
        done = []

        def sender(src):
            yield from net.transfer(src, 0, 1 * MIB)
            done.append(env.now)

        env.process(sender(1))
        env.process(sender(2))
        env.run()
        # Each sender pays 1s TX (in parallel), then rank 0's RX channel
        # serializes the two arrivals: completions at 2s and 3s.
        assert sorted(done) == [pytest.approx(2.0), pytest.approx(3.0)]

    def test_distinct_paths_proceed_in_parallel(self, env):
        cfg = NetworkConfig(latency_s=0, bandwidth_Bps=1 * MIB, cpu_overhead_s=0)
        net = Network(env, 4, cfg)
        done = []

        def pair(src, dst):
            yield from net.transfer(src, dst, 1 * MIB)
            done.append(env.now)

        env.process(pair(0, 1))
        env.process(pair(2, 3))
        env.run()
        assert done == [pytest.approx(2.0), pytest.approx(2.0)]

    def test_fabric_capacity_limits_concurrency(self, env):
        cfg = NetworkConfig(
            latency_s=0, bandwidth_Bps=1 * MIB, cpu_overhead_s=0, fabric_capacity=1
        )
        net = Network(env, 4, cfg)
        done = []

        def pair(src, dst):
            yield from net.transfer(src, dst, 1 * MIB)
            done.append(env.now)

        env.process(pair(0, 1))
        env.process(pair(2, 3))
        env.run()
        assert sorted(done) == [pytest.approx(2.0), pytest.approx(4.0)]

    def test_nic_stats_accumulate(self, env):
        cfg = NetworkConfig(latency_s=0, bandwidth_Bps=1 * MIB, cpu_overhead_s=0)
        net = Network(env, 2, cfg)

        def proc():
            yield from net.transfer(0, 1, 1000)
            yield from net.transfer(0, 1, 2000)

        env.run(env.process(proc()))
        assert net.nic(0).stats.tx_messages == 2
        assert net.nic(0).stats.tx_bytes == 3000
        assert net.nic(1).stats.rx_bytes == 3000


class TestSharedNics:
    """Feynman-style dual-rank nodes: two ranks share one adapter."""

    def test_nic_sharing_map(self, env):
        cfg = NetworkConfig(ranks_per_nic=2)
        net = Network(env, 5, cfg)
        assert net.nic(0) is net.nic(1)
        assert net.nic(2) is net.nic(3)
        assert net.nic(4) is not net.nic(0)
        assert len(net.nics) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkConfig(ranks_per_nic=0)

    def test_node_local_transfer_skips_the_wire(self, env):
        cfg = NetworkConfig(
            latency_s=1e-3, bandwidth_Bps=1 * MIB, cpu_overhead_s=0,
            ranks_per_nic=2,
        )
        net = Network(env, 4, cfg)

        def proc():
            yield from net.transfer(0, 1, 1 * MIB)  # node-mates

        env.run(env.process(proc()))
        assert env.now < 0.5  # shared-memory path, not 2s of wire time

    def test_node_mates_contend_on_shared_nic(self, env):
        cfg = NetworkConfig(
            latency_s=0, bandwidth_Bps=1 * MIB, cpu_overhead_s=0,
            ranks_per_nic=2,
        )
        net = Network(env, 4, cfg)
        done = []

        def sender(src, dst):
            yield from net.transfer(src, dst, 1 * MIB)
            done.append(env.now)

        env.process(sender(0, 2))  # rank 0 and 1 share NIC 0
        env.process(sender(1, 3))
        env.run()
        # TX of the shared adapter serializes: 1s then 2s (plus RX).
        assert max(done) >= 2.0
