"""Unit tests for the network timing model."""

import pytest

from repro.mpi import MIB, Network, NetworkConfig
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


class TestNetworkConfig:
    def test_defaults_are_myrinet(self):
        cfg = NetworkConfig.myrinet2000()
        assert cfg.latency_s == pytest.approx(7e-6)
        assert cfg.bandwidth_Bps == pytest.approx(245 * MIB)

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkConfig(latency_s=-1)
        with pytest.raises(ValueError):
            NetworkConfig(bandwidth_Bps=0)
        with pytest.raises(ValueError):
            NetworkConfig(fabric_capacity=0)
        with pytest.raises(ValueError):
            NetworkConfig(eager_threshold_B=-1)

    def test_transfer_time(self):
        cfg = NetworkConfig(latency_s=1e-5, bandwidth_Bps=100 * MIB)
        assert cfg.transfer_time(0) == pytest.approx(1e-5)
        assert cfg.transfer_time(100 * MIB) == pytest.approx(1 + 1e-5)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig().serialization_time(-1)


class TestNetwork:
    def test_bad_sizes(self, env):
        with pytest.raises(ValueError):
            Network(env, 0, NetworkConfig())
        net = Network(env, 2, NetworkConfig())
        with pytest.raises(ValueError):
            net.nic(2)

    def test_transfer_advances_clock(self, env):
        cfg = NetworkConfig(latency_s=1e-3, bandwidth_Bps=1 * MIB, cpu_overhead_s=0)
        net = Network(env, 2, cfg)

        def proc():
            yield from net.transfer(0, 1, 1 * MIB)

        env.run(env.process(proc()))
        # 1 MiB serializes through TX and RX (1s each) plus latency.
        assert env.now == pytest.approx(2 + 1e-3, rel=1e-6)

    def test_loopback_is_cheap(self, env):
        cfg = NetworkConfig(latency_s=1e-3, bandwidth_Bps=1 * MIB, cpu_overhead_s=0)
        net = Network(env, 2, cfg)

        def proc():
            yield from net.transfer(0, 0, 1 * MIB)

        env.run(env.process(proc()))
        assert env.now < 0.5  # far less than the network path

    def test_tx_serializes_concurrent_sends(self, env):
        cfg = NetworkConfig(latency_s=0, bandwidth_Bps=1 * MIB, cpu_overhead_s=0)
        net = Network(env, 3, cfg)
        done = []

        def sender(dst):
            yield from net.occupy_tx(0, 1 * MIB)
            done.append((env.now, dst))

        env.process(sender(1))
        env.process(sender(2))
        env.run()
        times = sorted(t for t, _ in done)
        assert times[0] == pytest.approx(1.0)
        assert times[1] == pytest.approx(2.0)  # second waits for the NIC

    def test_rx_serializes_concurrent_receives(self, env):
        cfg = NetworkConfig(latency_s=0, bandwidth_Bps=1 * MIB, cpu_overhead_s=0)
        net = Network(env, 3, cfg)
        done = []

        def sender(src):
            yield from net.transfer(src, 0, 1 * MIB)
            done.append(env.now)

        env.process(sender(1))
        env.process(sender(2))
        env.run()
        # Each sender pays 1s TX (in parallel), then rank 0's RX channel
        # serializes the two arrivals: completions at 2s and 3s.
        assert sorted(done) == [pytest.approx(2.0), pytest.approx(3.0)]

    def test_distinct_paths_proceed_in_parallel(self, env):
        cfg = NetworkConfig(latency_s=0, bandwidth_Bps=1 * MIB, cpu_overhead_s=0)
        net = Network(env, 4, cfg)
        done = []

        def pair(src, dst):
            yield from net.transfer(src, dst, 1 * MIB)
            done.append(env.now)

        env.process(pair(0, 1))
        env.process(pair(2, 3))
        env.run()
        assert done == [pytest.approx(2.0), pytest.approx(2.0)]

    def test_fabric_capacity_limits_concurrency(self, env):
        cfg = NetworkConfig(
            latency_s=0, bandwidth_Bps=1 * MIB, cpu_overhead_s=0, fabric_capacity=1
        )
        net = Network(env, 4, cfg)
        done = []

        def pair(src, dst):
            yield from net.transfer(src, dst, 1 * MIB)
            done.append(env.now)

        env.process(pair(0, 1))
        env.process(pair(2, 3))
        env.run()
        assert sorted(done) == [pytest.approx(2.0), pytest.approx(4.0)]

    def test_nic_stats_accumulate(self, env):
        cfg = NetworkConfig(latency_s=0, bandwidth_Bps=1 * MIB, cpu_overhead_s=0)
        net = Network(env, 2, cfg)

        def proc():
            yield from net.transfer(0, 1, 1000)
            yield from net.transfer(0, 1, 2000)

        env.run(env.process(proc()))
        assert net.nic(0).stats.tx_messages == 2
        assert net.nic(0).stats.tx_bytes == 3000
        assert net.nic(1).stats.rx_bytes == 3000


class TestSharedNics:
    """Feynman-style dual-rank nodes: two ranks share one adapter."""

    def test_nic_sharing_map(self, env):
        cfg = NetworkConfig(ranks_per_nic=2)
        net = Network(env, 5, cfg)
        assert net.nic(0) is net.nic(1)
        assert net.nic(2) is net.nic(3)
        assert net.nic(4) is not net.nic(0)
        assert len(net.nics) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkConfig(ranks_per_nic=0)

    def test_node_local_transfer_skips_the_wire(self, env):
        cfg = NetworkConfig(
            latency_s=1e-3, bandwidth_Bps=1 * MIB, cpu_overhead_s=0,
            ranks_per_nic=2,
        )
        net = Network(env, 4, cfg)

        def proc():
            yield from net.transfer(0, 1, 1 * MIB)  # node-mates

        env.run(env.process(proc()))
        assert env.now < 0.5  # shared-memory path, not 2s of wire time

    def test_node_mates_contend_on_shared_nic(self, env):
        cfg = NetworkConfig(
            latency_s=0, bandwidth_Bps=1 * MIB, cpu_overhead_s=0,
            ranks_per_nic=2,
        )
        net = Network(env, 4, cfg)
        done = []

        def sender(src, dst):
            yield from net.transfer(src, dst, 1 * MIB)
            done.append(env.now)

        env.process(sender(0, 2))  # rank 0 and 1 share NIC 0
        env.process(sender(1, 3))
        env.run()
        # TX of the shared adapter serializes: 1s then 2s (plus RX).
        assert max(done) >= 2.0


class _ScriptedRng:
    """Deterministic stand-in for the loss stream: pops scripted draws."""

    def __init__(self, values):
        self.values = list(values)

    def random(self):
        return self.values.pop(0)


class TestNicIdentity:
    """A Nic is an adapter, not a rank (regression: shared adapters used
    to expose their index as ``.rank``)."""

    def test_nic_id_is_the_adapter_index(self, env):
        net = Network(env, 5, NetworkConfig(ranks_per_nic=2))
        assert net.nic(0).nic_id == 0
        assert net.nic(2).nic_id == 1  # ranks 2,3 share adapter 1
        assert net.nic(3).nic_id == 1
        assert net.nic(4).nic_id == 2

    def test_repr_names_the_adapter(self, env):
        net = Network(env, 4, NetworkConfig(ranks_per_nic=2))
        assert "id=1" in repr(net.nic(2))
        assert "rank" not in repr(net.nic(2))

    def test_metrics_label_by_nic_and_rank(self, env):
        from repro.obs import MetricsRegistry

        env.metrics = MetricsRegistry()
        cfg = NetworkConfig(
            latency_s=0, bandwidth_Bps=1 * MIB, cpu_overhead_s=0, ranks_per_nic=2
        )
        net = Network(env, 4, cfg)

        def proc():
            yield from net.transfer(1, 2, 1000)  # adapter 0 -> adapter 1

        env.run(env.process(proc()))
        snap = env.metrics.snapshot()
        # The shared adapter's traffic is attributed to the sending rank
        # *and* the adapter, so neither view lies.
        assert snap.counter_total("mpi.nic_tx_bytes", nic=0, rank=1) == 1000
        assert snap.counter_total("mpi.nic_rx_bytes", nic=1, rank=2) == 1000
        assert snap.counter_total("mpi.nic_tx_bytes", nic=0, rank=0) == 0


class TestFabricBackoffRelease:
    """Regression: a sender sleeping through retransmission backoff must
    not pin its fabric-capacity slot."""

    def _lossy_fabric_net(self, env, rng_values):
        from repro.faults import MessageLoss
        from repro.mpi.network import LinkFaults

        cfg = NetworkConfig(
            latency_s=0, bandwidth_Bps=1 * MIB, cpu_overhead_s=0, fabric_capacity=1
        )
        net = Network(env, 4, cfg)
        loss = MessageLoss(
            drop_prob=0.5,
            start=0.0,
            end=5.0,
            retransmit_timeout_s=10.0,
            backoff=2.0,
            max_retries=12,
        )
        net.install_faults(LinkFaults([loss], _ScriptedRng(rng_values)))
        return net

    def test_fabric_slot_released_during_backoff(self, env):
        # First crossing (A) drops; second (B) delivers.  A sleeps 10s
        # before retransmitting; B must ride the fabric meanwhile.
        net = self._lossy_fabric_net(env, [0.0, 0.9, 0.9, 0.9])
        done = {}

        def pair(name, src, dst):
            yield from net.transfer(src, dst, 1 * MIB)
            done[name] = env.now

        env.process(pair("a", 0, 1))
        env.process(pair("b", 2, 3))
        env.run()
        # B: waited for A's first (failed) attempt, then tx 1->2 + rx 2->3.
        assert done["b"] == pytest.approx(3.0)
        # A: backoff till 11, then tx 11->12 + rx 12->13 (window over).
        assert done["a"] == pytest.approx(13.0)
        assert net.faults.stats.drops == 1
        assert net.faults.stats.retransmits == 1

    def test_faulted_fabric_transfer_still_counts_budget(self, env):
        from repro.faults import MessageLoss
        from repro.mpi.network import LinkFailure, LinkFaults

        # Every crossing drops, window outlasts every retry: the per-attempt
        # slot handling must still honour the retry budget.
        cfg = NetworkConfig(
            latency_s=0, bandwidth_Bps=1 * MIB, cpu_overhead_s=0, fabric_capacity=1
        )
        net = Network(env, 2, cfg)
        # drop_prob < 1 required; the scripted stream of 0.0 draws makes
        # every crossing drop anyway.
        loss = MessageLoss(
            drop_prob=0.5,
            start=0.0,
            end=1e9,
            retransmit_timeout_s=1e-3,
            max_retries=3,
        )
        net.install_faults(LinkFaults([loss], _ScriptedRng([0.0] * 16)))

        def doomed():
            yield from net.transfer(0, 1, 1000)

        proc = env.process(doomed())
        with pytest.raises(LinkFailure):
            env.run(proc)
        assert net.faults.stats.link_failures == 1
        assert net.faults.stats.drops == 4  # initial attempt + 3 retries


class TestOverlappingLossWindows:
    """Pin the LinkFaults contract for overlapping windows: the *first
    active spec in declaration order* governs a crossing — its drop
    probability, its backoff schedule, and its retry budget — even when a
    later-declared window is also active (and even when that one is
    harsher).  MODELING.md documents this contract; changing it silently
    would change every multi-window fault plan's timing.
    """

    def _two_window_net(self, env, rng_values, first, second):
        from repro.mpi.network import LinkFaults

        cfg = NetworkConfig(latency_s=0, bandwidth_Bps=1 * MIB, cpu_overhead_s=0)
        net = Network(env, 2, cfg)
        net.install_faults(LinkFaults([first, second], _ScriptedRng(rng_values)))
        return net

    def test_first_declared_window_governs_overlap(self, env):
        from repro.faults import MessageLoss

        # Both windows active at t=0; the first has a tame 10% drop rate,
        # the second drops (almost) everything.  A draw of 0.5 would be a
        # drop under the second window but must NOT drop under the first.
        first = MessageLoss(drop_prob=0.1, start=0.0, end=10.0)
        second = MessageLoss(drop_prob=0.99, start=0.0, end=10.0)
        net = self._two_window_net(env, [0.5], first, second)

        def proc():
            yield from net.transfer(0, 1, 1000)

        env.run(env.process(proc()))
        assert net.faults.stats.drops == 0

    def test_first_active_window_sets_backoff_schedule(self, env):
        from repro.faults import MessageLoss

        # The first-declared window is over by t=0.5; the second (slow
        # retransmit timer) is the first *active* spec and must provide
        # the backoff schedule for a drop inside it.
        early = MessageLoss(
            drop_prob=0.5, start=0.0, end=0.5, retransmit_timeout_s=1e-3
        )
        late = MessageLoss(
            drop_prob=0.5, start=1.0, end=10.0, retransmit_timeout_s=3.0
        )
        net = self._two_window_net(env, [0.0, 0.9], early, late)
        done = {}

        def proc():
            yield env.timeout(2.0)  # inside the late window only
            yield from net.transfer(0, 1, 1000)
            done["t"] = env.now

        env.run(env.process(proc()))
        assert net.faults.stats.drops == 1
        # Dropped at ~2.0, retransmitted after the LATE window's 3.0 s
        # timeout (not the early window's 1 ms), delivered after that.
        assert done["t"] == pytest.approx(5.0, abs=0.01)

    def test_zero_prob_window_is_skipped(self, env):
        from repro.faults import MessageLoss

        # A drop_prob=0 window never governs: the active-spec scan skips
        # it, so the later lossy window still applies.
        inert = MessageLoss(drop_prob=0.0, start=0.0, end=10.0)
        lossy = MessageLoss(
            drop_prob=0.5, start=0.0, end=10.0, retransmit_timeout_s=1e-3
        )
        net = self._two_window_net(env, [0.0, 0.9], inert, lossy)

        def proc():
            yield from net.transfer(0, 1, 1000)

        env.run(env.process(proc()))
        assert net.faults.stats.drops == 1
        assert net.faults.stats.retransmits == 1
