"""Unit tests for Resource / PriorityResource / Container / Store."""

import pytest

from repro.sim import Container, Environment, PriorityResource, Resource, Store


@pytest.fixture
def env():
    return Environment()


class TestResource:
    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_mutual_exclusion(self, env):
        res = Resource(env, capacity=1)
        trace = []

        def user(env, name, hold):
            with res.request() as req:
                yield req
                trace.append((env.now, name, "acquired"))
                yield env.timeout(hold)
            trace.append((env.now, name, "released"))

        env.process(user(env, "a", 2))
        env.process(user(env, "b", 2))
        env.run()
        assert trace == [
            (0, "a", "acquired"),
            (2, "a", "released"),
            (2, "b", "acquired"),
            (4, "b", "released"),
        ]

    def test_capacity_two_allows_two_concurrent(self, env):
        res = Resource(env, capacity=2)
        acquired_at = []

        def user(env):
            with res.request() as req:
                yield req
                acquired_at.append(env.now)
                yield env.timeout(1)

        for _ in range(3):
            env.process(user(env))
        env.run()
        assert acquired_at == [0, 0, 1]

    def test_fifo_ordering(self, env):
        res = Resource(env, capacity=1)
        order = []

        def user(env, name, arrive):
            yield env.timeout(arrive)
            with res.request() as req:
                yield req
                order.append(name)
                yield env.timeout(10)

        for i, name in enumerate(["first", "second", "third"]):
            env.process(user(env, name, i * 0.1))
        env.run()
        assert order == ["first", "second", "third"]

    def test_counts(self, env):
        res = Resource(env, capacity=2)

        def holder(env):
            req = res.request()
            yield req
            yield env.timeout(5)
            res.release(req)

        env.process(holder(env))
        env.process(holder(env))
        env.process(holder(env))
        env.run(until=1)
        assert res.in_use == 2
        assert res.available == 0
        assert len(res.queue) == 1
        env.run()
        assert res.in_use == 0

    def test_release_unfulfilled_request_cancels(self, env):
        res = Resource(env, capacity=1)

        def holder(env):
            req = res.request()
            yield req
            yield env.timeout(10)
            res.release(req)

        def impatient(env):
            req = res.request()
            result = yield req | env.timeout(1)
            if req not in result:
                res.release(req)  # give up the queued claim
                return "gave-up"
            return "got-it"

        env.process(holder(env))
        p = env.process(impatient(env))
        assert env.run(p) == "gave-up"
        assert list(res.queue) == []


class TestPriorityResource:
    def test_priority_overrides_fifo(self, env):
        res = PriorityResource(env, capacity=1)
        order = []

        def user(env, name, prio, arrive):
            yield env.timeout(arrive)
            with res.request(priority=prio) as req:
                yield req
                order.append(name)
                yield env.timeout(10)

        env.process(user(env, "holder", 0, 0))
        env.process(user(env, "low", 5, 1))
        env.process(user(env, "high", 1, 2))
        env.run()
        assert order == ["holder", "high", "low"]

    def test_equal_priority_is_fifo(self, env):
        res = PriorityResource(env, capacity=1)
        order = []

        def user(env, name, arrive):
            yield env.timeout(arrive)
            with res.request(priority=3) as req:
                yield req
                order.append(name)
                yield env.timeout(5)

        env.process(user(env, "a", 0))
        env.process(user(env, "b", 1))
        env.process(user(env, "c", 2))
        env.run()
        assert order == ["a", "b", "c"]


class TestContainer:
    def test_init_validation(self, env):
        with pytest.raises(ValueError):
            Container(env, capacity=0)
        with pytest.raises(ValueError):
            Container(env, capacity=10, init=11)

    def test_get_blocks_until_put(self, env):
        tank = Container(env, capacity=100, init=0)
        got_at = []

        def consumer(env):
            yield tank.get(10)
            got_at.append(env.now)

        def producer(env):
            yield env.timeout(4)
            yield tank.put(10)

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got_at == [4]
        assert tank.level == 0

    def test_put_blocks_at_capacity(self, env):
        tank = Container(env, capacity=10, init=10)
        done_at = []

        def producer(env):
            yield tank.put(5)
            done_at.append(env.now)

        def consumer(env):
            yield env.timeout(2)
            yield tank.get(5)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert done_at == [2]
        assert tank.level == 10

    def test_invalid_amounts(self, env):
        tank = Container(env, capacity=10, init=5)
        with pytest.raises(ValueError):
            tank.get(0)
        with pytest.raises(ValueError):
            tank.put(-1)


class TestStore:
    def test_put_then_get(self, env):
        store = Store(env)

        def proc(env):
            yield store.put("item")
            value = yield store.get()
            return value

        assert env.run(env.process(proc(env))) == "item"

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        got = []

        def consumer(env):
            item = yield store.get()
            got.append((env.now, item))

        def producer(env):
            yield env.timeout(3)
            yield store.put("late")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [(3, "late")]

    def test_fifo_items(self, env):
        store = Store(env)

        def proc(env):
            for i in range(3):
                yield store.put(i)
            out = []
            for _ in range(3):
                out.append((yield store.get()))
            return out

        assert env.run(env.process(proc(env))) == [0, 1, 2]

    def test_filter_get(self, env):
        store = Store(env)

        def proc(env):
            for tag in ("red", "green", "blue"):
                yield store.put(tag)
            green = yield store.get(lambda item: item == "green")
            rest = [(yield store.get()), (yield store.get())]
            return green, rest

        green, rest = env.run(env.process(proc(env)))
        assert green == "green"
        assert rest == ["red", "blue"]

    def test_filter_get_blocks_until_match(self, env):
        store = Store(env)
        got = []

        def consumer(env):
            item = yield store.get(lambda i: i % 2 == 0)
            got.append((env.now, item))

        def producer(env):
            yield env.timeout(1)
            yield store.put(1)
            yield env.timeout(1)
            yield store.put(4)

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [(2, 4)]
        assert store.items == [1]

    def test_capacity_blocks_put(self, env):
        store = Store(env, capacity=1)
        done = []

        def producer(env):
            yield store.put("a")
            yield store.put("b")
            done.append(env.now)

        def consumer(env):
            yield env.timeout(5)
            yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert done == [5]

    def test_peek_is_nondestructive(self, env):
        store = Store(env)

        def proc(env):
            yield store.put(10)
            yield store.put(20)
            assert store.peek() == 10
            assert store.peek(lambda i: i > 15) == 20
            assert store.peek(lambda i: i > 99) is None
            assert len(store) == 2
            yield env.timeout(0)

        env.run(env.process(proc(env)))

    def test_two_getters_one_item(self, env):
        store = Store(env)
        winners = []

        def consumer(env, name):
            item = yield store.get()
            winners.append((name, item))

        env.process(consumer(env, "first"))
        env.process(consumer(env, "second"))

        def producer(env):
            yield env.timeout(1)
            yield store.put("only")

        env.process(producer(env))
        env.run(until=10)
        assert winners == [("first", "only")]


class TestPriorityResourceCancellation:
    def test_cancel_queued_priority_request(self, env):
        res = PriorityResource(env, capacity=1)
        order = []

        def holder(env):
            with res.request(priority=0) as req:
                yield req
                yield env.timeout(5)

        def quitter(env):
            req = res.request(priority=1)
            yield env.timeout(1)
            req.cancel()
            order.append("quit")

        def patient(env):
            yield env.timeout(0.5)
            with res.request(priority=2) as req:
                yield req
                order.append(("patient", env.now))

        env.process(holder(env))
        env.process(quitter(env))
        env.process(patient(env))
        env.run()
        # The cancelled priority-1 request never runs; priority-2 gets the
        # slot when the holder releases at t=5.
        assert ("patient", 5.0) in order
        assert "quit" in order

    def test_release_grants_highest_priority_waiter(self, env):
        res = PriorityResource(env, capacity=1)
        got = []

        def user(env, name, prio, arrive):
            yield env.timeout(arrive)
            with res.request(priority=prio) as req:
                yield req
                got.append(name)
                yield env.timeout(1)

        env.process(user(env, "holder", 0, 0))
        env.process(user(env, "low1", 9, 0.1))
        env.process(user(env, "low2", 9, 0.2))
        env.process(user(env, "high", 1, 0.3))
        env.run()
        assert got == ["holder", "high", "low1", "low2"]


class TestContainerOrdering:
    def test_fifo_get_waiters(self, env):
        tank = Container(env, capacity=100, init=0)
        served = []

        def consumer(env, name, amount):
            yield tank.get(amount)
            served.append(name)

        def producer(env):
            yield env.timeout(1)
            yield tank.put(30)

        env.process(consumer(env, "first", 10))
        env.process(consumer(env, "second", 10))
        env.process(producer(env))
        env.run()
        assert served == ["first", "second"]

    def test_big_get_blocks_later_small_get(self, env):
        """Strict FIFO: a large waiting get holds back smaller ones."""
        tank = Container(env, capacity=100, init=5)
        served = []

        def big(env):
            yield tank.get(50)
            served.append("big")

        def small(env):
            yield env.timeout(0.1)
            yield tank.get(1)
            served.append("small")

        def producer(env):
            yield env.timeout(1)
            yield tank.put(50)

        env.process(big(env))
        env.process(small(env))
        env.process(producer(env))
        env.run(until=5)
        assert served == ["big", "small"]


class _ReferenceStore:
    """The seed's Store dispatch: a full getters × items fixpoint rescan
    after every operation.  O(getters × items) per op but obviously
    correct — the optimized targeted-rescan Store must grant in exactly
    this order.
    """

    def __init__(self, capacity=float("inf")):
        self.capacity = capacity
        self.items = []
        self.getters = []  # (gid, filter)
        self.putters = []  # (pid, item)
        self.grants = []   # ("put", pid) / ("get", gid, item) in grant order

    def put(self, pid, item):
        self.putters.append((pid, item))
        self._dispatch()

    def get(self, gid, flt=None):
        self.getters.append((gid, flt))
        self._dispatch()

    def _dispatch(self):
        progressed = True
        while progressed:
            progressed = False
            while self.putters and len(self.items) < self.capacity:
                pid, item = self.putters.pop(0)
                self.items.append(item)
                self.grants.append(("put", pid))
                progressed = True
            remaining = []
            for gid, flt in self.getters:
                for idx, item in enumerate(self.items):
                    if flt is None or flt(item):
                        self.items.pop(idx)
                        self.grants.append(("get", gid, item))
                        progressed = True
                        break
                else:
                    remaining.append((gid, flt))
            self.getters = remaining


class TestStoreMatchesReference:
    """Property test: random op sequences grant identically to the
    reference fixpoint dispatch (order included)."""

    FILTERS = {
        None: None,
        "even": lambda i: i % 2 == 0,
        "big": lambda i: i >= 5,
        "never": lambda i: False,
    }

    def _run_sequence(self, ops, capacity):
        import itertools

        env = Environment()
        store = Store(env, capacity=capacity)
        grants = []

        def do_put(env, pid, item):
            yield store.put(item)
            grants.append(("put", pid))

        def do_get(env, gid, flt):
            item = yield store.get(flt)
            grants.append(("get", gid, item))

        ref = _ReferenceStore(capacity)
        pid = itertools.count()
        gid = itertools.count()
        for op, arg in ops:
            if op == "put":
                i = next(pid)
                env.process(do_put(env, i, arg))
                env.run()
                ref.put(i, arg)
            else:
                i = next(gid)
                env.process(do_get(env, i, self.FILTERS[arg]))
                env.run()
                ref.get(i, self.FILTERS[arg])
        return grants, ref.grants, sorted(store.items), sorted(ref.items)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_ops_grant_identically(self, seed):
        import random

        rng = random.Random(seed)
        capacity = rng.choice([2, 3, float("inf")])
        ops = []
        for _ in range(60):
            if rng.random() < 0.55:
                ops.append(("put", rng.randrange(10)))
            else:
                ops.append(("get", rng.choice([None, "even", "big", "never"])))
        got, want, items_got, items_want = self._run_sequence(ops, capacity)
        assert got == want
        assert items_got == items_want


class TestResourceFifoProperty:
    def test_grant_order_is_arrival_order_under_churn(self, env):
        """Random request/release interleavings grant strictly FIFO."""
        import random

        rng = random.Random(3)
        res = Resource(env, capacity=2)
        granted = []

        def user(env, name):
            yield env.timeout(round(rng.uniform(0, 2), 3))
            with res.request() as req:
                arrival = (env.now, name)
                yield req
                granted.append(arrival)
                yield env.timeout(round(rng.uniform(0.1, 1), 3))

        for i in range(40):
            env.process(user(env, i))
        env.run()
        # Arrival order == (arrival time, spawn order) here because ties
        # in arrival time queue in process-creation order.
        assert granted == sorted(granted)
        assert len(granted) == 40


class TestInterruptSafety:
    """Interrupting a process must never leak resource slots or queue spots."""

    def test_interrupted_waiter_leaves_the_queue(self, env):
        from repro.sim import Interrupt

        res = Resource(env, capacity=1)
        acquired = []

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(10)

        def impatient(env):
            try:
                with res.request() as req:
                    yield req
                    acquired.append("impatient")
            except Interrupt:
                pass

        def late(env):
            yield env.timeout(2)
            with res.request() as req:
                yield req
                acquired.append(("late", env.now))

        env.process(holder(env))
        victim = env.process(impatient(env))
        env.process(late(env))

        def killer(env):
            yield env.timeout(1)
            victim.interrupt("changed my mind")

        env.process(killer(env))
        env.run()
        # The interrupted waiter's ghost request must not block the line:
        # "late" gets the slot the moment the holder releases.
        assert acquired == [("late", 10)]
        assert res.in_use == 0
        assert len(res.queue) == 0

    def test_interrupted_holder_releases_on_exit(self, env):
        from repro.sim import Interrupt

        res = Resource(env, capacity=1)
        times = []

        def holder(env):
            try:
                with res.request() as req:
                    yield req
                    yield env.timeout(100)
            except Interrupt as exc:
                times.append(("interrupted", env.now, exc.cause))

        def waiter(env):
            with res.request() as req:
                yield req
                times.append(("acquired", env.now))

        victim = env.process(holder(env))
        env.process(waiter(env))

        def killer(env):
            yield env.timeout(3)
            victim.interrupt("preempted")

        env.process(killer(env))
        env.run()
        assert times == [("interrupted", 3, "preempted"), ("acquired", 3)]
        assert res.in_use == 0
