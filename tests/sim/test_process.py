"""Unit tests for process semantics: waiting, returning, interrupting."""

import pytest

from repro.sim import Environment, Interrupt, SimulationError


@pytest.fixture
def env():
    return Environment()


class TestProcessBasics:
    def test_return_value(self, env):
        def proc(env):
            yield env.timeout(1)
            return 99

        assert env.run(env.process(proc(env))) == 99

    def test_non_generator_rejected(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_process_waits_on_process(self, env):
        def child(env):
            yield env.timeout(3)
            return "child-result"

        def parent(env):
            value = yield env.process(child(env))
            return (env.now, value)

        assert env.run(env.process(parent(env))) == (3.0, "child-result")

    def test_yield_none_is_noop_scheduling_point(self, env):
        def proc(env):
            yield None
            return env.now

        assert env.run(env.process(proc(env))) == 0.0

    def test_yield_non_event_raises(self, env):
        def proc(env):
            yield 42

        with pytest.raises(SimulationError, match="non-event"):
            env.run(env.process(proc(env)))

    def test_exception_in_process_propagates(self, env):
        def proc(env):
            yield env.timeout(1)
            raise KeyError("inner failure")

        with pytest.raises(KeyError):
            env.run(env.process(proc(env)))

    def test_exception_propagates_to_waiting_parent(self, env):
        def child(env):
            yield env.timeout(1)
            raise RuntimeError("child blew up")

        def parent(env):
            try:
                yield env.process(child(env))
            except RuntimeError as exc:
                return f"caught: {exc}"

        assert env.run(env.process(parent(env))) == "caught: child blew up"

    def test_is_alive(self, env):
        def proc(env):
            yield env.timeout(2)

        p = env.process(proc(env))
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_active_process_tracking(self, env):
        observed = []

        def proc(env):
            observed.append(env.active_process)
            yield env.timeout(1)

        p = env.process(proc(env))
        env.run()
        assert observed == [p]
        assert env.active_process is None

    def test_processes_interleave_by_time(self, env):
        trace = []

        def ticker(env, name, period):
            for _ in range(3):
                yield env.timeout(period)
                trace.append((env.now, name))

        env.process(ticker(env, "a", 2))
        env.process(ticker(env, "b", 3))
        env.run()
        # At t=6 both fire; "b" scheduled its timeout earlier (at t=3)
        # than "a" did (at t=4), so FIFO insertion order puts "b" first.
        assert trace == [
            (2, "a"),
            (3, "b"),
            (4, "a"),
            (6, "b"),
            (6, "a"),
            (9, "b"),
        ]

    def test_name_defaults_to_generator_name(self, env):
        def my_actor(env):
            yield env.timeout(1)

        p = env.process(my_actor(env))
        assert p.name == "my_actor"
        p2 = env.process(my_actor(env), name="explicit")
        assert p2.name == "explicit"


class TestInterrupts:
    def test_interrupt_delivers_cause(self, env):
        def victim(env):
            try:
                yield env.timeout(100)
            except Interrupt as interrupt:
                return (env.now, interrupt.cause)

        def attacker(env, victim_proc):
            yield env.timeout(5)
            victim_proc.interrupt("stop it")

        v = env.process(victim(env))
        env.process(attacker(env, v))
        assert env.run(v) == (5.0, "stop it")

    def test_interrupted_process_can_continue(self, env):
        def victim(env):
            try:
                yield env.timeout(100)
            except Interrupt:
                pass
            yield env.timeout(1)
            return env.now

        def attacker(env, v):
            yield env.timeout(2)
            v.interrupt()

        v = env.process(victim(env))
        env.process(attacker(env, v))
        assert env.run(v) == 3.0

    def test_interrupt_dead_process_raises(self, env):
        def quick(env):
            yield env.timeout(1)

        def late(env, target):
            yield env.timeout(5)
            with pytest.raises(SimulationError):
                target.interrupt()

        q = env.process(quick(env))
        env.process(late(env, q))
        env.run()

    def test_self_interrupt_rejected(self, env):
        def proc(env):
            with pytest.raises(SimulationError):
                env.active_process.interrupt()
            yield env.timeout(1)

        env.run(env.process(proc(env)))

    def test_interrupt_does_not_consume_target_event(self, env):
        """The interrupted wait's event still fires for other waiters."""
        shared = env.timeout(10, value="shared")
        results = []

        def waiter_a(env):
            try:
                yield shared
            except Interrupt:
                results.append(("a-interrupted", env.now))

        def waiter_b(env):
            value = yield shared
            results.append((value, env.now))

        def attacker(env, a):
            yield env.timeout(1)
            a.interrupt()

        a = env.process(waiter_a(env))
        env.process(waiter_b(env))
        env.process(attacker(env, a))
        env.run()
        assert ("a-interrupted", 1.0) in results
        assert ("shared", 10.0) in results


class TestInterruptErgonomics:
    def test_cause_rides_on_args(self):
        exc = Interrupt("why")
        assert exc.cause == "why"
        assert Interrupt().cause is None

    def test_repr_shows_the_cause(self):
        exc = Interrupt({"rank": 3})
        assert repr(exc) == "Interrupt({'rank': 3})"
        assert str(exc) == repr(exc)

    def test_cause_object_survives_the_throw(self):
        env = Environment()
        seen = []

        class Fault:
            pass

        fault = Fault()

        def sleeper(env):
            try:
                yield env.timeout(100)
            except Interrupt as exc:
                seen.append(exc.cause)

        victim = env.process(sleeper(env))

        def killer(env):
            yield env.timeout(1)
            victim.interrupt(fault)

        env.process(killer(env))
        env.run()
        assert seen == [fault]
