"""Unit tests for the DES event layer."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    SimulationError,
    Timeout,
)


@pytest.fixture
def env():
    return Environment()


class TestEventLifecycle:
    def test_fresh_event_is_untriggered(self, env):
        ev = env.event()
        assert not ev.triggered
        assert not ev.processed

    def test_value_unavailable_before_trigger(self, env):
        ev = env.event()
        with pytest.raises(SimulationError):
            _ = ev.value
        with pytest.raises(SimulationError):
            _ = ev.ok

    def test_succeed_sets_value(self, env):
        ev = env.event()
        ev.succeed(42)
        assert ev.triggered
        assert ev.ok
        assert ev.value == 42

    def test_succeed_twice_raises(self, env):
        ev = env.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self, env):
        ev = env.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_fail_then_succeed_raises(self, env):
        ev = env.event()
        ev.fail(RuntimeError("boom"))
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_callbacks_invoked_on_processing(self, env):
        ev = env.event()
        seen = []
        ev.callbacks.append(lambda e: seen.append(e.value))
        ev.succeed("hello")
        env.run()
        assert seen == ["hello"]
        assert ev.processed

    def test_unhandled_failure_crashes_run(self, env):
        ev = env.event()
        ev.fail(ValueError("nobody caught me"))
        with pytest.raises(ValueError, match="nobody caught me"):
            env.run()

    def test_trigger_copies_state(self, env):
        src = env.event()
        dst = env.event()
        src.succeed(7)
        dst.trigger(src)
        env.run()
        assert dst.value == 7


class TestTimeout:
    def test_timeout_advances_clock(self, env):
        env.timeout(5.0)
        env.run()
        assert env.now == pytest.approx(5.0)

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_nan_delay_rejected(self, env):
        """``delay < 0`` is False for NaN — the old check let NaN through
        and corrupted the heap; the queue must stay untouched."""
        with pytest.raises(ValueError):
            env.timeout(float("nan"))
        assert env.queue_size == 0

    def test_inf_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(float("inf"))
        assert env.queue_size == 0

    def test_timeout_value_passed_through(self, env):
        def proc(env):
            got = yield env.timeout(1, value="payload")
            return got

        assert env.run(env.process(proc(env))) == "payload"

    def test_zero_delay_fires_at_current_time(self, env):
        t = env.timeout(0)
        env.run()
        assert t.processed
        assert env.now == 0.0

    def test_timeouts_fire_in_order(self, env):
        order = []
        for d in (3, 1, 2):
            t = Timeout(env, d, value=d)
            t.callbacks.append(lambda e: order.append(e.value))
        env.run()
        assert order == [1, 2, 3]


class TestConditions:
    def test_allof_waits_for_every_event(self, env):
        t1, t2 = env.timeout(1, value="a"), env.timeout(2, value="b")

        def proc(env):
            result = yield env.all_of([t1, t2])
            return (env.now, result.values())

        now, values = env.run(env.process(proc(env)))
        assert now == pytest.approx(2.0)
        assert values == ["a", "b"]

    def test_anyof_fires_on_first(self, env):
        t1, t2 = env.timeout(5), env.timeout(1, value="fast")

        def proc(env):
            result = yield env.any_of([t1, t2])
            return (env.now, t2 in result)

        now, has_fast = env.run(env.process(proc(env)))
        assert now == pytest.approx(1.0)
        assert has_fast

    def test_and_operator(self, env):
        def proc(env):
            yield env.timeout(1) & env.timeout(2)
            return env.now

        assert env.run(env.process(proc(env))) == pytest.approx(2.0)

    def test_or_operator(self, env):
        def proc(env):
            yield env.timeout(1) | env.timeout(10)
            return env.now

        assert env.run(env.process(proc(env))) == pytest.approx(1.0)

    def test_empty_anyof_fires_immediately(self, env):
        def proc(env):
            yield AnyOf(env, [])
            return env.now

        assert env.run(env.process(proc(env))) == 0.0

    def test_empty_allof_fires_immediately(self, env):
        def proc(env):
            yield AllOf(env, [])
            return env.now

        assert env.run(env.process(proc(env))) == 0.0

    def test_condition_propagates_failure(self, env):
        bad = env.event()

        def failer(env):
            yield env.timeout(1)
            bad.fail(RuntimeError("inner"))

        def waiter(env):
            with pytest.raises(RuntimeError, match="inner"):
                yield env.all_of([bad, env.timeout(5)])
            return "handled"

        env.process(failer(env))
        assert env.run(env.process(waiter(env))) == "handled"

    def test_anyof_sibling_failure_after_trigger_is_defused(self, env):
        """Regression: a failed sub-event processed *after* its AnyOf
        already fired must not crash the run.

        Two events share a timestamp: the first (by eid) succeeds and
        satisfies the AnyOf; the second fails.  When the failure is
        processed, the condition is already triggered — its _check must
        still defuse the failure, because the condition is that event's
        only waiter.  The old kernel returned early without defusing and
        the environment re-raised the failure as unhandled, killing the
        whole simulation.
        """
        good = env.event()
        bad = env.event()

        def trigger(env):
            yield env.timeout(1)
            # Same timestamp, good first in eid order.
            good.succeed("fine")
            bad.fail(RuntimeError("sibling"))

        def waiter(env):
            result = yield env.any_of([good, bad])
            return result[good]

        env.process(trigger(env))
        p = env.process(waiter(env))
        # Crashes with the sibling's RuntimeError on the old kernel.
        assert env.run(p) == "fine"

    def test_anyof_sibling_failure_operator_form(self, env):
        """Same contract through the ``|`` operator and reversed order."""
        good = env.event()
        bad = env.event()

        def trigger(env):
            yield env.timeout(1)
            good.succeed(1)
            bad.fail(ValueError("nope"))

        def waiter(env):
            got = yield good | bad
            return good in got

        env.process(trigger(env))
        assert env.run(env.process(waiter(env))) is True

    def test_condition_value_mapping(self, env):
        t1 = env.timeout(1, value=10)
        t2 = env.timeout(2, value=20)

        def proc(env):
            result = yield env.all_of([t1, t2])
            return result[t1], result[t2]

        assert env.run(env.process(proc(env))) == (10, 20)

    def test_mixed_environment_rejected(self, env):
        other = Environment()
        with pytest.raises(ValueError):
            AllOf(env, [env.timeout(1), other.timeout(1)])


class TestRunSemantics:
    def test_run_until_time(self, env):
        ticks = []

        def clock(env):
            while True:
                yield env.timeout(1)
                ticks.append(env.now)

        env.process(clock(env))
        env.run(until=3.5)
        assert ticks == [1, 2, 3]
        assert env.now == pytest.approx(3.5)

    def test_run_until_past_time_rejected(self, env):
        env.timeout(10)
        env.run()
        with pytest.raises(ValueError):
            env.run(until=5)

    def test_run_empty_returns_none(self, env):
        assert env.run() is None

    def test_run_until_never_triggered_event_raises(self, env):
        ev = env.event()
        env.timeout(1)
        with pytest.raises(SimulationError):
            env.run(until=ev)

    def test_run_until_already_processed_event(self, env):
        ev = env.event()
        ev.succeed("early")
        env.run()
        assert env.run(until=ev) == "early"

    def test_peek(self, env):
        assert env.peek() == float("inf")
        env.timeout(4.2)
        assert env.peek() == pytest.approx(4.2)
