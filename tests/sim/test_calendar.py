"""CalendarQueue unit tests and heap-equivalence properties.

The calendar scheduler is only correct if it is *invisible*: a run under
``scheduler="calendar"`` must process events in exactly the heap's
``(time, priority, eid)`` order.  The property tests here drain randomized
workloads through both backends and demand identical traces.
"""

import heapq
import random

import pytest

from repro.sim import CalendarQueue, Environment, SCHEDULERS
from repro.sim.calendar import MIN_BUCKETS


class _Ev:
    """Stand-in payload (never compared: eid is unique per entry)."""

    __slots__ = ()


def _drain(cal):
    out = []
    while len(cal):
        batch = cal.pop_batch()
        assert batch == sorted(batch)
        # All entries of one batch share the minimum timestamp.
        assert len({e[0] for e in batch}) == 1
        out.extend(batch)
    return out


class TestCalendarQueue:
    def test_empty_pop(self):
        cal = CalendarQueue()
        assert cal.pop_batch() == []
        assert cal.peek_time() == float("inf")
        assert len(cal) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CalendarQueue(width=0.0)
        with pytest.raises(ValueError):
            CalendarQueue(nbuckets=0)

    def test_single_entry(self):
        cal = CalendarQueue()
        entry = (3.5, 1, 0, _Ev())
        cal.push(entry)
        assert cal.peek_time() == 3.5
        assert cal.pop_batch() == [entry]
        assert len(cal) == 0

    def test_batch_groups_equal_times(self):
        cal = CalendarQueue()
        ev = _Ev()
        cal.push((1.0, 1, 2, ev))
        cal.push((2.0, 1, 3, ev))
        cal.push((1.0, 0, 1, ev))
        cal.push((1.0, 1, 0, ev))
        batch = cal.pop_batch()
        assert [e[:3] for e in batch] == [(1.0, 0, 1), (1.0, 1, 0), (1.0, 1, 2)]
        assert [e[:3] for e in cal.pop_batch()] == [(2.0, 1, 3)]

    def test_sorted_drain_random(self):
        rng = random.Random(7)
        ev = _Ev()
        entries = [
            (round(rng.uniform(0, 100), 3), rng.choice((0, 1)), eid, ev)
            for eid in range(500)
        ]
        cal = CalendarQueue()
        for entry in entries:
            cal.push(entry)
        assert _drain(cal) == sorted(entries, key=lambda e: e[:3])

    def test_resize_up_and_down(self):
        cal = CalendarQueue()
        ev = _Ev()
        for eid in range(200):
            cal.push((float(eid), 1, eid, ev))
        assert cal.resizes > 0
        assert cal._nbuckets > MIN_BUCKETS
        drained = _drain(cal)
        assert [e[2] for e in drained] == list(range(200))
        # Draining shrank the structure back down.
        assert cal._nbuckets == MIN_BUCKETS

    def test_interleaved_push_pop_monotone(self):
        """Pushes between pops (never into the past) stay ordered."""
        rng = random.Random(21)
        cal = CalendarQueue()
        ev = _Ev()
        eid = 0
        now = 0.0
        for _ in range(50):
            cal.push((now + rng.uniform(0, 10), 1, eid, ev))
            eid += 1
        popped = []
        while len(cal):
            batch = cal.pop_batch()
            popped.extend(batch)
            now = batch[0][0]
            if rng.random() < 0.7:
                for _ in range(rng.randrange(3)):
                    cal.push((now + rng.uniform(0.001, 10), 1, eid, ev))
                    eid += 1
        times = [e[0] for e in popped]
        assert times == sorted(times)

    def test_sparse_far_future_fallback(self):
        """Events many 'years' ahead trigger the direct-min fallback."""
        cal = CalendarQueue(width=0.001)
        ev = _Ev()
        cal.push((0.0005, 1, 0, ev))
        cal.push((500.0, 1, 1, ev))
        cal.push((1e6, 1, 2, ev))
        assert [e[2] for e in _drain(cal)] == [0, 1, 2]

    def test_push_into_gap_after_resize(self):
        """Regression: a resize must not anchor the scan ahead of times
        the caller may still push.

        Pushing a far cluster triggers a grow-resize; the scan anchor must
        stay at the last *popped* time (here: nothing popped, so 0), not
        jump to the pending minimum — a later push into the gap below that
        minimum is legal and must still come out first.
        """
        cal = CalendarQueue()
        ev = _Ev()
        for eid in range(2 * MIN_BUCKETS + 4):
            cal.push((100.0 + eid, 1, eid, ev))
        assert cal.resizes >= 1
        cal.push((1.0, 1, 999, ev))
        times = [e[0] for e in _drain(cal)]
        assert times[0] == 1.0
        assert times == sorted(times)

    def test_push_into_gap_after_pop_resize(self):
        """Same property across a shrink-resize triggered by a pop: pushes
        between the popped time and the pending minimum stay ordered."""
        rng = random.Random(7)
        cal = CalendarQueue()
        ev = _Ev()
        eid = 0
        # Grow well past MIN_BUCKETS so the drain forces shrink-resizes.
        for _ in range(200):
            cal.push((rng.uniform(0, 50), 1, eid, ev))
            eid += 1
        popped = []
        while len(cal):
            batch = cal.pop_batch()
            popped.extend(batch)
            now = batch[0][0]
            # Push just above the clock — typically far below the pending
            # minimum late in the drain, exercising the gap.
            if rng.random() < 0.5:
                cal.push((now + rng.uniform(1e-6, 0.01), 1, eid, ev))
                eid += 1
        times = [e[0] for e in popped]
        assert times == sorted(times)

    def test_identical_times_mass(self):
        """Degenerate width estimation: everything at one timestamp."""
        cal = CalendarQueue()
        ev = _Ev()
        for eid in range(100):
            cal.push((5.0, 1, eid, ev))
        batch = cal.pop_batch()
        assert len(batch) == 100
        assert [e[2] for e in batch] == list(range(100))
        assert len(cal) == 0


class TestSchedulerEquivalence:
    """heap and calendar environments must be event-for-event identical."""

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError):
            Environment(scheduler="fifo")

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_basic_run(self, scheduler):
        env = Environment(scheduler=scheduler)
        trace = []

        def proc(env, name, delays):
            for d in delays:
                yield env.timeout(d)
                trace.append((env.now, name))

        env.process(proc(env, "a", [1, 2, 3]))
        env.process(proc(env, "b", [2, 2, 2]))
        env.run()
        assert trace == [
            (1, "a"), (2, "b"), (3, "a"), (4, "b"), (6, "a"), (6, "b")
        ]

    @staticmethod
    def _mixed_workload(env, trace, seed):
        """Timers, same-time collisions, zero delays, stores, interrupts."""
        from repro.sim import Store

        rng = random.Random(seed)
        store = Store(env)

        def timer(env, name):
            for _ in range(rng.randrange(1, 6)):
                yield env.timeout(round(rng.uniform(0, 5), 1))
                trace.append((env.now, "t", name))

        def producer(env):
            for i in range(10):
                yield env.timeout(0.5)
                yield store.put(i)

        def consumer(env, name):
            for _ in range(5):
                item = yield store.get()
                trace.append((env.now, "c", name, item))
                yield env.timeout(0)  # zero-delay cascade

        def waiter(env):
            t1 = env.timeout(2.0, "x")
            t2 = env.timeout(2.0, "y")
            got = yield t1 | t2
            trace.append((env.now, "w", len(got.events)))

        for i in range(8):
            env.process(timer(env, i))
        env.process(producer(env))
        env.process(consumer(env, "c1"))
        env.process(consumer(env, "c2"))
        env.process(waiter(env))

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_mixed_workload_identical(self, seed):
        traces = {}
        for scheduler in SCHEDULERS:
            env = Environment(scheduler=scheduler)
            trace = []
            self._mixed_workload(env, trace, seed)
            env.run()
            traces[scheduler] = (trace, env.now, next(env._eid))
        assert traces["heap"] == traces["calendar"]

    @pytest.mark.parametrize("seed", [11, 12])
    def test_resumable_run_until_identical(self, seed):
        """Stopping and resuming at times must not diverge the backends."""
        traces = {}
        for scheduler in SCHEDULERS:
            env = Environment(scheduler=scheduler)
            trace = []
            self._mixed_workload(env, trace, seed)
            env.run(until=1.5)
            env.run(until=3.0)
            env.run()
            traces[scheduler] = (trace, env.now, next(env._eid))
        assert traces["heap"] == traces["calendar"]

    def test_urgent_mid_batch(self):
        """A process started from within a batch (URGENT init) runs at the
        same position under both backends."""
        traces = {}
        for scheduler in SCHEDULERS:
            env = Environment(scheduler=scheduler)
            trace = []

            def child(env):
                trace.append((env.now, "child"))
                yield env.timeout(1)
                trace.append((env.now, "child-end"))

            def spawner(env):
                yield env.timeout(2)
                trace.append((env.now, "spawn"))
                env.process(child(env))
                yield env.timeout(0)
                trace.append((env.now, "after"))

            def bystander(env):
                yield env.timeout(2)
                trace.append((env.now, "bystander"))

            env.process(spawner(env))
            env.process(bystander(env))
            env.run()
            traces[scheduler] = trace
        assert traces["heap"] == traces["calendar"]

    def test_queue_size_and_peek(self):
        env = Environment(scheduler="calendar")
        assert env.peek() == float("inf")
        env.timeout(5)
        env.timeout(1)
        assert env.queue_size == 2
        assert env.peek() == 1.0
