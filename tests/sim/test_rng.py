"""Tests for deterministic path-addressed random streams."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sim import RandomStreams


class TestRandomStreams:
    def test_same_path_same_stream(self):
        a = RandomStreams(7).stream("result", 3, 5).random(8)
        b = RandomStreams(7).stream("result", 3, 5).random(8)
        np.testing.assert_array_equal(a, b)

    def test_different_paths_differ(self):
        a = RandomStreams(7).stream("result", 3, 5).random(8)
        b = RandomStreams(7).stream("result", 3, 6).random(8)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("x").random(8)
        b = RandomStreams(2).stream("x").random(8)
        assert not np.array_equal(a, b)

    def test_creation_order_is_irrelevant(self):
        rs = RandomStreams(11)
        first = rs.stream("a").random(4)
        _ = rs.stream("b").random(4)
        again = rs.stream("a").random(4)
        np.testing.assert_array_equal(first, again)

    def test_string_vs_int_path_elements_distinct(self):
        rs = RandomStreams(5)
        a = rs.stream(1).random(4)
        b = rs.stream("1").random(4)
        assert not np.array_equal(a, b)

    def test_spawn_is_deterministic(self):
        a = RandomStreams(3).spawn("sub").stream("x").random(4)
        b = RandomStreams(3).spawn("sub").stream("x").random(4)
        np.testing.assert_array_equal(a, b)

    def test_spawn_differs_from_root(self):
        root = RandomStreams(3)
        a = root.stream("x").random(4)
        b = root.spawn("sub").stream("x").random(4)
        assert not np.array_equal(a, b)

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RandomStreams("seed")  # type: ignore[arg-type]

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        path=st.lists(
            st.one_of(st.integers(0, 10_000), st.text(max_size=8)),
            min_size=1,
            max_size=4,
        ),
    )
    def test_property_reproducible(self, seed, path):
        a = RandomStreams(seed).stream(*path).integers(0, 1 << 30, size=4)
        b = RandomStreams(seed).stream(*path).integers(0, 1 << 30, size=4)
        np.testing.assert_array_equal(a, b)
