"""Environment edge cases: scheduling, stepping, introspection."""

import pytest

from repro.sim import EmptySchedule, Environment, SimulationError


@pytest.fixture
def env():
    return Environment()


class TestScheduling:
    def test_initial_time(self):
        env = Environment(initial_time=5.0)
        assert env.now == 5.0
        env.timeout(1)
        env.run()
        assert env.now == 6.0

    def test_schedule_in_the_past_rejected(self, env):
        event = env.event()
        with pytest.raises(SimulationError):
            env.schedule(event, delay=-1)

    def test_schedule_nan_delay_rejected(self, env):
        """A NaN timestamp breaks heapq's ordering invariant and silently
        corrupts the event queue — it must be rejected at the door."""
        event = env.event()
        with pytest.raises(SimulationError):
            env.schedule(event, delay=float("nan"))
        assert env.queue_size == 0

    def test_schedule_inf_delay_rejected(self, env):
        event = env.event()
        with pytest.raises(SimulationError):
            env.schedule(event, delay=float("inf"))
        assert env.queue_size == 0

    def test_run_until_nan_rejected(self, env):
        env.timeout(1)
        with pytest.raises(ValueError):
            env.run(until=float("nan"))

    def test_step_on_empty_queue(self, env):
        with pytest.raises(EmptySchedule):
            env.step()

    def test_queue_size(self, env):
        assert env.queue_size == 0
        env.timeout(1)
        env.timeout(2)
        assert env.queue_size == 2
        env.run()
        assert env.queue_size == 0

    def test_manual_stepping(self, env):
        seen = []
        for delay in (3, 1, 2):
            env.timeout(delay, value=delay).callbacks.append(
                lambda e: seen.append(e.value)
            )
        env.step()
        assert seen == [1]
        assert env.now == 1
        env.step()
        env.step()
        assert seen == [1, 2, 3]

    def test_repr(self, env):
        env.timeout(1)
        text = repr(env)
        assert "Environment" in text and "queued=1" in text


class TestSameTimeOrdering:
    def test_priority_beats_insertion(self, env):
        """URGENT events at a timestamp run before NORMAL ones regardless
        of insertion order (process initialisation relies on this)."""
        from repro.sim.events import NORMAL, URGENT

        order = []
        normal = env.event()
        normal._ok, normal._value = True, "normal"
        urgent = env.event()
        urgent._ok, urgent._value = True, "urgent"
        env.schedule(normal, priority=NORMAL)
        env.schedule(urgent, priority=URGENT)
        normal.callbacks.append(lambda e: order.append(e.value))
        urgent.callbacks.append(lambda e: order.append(e.value))
        env.run()
        assert order == ["urgent", "normal"]

    def test_fifo_within_priority(self, env):
        order = []
        for name in ("a", "b", "c"):
            t = env.timeout(1, value=name)
            t.callbacks.append(lambda e: order.append(e.value))
        env.run()
        assert order == ["a", "b", "c"]


class TestRunUntilFailedEvent:
    """run(until=event) must defuse a failed event in both orders.

    When the awaited event fails *during* the run, _stop_simulation
    defuses it before re-raising (the caller took responsibility by
    receiving the exception).  Regression: the already-processed branch
    re-raised *without* defusing — harmless in isolation, but
    inconsistent, and it left the event looking unhandled to any later
    audit of the object.
    """

    @staticmethod
    def _failing_event(env):
        bad = env.event()

        def failer(env):
            yield env.timeout(1)
            bad.fail(RuntimeError("boom"))

        env.process(failer(env))
        return bad

    def test_failure_during_run(self, env):
        bad = self._failing_event(env)
        with pytest.raises(RuntimeError, match="boom"):
            env.run(until=bad)
        assert bad._defused

    def test_failure_already_processed(self, env):
        bad = self._failing_event(env)
        with pytest.raises(RuntimeError, match="boom"):
            env.run(until=bad)
        # Second run on the now-processed failed event: same behaviour,
        # and the event stays defused.
        with pytest.raises(RuntimeError, match="boom"):
            env.run(until=bad)
        assert bad._defused

    def test_already_processed_defuses_fresh_reference(self, env):
        """A failed event processed while *another* waiter held it still
        defuses when later passed to run(until=...)."""
        bad = self._failing_event(env)

        def watcher(env):
            try:
                yield bad
            except RuntimeError:
                return "saw it"

        assert env.run(env.process(watcher(env))) == "saw it"
        with pytest.raises(RuntimeError, match="boom"):
            env.run(until=bad)
        assert bad._defused


class TestRunReturnValues:
    def test_run_returns_event_value(self, env):
        def proc(env):
            yield env.timeout(1)
            return {"answer": 42}

        assert env.run(env.process(proc(env))) == {"answer": 42}

    def test_run_until_float_accepts_int(self, env):
        env.timeout(10)
        env.run(until=5)
        assert env.now == 5.0

    def test_nested_processes_chain_values(self, env):
        def leaf(env):
            yield env.timeout(1)
            return 1

        def middle(env):
            value = yield env.process(leaf(env))
            return value + 1

        def root(env):
            value = yield env.process(middle(env))
            return value + 1

        assert env.run(env.process(root(env))) == 3
