"""The parallel sweep engine: determinism, ordering, failure capture."""

import io
import os

import pytest

from repro.analysis import process_scaling_sweep
from repro.core import SimulationConfig
from repro.exec import (
    PointFailure,
    PointOutcome,
    PointSpec,
    ProgressReporter,
    SweepExecutionError,
    derive_point_seed,
    run_points,
)

TINY = SimulationConfig(nqueries=2, nfragments=4)


def tiny_specs(n=4):
    return [
        PointSpec(key=("ww-list", False, float(nprocs)), config=TINY.with_(nprocs=nprocs))
        for nprocs in (2, 3, 4, 5)[:n]
    ]


def broken_spec(key=("broken", False, 2.0)):
    """A spec whose config passes validation but crashes at run time."""
    cfg = TINY.with_(nprocs=2)
    object.__setattr__(cfg, "strategy", "no-such-strategy")
    return PointSpec(key=key, config=cfg)


class TestSerialParallelDeterminism:
    def test_jobs4_bit_identical_to_jobs1(self):
        """The acceptance property: fan-out must not change a single bit."""
        serial = run_points(tiny_specs(), jobs=1)
        parallel = run_points(tiny_specs(), jobs=4)
        assert [o.key for o in serial] == [o.key for o in parallel]
        for s, p in zip(serial, parallel):
            assert s.ok and p.ok
            assert s.result == p.result  # full dataclass equality, all fields

    def test_sweep_driver_identical_through_pool(self):
        kwargs = dict(
            process_counts=(2, 4),
            strategies=("ww-list", "mw"),
            sync_options=(False, True),
        )
        s1 = process_scaling_sweep(TINY, jobs=1, **kwargs)
        s4 = process_scaling_sweep(TINY, jobs=4, **kwargs)
        assert len(s1.points) == len(s4.points) == 8
        for a, b in zip(s1.points, s4.points):
            assert (a.strategy, a.query_sync, a.x) == (b.strategy, b.query_sync, b.x)
            assert a.result == b.result

    def test_outcomes_in_submission_order(self):
        # Heavier first point: completion order differs, output order must not.
        specs = [
            PointSpec(key=("ww-list", False, 8.0), config=TINY.with_(nprocs=8)),
        ] + tiny_specs(2)
        outcomes = run_points(specs, jobs=3)
        assert [o.key for o in outcomes] == [s.key for s in specs]


class TestFailureCapture:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_crashed_point_reports_instead_of_killing_sweep(self, jobs):
        specs = [tiny_specs(1)[0], broken_spec(), tiny_specs(2)[1]]
        outcomes = run_points(specs, jobs=jobs)
        assert [o.ok for o in outcomes] == [True, False, True]
        failure = outcomes[1].failure
        assert isinstance(failure, PointFailure)
        assert failure.key == ("broken", False, 2.0)
        assert failure.config["strategy"] == "no-such-strategy"
        assert failure.config["nprocs"] == 2
        assert "Traceback" in failure.traceback
        # The surviving points are real results.
        assert outcomes[0].result.file_stats.complete

    def test_sweep_driver_raises_aggregate_error(self, monkeypatch):
        import repro.exec.engine as engine_mod

        def explode(config):
            raise RuntimeError("boom at run time")

        monkeypatch.setattr(engine_mod, "run_simulation", explode)
        with pytest.raises(SweepExecutionError) as err:
            process_scaling_sweep(
                TINY, process_counts=(2, 4), strategies=("ww-list",), sync_options=(False,)
            )
        # Every point failed, none killed the sweep early.
        assert len(err.value.failures) == 2
        assert all("boom at run time" in f.error for f in err.value.failures)
        assert "Traceback" in err.value.failures[0].traceback


class TestSeedDerivation:
    def test_stable_and_distinct(self):
        a = derive_point_seed(2006, ("mw", False, 8.0))
        assert a == derive_point_seed(2006, ("mw", False, 8.0))
        assert a != derive_point_seed(2006, ("mw", True, 8.0))
        assert a != derive_point_seed(2007, ("mw", False, 8.0))
        assert 0 <= a < 2**63

    def test_reseeded_spec(self):
        spec = tiny_specs(1)[0]
        reseeded = spec.reseeded()
        assert reseeded.key == spec.key
        assert reseeded.config.seed == derive_point_seed(TINY.seed, spec.key)
        assert reseeded.config.with_(seed=TINY.seed) == spec.config

    def test_explicit_sweep_seed(self):
        spec = tiny_specs(1)[0]
        assert spec.reseeded(42).config.seed == derive_point_seed(42, spec.key)


class TestProgressReporter:
    def test_counts_eta_and_failures(self):
        buf = io.StringIO()
        reporter = ProgressReporter(total=3, label="t", stream=buf)
        reporter(PointOutcome(key=("a",), result=None))
        reporter(PointOutcome(key=("b",), failure=PointFailure(("b",), {}, "E: x", "tb")))
        reporter(PointOutcome(key=("c",), result=None))
        lines = buf.getvalue().splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("[t] 1/3 points")
        assert "1 failed" in lines[1]
        assert "eta done" in lines[2]

    def test_used_as_engine_hook(self):
        buf = io.StringIO()
        reporter = ProgressReporter(total=2, label="e", stream=buf)
        run_points(tiny_specs(2), jobs=1, progress=reporter)
        assert reporter.done == 2 and reporter.failed == 0


@pytest.mark.slow
@pytest.mark.skipif((os.cpu_count() or 1) < 4, reason="needs 4+ cores")
def test_parallel_speedup_on_4_cores():
    """A Fig-2-style sweep through the pool should scale with the cores.

    2.0 is a deliberately safe floor for shared CI machines; on idle 4+ core
    hardware the measured speedup of this sweep is ~3-4x.
    """
    import time

    base = SimulationConfig(nqueries=4, nfragments=16)
    kwargs = dict(process_counts=(2, 4, 8, 16), sync_options=(False, True))

    t0 = time.perf_counter()
    serial = process_scaling_sweep(base, jobs=1, **kwargs)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = process_scaling_sweep(base, jobs=4, **kwargs)
    t_parallel = time.perf_counter() - t0

    for a, b in zip(serial.points, parallel.points):
        assert a.result == b.result
    assert t_serial / t_parallel >= 2.0
