"""Engine guard rails: jobs validation and ETA sanity.

``run_points(jobs=0)`` used to fall through to a bare pool-size error (or
an inline no-op), and the first completion landing within the clock's
resolution of t0 divided by an epsilon elapsed and printed absurd ETAs.
"""

import io
import time

import pytest

from repro.exec import PointOutcome, ProgressReporter, run_points


def outcome():
    return PointOutcome(key=("p",))


@pytest.mark.parametrize("jobs", [0, -1, -100])
def test_run_points_rejects_nonpositive_jobs(jobs):
    with pytest.raises(ValueError, match="jobs must be >= 1"):
        run_points([], jobs=jobs)


def test_run_points_accepts_float_integral_jobs():
    assert run_points([], jobs=1) == []
    assert run_points([], jobs=2.0) == []


def test_zero_elapsed_prints_unknown_eta():
    # A completion within the clock's resolution of t0 must print "?",
    # not an epsilon-divided estimate.
    stream = io.StringIO()
    reporter = ProgressReporter(total=1000, stream=stream)
    reporter._t0 = time.monotonic()
    reporter(outcome())
    line = stream.getvalue()
    assert "1/1000" in line
    assert "eta ?" in line
    assert "e+" not in line  # no scientific-notation monster ETA


def test_final_point_prints_done():
    stream = io.StringIO()
    reporter = ProgressReporter(total=2, stream=stream)
    reporter(outcome())
    reporter(outcome())
    assert "eta done" in stream.getvalue().splitlines()[-1]


def test_total_zero_does_not_crash():
    stream = io.StringIO()
    reporter = ProgressReporter(total=0, stream=stream)
    reporter(outcome())  # defensive: a stray completion on an empty sweep
    assert "1/0" in stream.getvalue()
    assert "eta done" in stream.getvalue()


def test_failed_outcomes_counted():
    from repro.exec import PointFailure

    stream = io.StringIO()
    reporter = ProgressReporter(total=2, stream=stream)
    reporter(
        PointOutcome(
            key=("p",),
            failure=PointFailure(key=("p",), config={}, error="x", traceback=""),
        )
    )
    reporter(outcome())
    assert "1 failed" in stream.getvalue()
