"""Replicated (multi-seed) measurements."""

import pytest

from repro.analysis import ReplicatedMeasurement, compare_replicated, replicate
from repro.core import SimulationConfig


class TestReplicatedMeasurement:
    def test_statistics(self):
        m = ReplicatedMeasurement("x", (1, 2, 3), [10.0, 12.0, 14.0])
        assert m.mean == pytest.approx(12.0)
        assert m.stdev == pytest.approx(2.0)
        assert m.relative_spread == pytest.approx(2.0 / 12.0)
        assert "±" in m.summary()

    def test_single_sample_stdev_zero(self):
        m = ReplicatedMeasurement("x", (1,), [5.0])
        assert m.stdev == 0.0


class TestReplicate:
    def test_runs_each_seed(self):
        cfg = SimulationConfig(nprocs=3, nqueries=2, nfragments=4)
        m = replicate(cfg, seeds=(1, 2, 3))
        assert len(m.elapsed) == 3
        # Different seeds -> different workloads -> different times.
        assert len(set(m.elapsed)) > 1

    def test_empty_seed_list_rejected(self):
        with pytest.raises(ValueError):
            replicate(SimulationConfig(nprocs=3, nqueries=1, nfragments=2), seeds=())

    def test_compare_replicated_orders_strategies(self):
        base = SimulationConfig(nprocs=8, nqueries=4, nfragments=16)
        fast = replicate(base.with_(strategy="ww-list"), seeds=(1, 2, 3))
        slow = replicate(base.with_(strategy="ww-posix"), seeds=(1, 2, 3))
        assert compare_replicated(fast, slow)
        assert not compare_replicated(slow, fast)
