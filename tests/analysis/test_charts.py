"""ASCII chart rendering."""

import pytest

from repro.analysis import line_chart, process_scaling_sweep, stacked_bars
from repro.core import SimulationConfig


@pytest.fixture(scope="module")
def sweep():
    return process_scaling_sweep(
        SimulationConfig(nqueries=2, nfragments=4),
        process_counts=(2, 4),
        strategies=("ww-list", "mw"),
        sync_options=(False,),
    )


class TestLineChart:
    def test_contains_series_glyphs_and_legend(self, sweep):
        text = line_chart(sweep, query_sync=False, width=40, height=10)
        assert "L" in text and "M" in text
        assert "legend:" in text
        assert "Master writing" in text

    def test_axis_labels(self, sweep):
        text = line_chart(sweep, query_sync=False)
        assert "(processes)" in text
        assert "no-sync" in text

    def test_size_validation(self, sweep):
        with pytest.raises(ValueError):
            line_chart(sweep, False, width=5)
        with pytest.raises(ValueError):
            line_chart(sweep, False, height=2)

    def test_missing_sync_data(self, sweep):
        # sweep has no sync=True points; chart degrades gracefully.
        text = line_chart(sweep, query_sync=True)
        assert "no data" in text or "sync" in text


class TestStackedBars:
    def test_bars_render_phases(self, sweep):
        text = stacked_bars(sweep, "ww-list", query_sync=False)
        assert "#" in text  # compute cells
        assert "worker process" in text
        assert "legend:" in text

    def test_bar_lengths_track_totals(self, sweep):
        text = stacked_bars(sweep, "ww-list", query_sync=False, width=40)
        lines = [l for l in text.splitlines() if "|" in l]
        fill = [len(l.split("|")[1].strip()) for l in lines]
        # The 2-process bar (first) is the longest (it is the slowest run).
        assert fill[0] >= max(fill)

    def test_unknown_combination(self, sweep):
        assert stacked_bars(sweep, "ww-coll", True) == "(no data)"
