"""Sweep export (JSON/CSV)."""

import csv
import io
import json

import pytest

from repro.analysis import (
    export_csv,
    export_json,
    process_scaling_sweep,
    sweep_to_records,
)
from repro.core import SimulationConfig


@pytest.fixture(scope="module")
def sweep():
    return process_scaling_sweep(
        SimulationConfig(nqueries=2, nfragments=4),
        process_counts=(2, 4),
        strategies=("ww-list",),
        sync_options=(False, True),
    )


class TestRecords:
    def test_one_record_per_point(self, sweep):
        records = sweep_to_records(sweep)
        assert len(records) == 4
        keys = set(records[0])
        assert {"x", "strategy", "query_sync", "elapsed_s"} <= keys
        assert any(k.startswith("worker_io") for k in keys)

    def test_records_sorted(self, sweep):
        records = sweep_to_records(sweep)
        ordering = [(r["strategy"], r["query_sync"], r["x"]) for r in records]
        assert ordering == sorted(ordering)


class TestJson:
    def test_document_shape(self, sweep):
        buffer = io.StringIO()
        export_json(sweep, buffer)
        doc = json.loads(buffer.getvalue())
        assert doc["format"] == "s3asim-sweep-1"
        assert doc["axis"] == "processes"
        assert doc["xs"] == [2.0, 4.0]
        assert len(doc["points"]) == 4


class TestCsv:
    def test_csv_parses_back(self, sweep):
        buffer = io.StringIO()
        export_csv(sweep, buffer)
        buffer.seek(0)
        rows = list(csv.DictReader(buffer))
        assert len(rows) == 4
        assert float(rows[0]["elapsed_s"]) > 0
        assert rows[0]["file_complete"] == "True"
