"""Sweep drivers and table formatting."""

import pytest

from repro.analysis import (
    ALL_STRATEGIES,
    PAPER_COMPUTE_SPEEDS,
    PAPER_PROCESS_COUNTS,
    FIG2_RATIOS_PCT,
    RatioCheck,
    SweepPoint,
    SweepResult,
    compute_speed_sweep,
    crossover_x,
    overall_table,
    phase_table,
    process_scaling_sweep,
    ratio_table,
    speedup_series,
)
from repro.core import SimulationConfig


@pytest.fixture(scope="module")
def tiny_sweep():
    base = SimulationConfig(nqueries=2, nfragments=4)
    return process_scaling_sweep(
        base,
        process_counts=(2, 4),
        strategies=("ww-list", "mw"),
        sync_options=(False,),
    )


class TestAxes:
    def test_paper_axes(self):
        assert PAPER_PROCESS_COUNTS == (2, 4, 8, 16, 32, 48, 64, 96)
        assert PAPER_COMPUTE_SPEEDS[0] == 0.1
        assert PAPER_COMPUTE_SPEEDS[-1] == 25.6
        assert set(ALL_STRATEGIES) == {"mw", "ww-posix", "ww-list", "ww-coll"}


class TestProcessSweep:
    def test_all_points_present(self, tiny_sweep):
        assert len(tiny_sweep.points) == 4
        assert tiny_sweep.xs() == [2.0, 4.0]
        assert set(tiny_sweep.strategies()) == {"ww-list", "mw"}

    def test_series_sorted(self, tiny_sweep):
        series = tiny_sweep.series("ww-list", False)
        assert [x for x, _ in series] == [2.0, 4.0]

    def test_lookup(self, tiny_sweep):
        result = tiny_sweep.lookup("mw", False, 2.0)
        assert result.strategy == "mw"
        assert result.nprocs == 2
        with pytest.raises(KeyError):
            tiny_sweep.lookup("mw", True, 2.0)

    def test_progress_hook(self):
        seen = []
        base = SimulationConfig(nqueries=1, nfragments=2)
        process_scaling_sweep(
            base,
            process_counts=(2,),
            strategies=("ww-list",),
            sync_options=(False,),
            progress=seen.append,
        )
        assert len(seen) == 1
        assert isinstance(seen[0], SweepPoint)

    def test_series_with_replicated_x(self, tiny_sweep):
        """Two points sharing an x (replicated runs, fault sweeps) must not
        make sorted() fall through to comparing RunResult objects."""
        replicated = SweepResult(axis_name=tiny_sweep.axis_name)
        for p in tiny_sweep.points:
            replicated.add(p)
            replicated.add(SweepPoint(p.strategy, p.query_sync, p.x, p.result))
        series = replicated.series("ww-list", False)  # must not raise
        assert [x for x, _ in series] == [2.0, 2.0, 4.0, 4.0]
        # Stable: insertion order preserved within equal x.
        assert series[0][1] is series[1][1]


class TestSpeedSweep:
    def test_speed_axis(self):
        base = SimulationConfig(nqueries=1, nfragments=2)
        sweep = compute_speed_sweep(
            base,
            speeds=(0.5, 2.0),
            strategies=("ww-list",),
            sync_options=(False,),
            nprocs=3,
        )
        assert sweep.xs() == [0.5, 2.0]
        slow = sweep.lookup("ww-list", False, 0.5)
        fast = sweep.lookup("ww-list", False, 2.0)
        assert slow.compute_speed == 0.5
        assert slow.elapsed > fast.elapsed


class TestTables:
    def test_overall_table_contains_values(self, tiny_sweep):
        text = overall_table(tiny_sweep, query_sync=False)
        assert "Overall Execution Time - no-sync" in text
        assert "Master writing" in text
        assert "Worker - List I/O" in text
        assert "2" in text.splitlines()[2]

    def test_phase_table(self, tiny_sweep):
        text = phase_table(tiny_sweep, "ww-list", query_sync=False)
        assert "worker process" in text
        assert "compute" in text
        assert "io" in text

    def test_ratio_table(self, tiny_sweep):
        text = ratio_table(tiny_sweep, 4.0, paper_ratios=FIG2_RATIOS_PCT)
        assert "Master writing" in text
        assert "measured" in text
        assert "paper" in text

    def test_speedup_series(self, tiny_sweep):
        series = speedup_series(tiny_sweep, "ww-list", False)
        assert series[0] == (2.0, pytest.approx(1.0))
        assert series[1][1] > 0.5  # some speedup figure exists

    def test_crossover(self, tiny_sweep):
        # ww-list is never slower than itself; crossover against mw exists
        # wherever ww-list is faster.
        x = crossover_x(tiny_sweep, "ww-list", "mw", query_sync=False)
        assert x in (2.0, 4.0, None)


class TestRatioCheck:
    def test_within(self):
        check = RatioCheck("fig2", "mw", False, paper_pct=364, measured_pct=312)
        assert check.within(2.0)
        way_off = RatioCheck("fig2", "mw", False, paper_pct=364, measured_pct=-50)
        assert not way_off.within(2.0)

    def test_factors(self):
        check = RatioCheck("x", "mw", False, paper_pct=100, measured_pct=50)
        assert check.paper_factor == pytest.approx(2.0)
        assert check.measured_factor == pytest.approx(1.5)
