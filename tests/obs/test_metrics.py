"""Unit tests for the metrics registry, snapshots, and exporters."""

import io
import json
import math
import pickle

import pytest

from repro.obs import (
    NULL_METRICS,
    MetricsRegistry,
    MetricsSnapshot,
    NullMetrics,
    export_metrics_csv,
    export_metrics_json,
    load_metrics_json,
)
from repro.obs.metrics import bucket_bound


class TestCounter:
    def test_default_increment_is_one(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.add()
        c.add()
        assert c.value == 2.0

    def test_weighted_increment(self):
        reg = MetricsRegistry()
        reg.counter("bytes").add(4096.0)
        reg.counter("bytes").add(512.0)
        assert reg.counter("bytes").value == 4608.0

    def test_bound_handle_is_stable(self):
        """Bind-once call sites rely on get-or-create returning one object."""
        reg = MetricsRegistry()
        assert reg.counter("x", server=3) is reg.counter("x", server=3)
        assert reg.counter("x", server=3) is not reg.counter("x", server=4)

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        assert reg.counter("x", a=1, b=2) is reg.counter("x", b=2, a=1)

    def test_inc_convenience(self):
        reg = MetricsRegistry()
        reg.inc("faults.crashes", rank=1)
        reg.inc("faults.crashes", 2.0, rank=1)
        assert reg.counter("faults.crashes", rank=1).value == 3.0


class TestGauge:
    def test_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("run.elapsed_seconds", 1.5)
        reg.set_gauge("run.elapsed_seconds", 21.4)
        assert reg.gauge("run.elapsed_seconds").value == 21.4


class TestHistogram:
    def test_summary_statistics(self):
        reg = MetricsRegistry()
        h = reg.histogram("pvfs.service_seconds", server=0)
        for value in (1e-3, 2e-3, 4e-3):
            h.observe(value)
        assert h.count == 3
        assert h.total == pytest.approx(7e-3)
        assert h.min == 1e-3
        assert h.max == 4e-3
        assert h.mean == pytest.approx(7e-3 / 3)

    def test_bucket_bounds_double(self):
        assert bucket_bound(0) == pytest.approx(1e-6)
        assert bucket_bound(1) == pytest.approx(2e-6)
        assert bucket_bound(10) == pytest.approx(1e-6 * 1024)
        assert bucket_bound(39) == math.inf

    def test_exact_power_of_two_lands_in_its_bucket(self):
        """value == bucket upper bound must count in that bucket, not above."""
        reg = MetricsRegistry()
        h = reg.histogram("h")
        h.observe(2e-6)  # exactly bucket 1's bound
        assert h.buckets[1] == 1 and sum(h.buckets) == 1

    def test_huge_value_overflows_to_last_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        h.observe(1e9)
        assert h.buckets[-1] == 1


class TestNullMetrics:
    def test_disabled_and_inert(self):
        null = NullMetrics()
        assert not null.enabled
        null.counter("x", a=1).add(5)
        null.gauge("g").set(2)
        null.histogram("h").observe(3)
        null.inc("x")
        null.set_gauge("g", 1.0)
        null.observe("h", 1.0)
        assert null.snapshot() is None

    def test_instruments_are_shared_singletons(self):
        assert NULL_METRICS.counter("a") is NULL_METRICS.histogram("b")


class TestSnapshot:
    def registry(self):
        reg = MetricsRegistry(constant_labels={"strategy": "mw"})
        reg.counter("pvfs.requests", server=0).add(3)
        reg.counter("pvfs.requests", server=1).add(5)
        reg.counter("pvfs.seeks", server=0).add(2)
        reg.set_gauge("run.nprocs", 4.0)
        reg.histogram("pvfs.service_seconds", server=0).observe(1e-3)
        return reg

    def test_constant_labels_folded_in(self):
        snap = self.registry().snapshot()
        for _, labels, _ in snap.counters:
            assert dict(labels)["strategy"] == "mw"

    def test_counter_total_with_label_subset(self):
        snap = self.registry().snapshot()
        assert snap.counter_total("pvfs.requests") == 8.0
        assert snap.counter_total("pvfs.requests", server=1) == 5.0
        assert snap.counter_total("pvfs.requests", server=1, strategy="mw") == 5.0
        assert snap.counter_total("pvfs.requests", strategy="ww-list") == 0.0
        assert snap.counter_total("no.such.counter") == 0.0

    def test_counter_names_and_label_values(self):
        snap = self.registry().snapshot()
        assert snap.counter_names() == ["pvfs.requests", "pvfs.seeks"]
        assert snap.label_values("pvfs.requests", "server") == [0, 1]

    def test_label_values_sort_ints_numerically(self):
        reg = MetricsRegistry()
        for server in (10, 2, 1):
            reg.counter("pvfs.requests", server=server).add()
        snap = reg.snapshot()
        assert snap.label_values("pvfs.requests", "server") == [1, 2, 10]

    def test_histogram_summary_merges_across_labels(self):
        reg = MetricsRegistry()
        reg.histogram("h", server=0).observe(1.0)
        reg.histogram("h", server=1).observe(3.0)
        merged = reg.snapshot().histogram_summary("h")
        assert merged.count == 2
        assert merged.min == 1.0 and merged.max == 3.0
        assert reg.snapshot().histogram_summary("absent") is None

    def test_identical_registries_snapshot_equal(self):
        assert self.registry().snapshot() == self.registry().snapshot()

    def test_snapshot_pickles(self):
        """Snapshots cross the sweep engine's process pool."""
        snap = self.registry().snapshot()
        assert pickle.loads(pickle.dumps(snap)) == snap


class TestAggregate:
    def snap(self, strategy, requests):
        reg = MetricsRegistry(constant_labels={"strategy": strategy})
        reg.counter("pvfs.requests", server=0).add(requests)
        reg.histogram("pvfs.service_seconds", server=0).observe(1e-3)
        return reg.snapshot()

    def test_counters_sum_histograms_merge(self):
        combined = MetricsSnapshot.aggregate(
            [self.snap("mw", 3), self.snap("mw", 4)]
        )
        assert combined.counter_total("pvfs.requests") == 7.0
        assert combined.histogram_summary("pvfs.service_seconds").count == 2

    def test_strategies_stay_distinguishable(self):
        combined = MetricsSnapshot.aggregate(
            [self.snap("mw", 3), self.snap("ww-posix", 40)]
        )
        assert combined.counter_total("pvfs.requests", strategy="mw") == 3.0
        assert combined.counter_total("pvfs.requests", strategy="ww-posix") == 40.0

    def test_commutative(self):
        """Parallel sweeps must aggregate identically to serial ones."""
        a, b, c = self.snap("mw", 1), self.snap("ww-list", 2), self.snap("mw", 4)
        assert MetricsSnapshot.aggregate([a, b, c]) == MetricsSnapshot.aggregate(
            [c, a, b]
        )

    def test_empty_aggregate(self):
        assert MetricsSnapshot.aggregate([]) == MetricsSnapshot()

    def test_merge_keeps_longer_bucket_tail(self):
        """Regression: ``zip`` truncated the longer bucket vector, so a
        merge with a shorter summary silently dropped tail observations
        (count then disagreed with sum(buckets) and high quantiles
        collapsed)."""
        from repro.obs.metrics import HistogramSummary

        short = HistogramSummary(
            count=2, total=0.003, min=1e-3, max=2e-3, buckets=(0, 1, 1)
        )
        long = HistogramSummary(
            count=3, total=24.0, min=4.0, max=16.0, buckets=(0, 0, 0, 0, 1, 2)
        )
        for m in (short.merged(long), long.merged(short)):
            assert m.count == 5
            assert sum(m.buckets) == m.count
            assert m.buckets == (0, 1, 1, 0, 1, 2)
            assert m.max == 16.0
            assert m.quantile(1.0) == 16.0

    def test_aggregate_point_metrics_merges_unequal_buckets(self):
        from repro.exec import aggregate_point_metrics
        from repro.exec.engine import PointOutcome
        from repro.obs.metrics import HistogramSummary

        def outcome(key, summary):
            snap = MetricsSnapshot(histograms=(("h", (), summary),))
            result = type("R", (), {"metrics": snap})()
            return PointOutcome(key=key, result=result)

        a = outcome(
            ("mw", False, 1.0),
            HistogramSummary(count=1, total=0.5, min=0.5, max=0.5, buckets=(1,)),
        )
        b = outcome(
            ("mw", False, 2.0),
            HistogramSummary(
                count=2, total=12.0, min=4.0, max=8.0, buckets=(0, 0, 0, 1, 1)
            ),
        )
        combined = aggregate_point_metrics([a, b])
        merged = combined.histogram_summary("h")
        assert merged.count == 3
        assert sum(merged.buckets) == 3


class TestExport:
    def snapshot(self):
        reg = MetricsRegistry(constant_labels={"strategy": "ww-list"})
        reg.counter("pvfs.requests", server=0).add(145)
        reg.set_gauge("run.elapsed_seconds", 21.4)
        reg.histogram("pvfs.service_seconds", server=0).observe(2e-3)
        return reg.snapshot()

    def test_json_round_trip(self):
        snap = self.snapshot()
        buffer = io.StringIO()
        export_metrics_json(snap, buffer)
        buffer.seek(0)
        doc = load_metrics_json(buffer)
        assert doc["format"] == "s3asim-metrics-1"
        assert doc["counters"] == snap.as_dict()["counters"]
        assert doc["histograms"][0]["count"] == 1

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="not an s3asim metrics"):
            load_metrics_json(io.StringIO('{"format": "something-else"}'))
        with pytest.raises(ValueError, match="not an s3asim metrics"):
            load_metrics_json(io.StringIO("[1, 2]"))

    def test_csv_shape(self):
        import csv

        buffer = io.StringIO()
        export_metrics_csv(self.snapshot(), buffer)
        buffer.seek(0)
        rows = list(csv.reader(buffer))
        assert rows[0] == ["kind", "name", "labels", "value", "count", "min", "max"]
        kinds = {row[0] for row in rows[1:]}
        assert kinds == {"counter", "gauge", "histogram"}
        counter_row = next(r for r in rows[1:] if r[0] == "counter")
        assert counter_row[1] == "pvfs.requests"
        # Labels survive as a JSON object in one CSV cell.
        assert json.loads(counter_row[2]) == {"server": 0, "strategy": "ww-list"}
        assert float(counter_row[3]) == 145.0
