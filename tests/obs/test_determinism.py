"""Metrics must never perturb the simulation.

Two guarantees, both bit-exact:

1. **Golden**: a disabled-registry run (the default) reproduces the seed
   implementation's completion times to the last bit — the instrumentation
   sweep added zero events to the run path.
2. **Enabled == disabled**: turning ``collect_metrics`` on changes nothing
   but the attached :class:`MetricsSnapshot` — elapsed times, per-phase
   accounting, and the full trace timeline stay identical.
"""

import pytest

from repro.core import Phase, S3aSim, SimulationConfig
from repro.exec import PointSpec, aggregate_point_metrics, run_points
from repro.trace import TraceRecorder

SMALL = dict(nprocs=4, nqueries=3, nfragments=6)

#: Completion times of the seed implementation at ``SMALL`` — any event
#: added, removed, or reordered by the metrics sweep shows up here first.
GOLDEN = {
    "mw": 25.410715708394612,
    "ww-posix": 24.30148509613702,
    "ww-list": 21.376782075112857,
    "ww-coll": 21.81401815133468,
}


def run_one(strategy, collect_metrics):
    cfg = SimulationConfig(
        strategy=strategy, collect_metrics=collect_metrics, **SMALL
    )
    recorder = TraceRecorder()
    result = S3aSim(cfg, recorder=recorder).run()
    timeline = [(i.rank, i.state, i.start, i.end) for i in recorder.intervals]
    return result, timeline


class TestGoldenDisabled:
    @pytest.mark.parametrize("strategy", sorted(GOLDEN))
    def test_disabled_matches_seed_exactly(self, strategy):
        result, _ = run_one(strategy, collect_metrics=False)
        assert result.elapsed == GOLDEN[strategy]
        assert result.metrics is None


class TestEnabledEqualsDisabled:
    @pytest.mark.parametrize("strategy", sorted(GOLDEN))
    def test_bit_identical_timing_and_trace(self, strategy):
        disabled, timeline_off = run_one(strategy, collect_metrics=False)
        enabled, timeline_on = run_one(strategy, collect_metrics=True)
        assert enabled.elapsed == disabled.elapsed == GOLDEN[strategy]
        assert enabled.master == disabled.master
        assert enabled.file_stats == disabled.file_stats
        assert timeline_on == timeline_off
        assert enabled.metrics is not None

    def test_metrics_agree_with_phase_accounting(self):
        """app.phase_seconds is the same data TimedPhases accumulates."""
        enabled, _ = run_one("ww-list", collect_metrics=True)
        snap = enabled.metrics
        for phase, seconds in enabled.master.times.items():
            if phase is Phase.OTHER:  # derived, never credited directly
                continue
            counted = snap.counter_total(
                "app.phase_seconds", rank=0, phase=phase.value
            )
            assert counted == pytest.approx(seconds)


class TestAcceptanceShape:
    """The paper's Section 2.1 asymmetry, read straight off the counters."""

    @pytest.fixture(scope="class")
    def snapshots(self):
        return {
            strategy: run_one(strategy, collect_metrics=True)[0].metrics
            for strategy in GOLDEN
        }

    def test_request_count_ordering(self, snapshots):
        requests = {
            s: snap.counter_total("pvfs.requests") for s, snap in snapshots.items()
        }
        # MW batches a whole fragment's results into one write; WW-POSIX
        # issues one request per region and dwarfs everyone else.
        assert requests["mw"] < requests["ww-list"]
        assert requests["mw"] < requests["ww-coll"]
        assert requests["ww-posix"] > 10 * requests["ww-list"]

    def test_mw_requests_carry_more_regions(self, snapshots):
        def regions_per_request(snap):
            return snap.counter_total("pvfs.regions") / snap.counter_total(
                "pvfs.requests"
            )

        assert regions_per_request(snapshots["mw"]) > regions_per_request(
            snapshots["ww-posix"]
        )

    def test_per_server_and_per_rank_breakdowns_present(self, snapshots):
        snap = snapshots["ww-list"]
        assert len(snap.label_values("pvfs.requests", "server")) > 1
        assert len(snap.label_values("app.phase_seconds", "rank")) == SMALL["nprocs"]

    def test_strategy_constant_label_applied(self, snapshots):
        snap = snapshots["mw"]
        assert snap.counter_total("pvfs.requests", strategy="mw") > 0
        assert snap.counter_total("pvfs.requests", strategy="ww-list") == 0


class TestSweepAggregation:
    def specs(self):
        return [
            PointSpec(
                key=(strategy,),
                config=SimulationConfig(
                    strategy=strategy, collect_metrics=True, **SMALL
                ),
            )
            for strategy in ("mw", "ww-list")
        ]

    def test_parallel_aggregate_equals_serial(self):
        serial = aggregate_point_metrics(run_points(self.specs(), jobs=1))
        parallel = aggregate_point_metrics(run_points(self.specs(), jobs=2))
        assert serial is not None
        assert serial == parallel

    def test_disabled_points_aggregate_to_none(self):
        specs = [
            PointSpec(
                key=("ww-list",), config=SimulationConfig(**SMALL)
            )
        ]
        assert aggregate_point_metrics(run_points(specs, jobs=1)) is None
